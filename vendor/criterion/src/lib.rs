//! A minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! External dev-dependencies cannot be fetched in offline environments, so
//! this shim keeps `cargo bench` working with the same source code. It runs
//! each benchmark a fixed number of warm-up and measurement iterations and
//! prints mean wall-clock time per iteration — useful for coarse
//! comparisons, not statistically rigorous measurement.
//!
//! Like real criterion, passing `--test` (`cargo bench -- --test`) runs
//! each benchmark once as a smoke check instead of measuring — CI uses
//! this to keep bench binaries compiling and running without paying for
//! measurement iterations.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    measurement_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { measurement_iters: if smoke { 1 } else { 10 } }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        // Warm-up pass (not recorded).
        f(&mut b);
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        for _ in 0..self.measurement_iters {
            f(&mut b);
        }
        if b.iters > 0 {
            let per_iter = b.elapsed / b.iters;
            println!("{name:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        } else {
            println!("{name:<40} (no iterations recorded)");
        }
        self
    }
}

/// Timer wrapper passed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
