//! A small, fully deterministic property-testing engine exposing the subset
//! of the `proptest` crate surface this workspace uses.
//!
//! The workspace builds in offline environments, so external dev-dependencies
//! cannot be fetched from crates.io; this in-tree shim keeps the property
//! suites running there. It intentionally differs from upstream proptest in
//! two ways:
//!
//! * **No shrinking.** On failure it reports the case seed so the exact
//!   inputs can be regenerated, rather than searching for a minimal case.
//! * **Fixed seeding.** Case seeds derive from the test name, so a suite
//!   that passes once passes everywhere — "same seed, same result, on any
//!   machine" applies to the tests themselves.

pub mod test_runner {
    //! Case driving: configuration, deterministic seeding, failure reports.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a case did not run to completion.
    #[derive(Clone, Copy, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)` (multiply-shift; `bound` must be > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Runs `cfg.cases` successful cases of `body`, seeding each case from
    /// the test name and the attempt index. Panics propagate with the case
    /// seed attached so a failure can be replayed exactly.
    pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, body: F)
    where
        F: Fn(&mut TestRng) -> TestCaseResult,
    {
        let base = fnv1a(name);
        let mut executed = 0u32;
        let mut attempt = 0u64;
        let max_attempts = u64::from(cfg.cases) * 32 + 1_024;
        while executed < cfg.cases {
            assert!(
                attempt < max_attempts,
                "{name}: prop_assume! rejected too many cases ({attempt} attempts)"
            );
            let case_seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::new(case_seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            match outcome {
                Ok(Ok(())) => executed += 1,
                Ok(Err(TestCaseError::Reject)) => {}
                Err(payload) => {
                    eprintln!(
                        "proptest(shim): `{name}` failed on case {executed} \
                         (case seed {case_seed:#018x})"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! Value generators and combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].new_value(rng)
        }
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// `&str` strategies: a tiny pattern language supporting character
    /// classes with ranges and `{m}` / `{m,n}` repetition (e.g.
    /// `"[a-z]{1,12}"`). Characters outside a class are literal.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let class = expand_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (a, b) = (body[j], body[j + 2]);
                assert!(a <= b, "descending class range {a}-{b}");
                for c in a..=b {
                    set.push(c);
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
        if *i >= chars.len() || chars[*i] != '{' {
            return (1, 1);
        }
        let close = chars[*i..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| *i + p)
            .expect("unclosed quantifier");
        let body: String = chars[*i + 1..close].iter().collect();
        *i = close + 1;
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("quantifier lower bound"),
                hi.trim().parse().expect("quantifier upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Draws an unconstrained value.
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn generate(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; cap the attempts so tiny element
            // domains cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 32 + 64 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A set of values from `element`, with target size drawn from `size`
    /// (may come up short when the element domain is small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: None about a quarter of the time.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }

    /// `Some` from `element` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Asserts a condition inside a property (panics with the case seed logged).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Rejects the current case (a fresh one is drawn) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn` runs `cases` times over freshly drawn
/// inputs, deterministically seeded from the test's name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal item muncher for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &__config, |__rng| {
                $(let $arg =
                    $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
