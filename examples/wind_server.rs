//! A self-managing storage server (the paper's §5 WiND sketch, running).
//!
//! Four mirror pairs serve a continuous 25 MB/s write stream for two
//! simulated hours while pair 1 wears out and eventually fail-stops. In
//! managed mode the fail-stutter pipeline — monitors, the notification
//! registry, the failure predictor, and a hot spare — keeps the stream
//! flowing; in unmanaged (fail-stop) mode the array quietly falls behind
//! and then loses the pair.
//!
//! Run with: `cargo run --release --example wind_server`

use fail_stutter::raidsim::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(7_200);
    let wear = Injector::Wearout {
        onset: SimTime::from_secs(900),
        ramp: SimDuration::from_secs(1_200),
        floor: 0.2,
        fail_after: Some(SimDuration::from_secs(600)),
    };
    let profile = wear.timeline(horizon, &mut Stream::from_seed(42).derive("wind.pair-1"));
    let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10e6)).collect();
    pairs[1] = MirrorPair::new(
        VDisk::new(10e6).with_profile(profile.clone()),
        VDisk::new(10e6).with_profile(profile),
    );

    let cfg = WindConfig::default();
    println!("Two hours, 25 MB/s offered, pair 1 wearing out then failing.\n");
    for (name, mode) in [
        ("unmanaged (fail-stop)", Management::Unmanaged),
        ("managed (fail-stutter)", Management::Managed { hot_spares: 1 }),
    ] {
        let out = run_wind(&pairs, cfg, mode);
        println!("{name}:");
        println!("  mean throughput: {:6.2} MB/s", out.mean_throughput / 1e6);
        println!("  availability:    {:6.1}%", out.availability * 100.0);
        for e in &out.events {
            match e {
                WindEvent::Exported { at, pair, state } => {
                    println!("  [{at}] exported: pair {pair} -> {state}")
                }
                WindEvent::RebuildStarted { at, pair } => {
                    println!("  [{at}] rebuild of pair {pair} onto hot spare started")
                }
                WindEvent::RebuildCompleted { at, pair } => {
                    println!("  [{at}] rebuild of pair {pair} completed; pair nominal again")
                }
                WindEvent::PairLost { at, pair } => {
                    println!("  [{at}] PAIR {pair} LOST (no spare)")
                }
            }
        }
        println!();
    }
}
