//! A tour of the §2 fault catalog.
//!
//! Generates an hour-long timeline for every phenomenon the paper's survey
//! documents, prints each one's performance signature, and shows what the
//! same EWMA detector + notification registry make of it — which faults are
//! transient noise and which get exported as persistent performance state.
//!
//! Run with: `cargo run --release --example phenomena_tour`

use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::catalog;
use fail_stutter::stutter::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(3600);
    let rng = Stream::from_seed(2001);
    println!(
        "{:<34} {:>9} {:>9} {:>11} {:>9}",
        "phenomenon", "mean", "worst", "exports", "suppressed"
    );
    println!("{}", "-".repeat(78));
    for (i, (name, injector)) in catalog::all().into_iter().enumerate() {
        let profile = injector.timeline(horizon, &mut rng.derive(name));
        let mean = profile.mean_multiplier(horizon);
        let worst = (0..3600)
            .map(|s| profile.multiplier_at(SimTime::from_secs(s)))
            .min_by(f64::total_cmp)
            .unwrap_or(f64::INFINITY);

        // Watch it the fail-stutter way.
        let mut detector = EwmaDetector::new(PerfSpec::constant(1.0), 0.2);
        let mut registry = Registry::new(SimDuration::from_secs(60));
        for s in 0..3600 {
            let now = SimTime::from_secs(s);
            let verdict = detector.observe(profile.multiplier_at(now));
            registry.report(ComponentId(i as u32), now, verdict);
        }
        println!(
            "{:<34} {:>8.1}% {:>8.1}% {:>11} {:>9}",
            name,
            mean * 100.0,
            worst * 100.0,
            registry.notifications().len(),
            registry.suppressed(),
        );
    }
    println!(
        "\nPersistent faults are exported once; transient stutter is suppressed\n\
         (the paper's notification rule). Means and worsts are fractions of the\n\
         component's performance specification."
    );
}
