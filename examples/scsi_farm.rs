//! Six months in the life of a disk farm (the Talagala–Patterson study).
//!
//! Builds an eight-disk SCSI chain, pre-generates half a year of its error
//! process, prints the error census the paper quotes (49% of all errors
//! are SCSI timeouts/parity; 87% once network errors are excluded; about
//! two per day), and then shows what one bus reset does to an innocent
//! video stream on a neighbouring disk — the fail-stutter signature of a
//! shared interconnect.
//!
//! Run with: `cargo run --release --example scsi_farm`

use fail_stutter::blockdev::prelude::*;
use fail_stutter::simcore::prelude::*;

fn main() {
    let rng = Stream::from_seed(1999);
    let days = 180u64;
    let disks: Vec<Disk> = (0..8)
        .map(|i| Disk::new(Geometry::hawk_5400(), rng.derive(&format!("disk-{i}"))))
        .collect();
    let mut chain = ScsiChain::new(
        disks,
        ErrorProcess::default(),
        SimDuration::from_secs(days * 86_400),
        &mut rng.derive("farm.errors"),
    );

    let census = chain.full_horizon_census();
    println!("Error census over {days} days (8-disk chain):\n");
    for (name, count) in [
        ("SCSI timeouts", census.scsi_timeout),
        ("SCSI parity errors", census.scsi_parity),
        ("network errors", census.network),
        ("other", census.other),
    ] {
        println!("  {name:<22} {count:>5}");
    }
    println!(
        "\n  timeouts+parity share of all errors:      {:.1}%  (paper: 49%)",
        census.scsi_fraction() * 100.0
    );
    println!(
        "  share excluding network errors:           {:.1}%  (paper: 87%)",
        census.scsi_fraction_excluding_network() * 100.0
    );
    println!(
        "  timeout/parity rate:                      {:.2}/day (paper: ~2/day)",
        (census.scsi_timeout + census.scsi_parity) as f64 / days as f64
    );

    // One reset, seen from an innocent neighbour: stream video frames off
    // disk 5 across the first reset on the chain.
    let first_reset = chain
        .error_timeline()
        .iter()
        .find(|e| matches!(e.kind, ErrorKind::ScsiTimeout | ErrorKind::ScsiParity))
        .copied()
        .expect("six months always contains a reset");
    println!(
        "\nFirst bus reset at {} ({:?}). Streaming 256 KB frames from disk 5 around it:",
        first_reset.at, first_reset.kind
    );
    let mut t = first_reset.at - SimDuration::from_secs(1);
    for frame in 0..12u64 {
        let lba = frame * 512;
        let g = chain.read(t, 5, lba, 512).expect("disk healthy");
        let latency_ms = g.latency_from(t).as_secs_f64() * 1e3;
        let marker = if latency_ms > 200.0 { "  <-- bus reset stalls the whole chain" } else { "" };
        println!("  frame {frame:>2}: {latency_ms:>8.1} ms{marker}");
        t = g.finish + SimDuration::from_millis(100);
    }
    println!(
        "\nDisk 5 never failed — but for two seconds it was performance-faulty\n\
         because a *different* disk timed out. That is the gap between the\n\
         fail-stop model and the machine room."
    );
}
