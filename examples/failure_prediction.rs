//! Erratic performance as an early warning (§3.3 reliability claim).
//!
//! A disk begins to wear out: its delivered bandwidth declines erratically
//! for half an hour before it fail-stops. A fail-stop system learns of the
//! failure when requests start timing out; a fail-stutter system watches
//! the performance-fault trend and raises a prediction early enough to
//! drain the disk first.
//!
//! Run with: `cargo run --example failure_prediction`

use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(7_200);
    let injector = Injector::Compose(vec![
        // The decline...
        Injector::Wearout {
            onset: SimTime::from_secs(1_800),
            ramp: SimDuration::from_secs(1_500),
            floor: 0.25,
            fail_after: Some(SimDuration::from_secs(600)),
        },
        // ...buried in ordinary noise.
        Injector::Stutter {
            hold: DurationDist::Exp { mean: SimDuration::from_secs(45) },
            factor: FactorDist::Uniform { lo: 0.92, hi: 1.0 },
        },
    ]);
    let profile = injector.timeline(horizon, &mut Stream::from_seed(77));
    let fail_at = profile.fail_at().expect("this disk dies");

    let mut predictor = FailurePredictor::new(PredictorConfig::default());
    let mut prediction = None;
    let mut t = SimTime::ZERO;
    println!("Sampling delivered bandwidth every 30 s (nominal 10 MB/s):\n");
    while t < fail_at {
        let fraction = profile.multiplier_at(t);
        if t.as_nanos().is_multiple_of(SimTime::from_secs(600).as_nanos()) {
            println!("  [{t}] {:5.2} MB/s", 10.0 * fraction);
        }
        if prediction.is_none() {
            if let Some(p) = predictor.observe(t, fraction) {
                println!(
                    "  [{t}] PREDICTION: level {:.0}% of spec, losing {:.0}%/window -> \
                     schedule replacement",
                    p.level * 100.0,
                    p.decline_per_window * 100.0
                );
                prediction = Some(p);
            }
        }
        t += SimDuration::from_secs(30);
    }
    println!("\n  [{fail_at}] disk fail-stops.");
    match predictor.lead_time(fail_at) {
        Some(lead) => println!(
            "\nWarning lead time: {:.0} s — enough to rebuild onto a hot spare at leisure.",
            lead.as_secs_f64()
        ),
        None => println!("\nNo early warning was raised."),
    }
}
