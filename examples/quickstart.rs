//! Quickstart: the paper's §3.2 example in thirty lines.
//!
//! Build a RAID-10 array in which one mirror pair stutters at half speed,
//! write 4 GB through each of the three controller designs, and compare
//! against the paper's closed-form predictions.
//!
//! Run with: `cargo run --example quickstart`

use fail_stutter::raidsim::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(3600);
    let n = 4;
    let big_b = 10e6; // healthy pair: 10 MB/s
    let b = 5e6; // the slow pair: 5 MB/s

    // One replica of pair 0 delivers half its specified bandwidth — a
    // performance fault, not a failure.
    let slow =
        Injector::StaticSlowdown { factor: b / big_b }.timeline(horizon, &mut Stream::from_seed(1));
    let mut pairs: Vec<MirrorPair> = (0..n).map(|_| MirrorPair::healthy(big_b)).collect();
    pairs[0] = MirrorPair::new(VDisk::new(big_b).with_profile(slow), VDisk::new(big_b));
    let array = Raid10::new(pairs, horizon);

    // Write D = 65536 blocks of 64 KB (4 GB).
    let w = Workload::new(65_536, 65_536);

    let s1 = array.write_static(w, SimTime::ZERO).expect("no absolute failures");
    let s2 =
        array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("no absolute failures");
    let s3 = array.write_adaptive(w, SimTime::ZERO, 64).expect("no absolute failures");

    println!("RAID-10, N = {n} pairs, B = 10 MB/s, one pair at b = 5 MB/s\n");
    println!(
        "  scenario 1  equal static striping      {:6.2} MB/s   (paper: N*b        = {:5.1})",
        s1.throughput / 1e6,
        scenario1_throughput(n, big_b, b) / 1e6
    );
    println!(
        "  scenario 2  proportional striping      {:6.2} MB/s   (paper: (N-1)*B+b  = {:5.1})",
        s2.throughput / 1e6,
        scenario2_throughput(n, big_b, b) / 1e6
    );
    println!(
        "  scenario 3  adaptive striping          {:6.2} MB/s   (paper: available  = {:5.1})",
        s3.throughput / 1e6,
        (3.0 * big_b + b) / 1e6
    );
    println!(
        "\nThe fail-stop design wastes {:.0}% of the hardware it paid for.",
        scenario1_waste(n, big_b, b) * 100.0
    );
}
