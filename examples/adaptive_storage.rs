//! A storage array living through a bad week.
//!
//! Eight mirror pairs suffer the full §2 catalog at once — a fault-masked
//! slow disk, thermal recalibrations, interference episodes, and one disk
//! wearing out toward an absolute failure. The example runs all three
//! §3.2 controllers over the same hardware, then shows the fail-stutter
//! machinery (EWMA detectors + the notification registry) identifying the
//! persistently faulty pairs without flagging transient stutter.
//!
//! Run with: `cargo run --example adaptive_storage`

use fail_stutter::raidsim::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(7_200);
    let nominal = 10e6;
    let rng = Stream::from_seed(2001);

    // The §2 catalog, one phenomenon per pair (pairs 4..8 stay healthy).
    let injectors: Vec<(&str, Injector)> = vec![
        ("fault-masked (70% forever)", Injector::StaticSlowdown { factor: 0.7 }),
        (
            "thermal recalibrations",
            Injector::Blackouts {
                interarrival: DurationDist::Exp { mean: SimDuration::from_secs(60) },
                duration: DurationDist::Uniform {
                    lo: SimDuration::from_millis(500),
                    hi: SimDuration::from_millis(1500),
                },
            },
        ),
        (
            "hog episodes (30% during)",
            Injector::Episodes {
                interarrival: DurationDist::Exp { mean: SimDuration::from_secs(120) },
                duration: DurationDist::Exp { mean: SimDuration::from_secs(30) },
                factor: 0.3,
            },
        ),
        (
            "wearing out, then failing",
            Injector::Wearout {
                onset: SimTime::from_secs(600),
                ramp: SimDuration::from_secs(900),
                floor: 0.2,
                fail_after: Some(SimDuration::from_secs(300)),
            },
        ),
    ];

    let mut pairs: Vec<MirrorPair> = Vec::new();
    for (i, (_, inj)) in injectors.iter().enumerate() {
        let p = inj.timeline(horizon, &mut rng.derive(&format!("pair-{i}")));
        pairs.push(MirrorPair::new(VDisk::new(nominal).with_profile(p), VDisk::new(nominal)));
    }
    for _ in injectors.len()..8 {
        pairs.push(MirrorPair::healthy(nominal));
    }
    let array = Raid10::new(pairs, horizon);

    // 8 GB through each design.
    let w = Workload::new(131_072, 65_536);
    println!("Eight-pair array under the Section 2 fault catalog, writing 8 GB:\n");
    match array.write_static(w, SimTime::ZERO) {
        Ok(out) => println!("  equal static:        {:6.2} MB/s", out.throughput / 1e6),
        Err(e) => println!("  equal static:        HALTED ({e})"),
    }
    match array.write_proportional(w, SimTime::ZERO, SimTime::ZERO) {
        Ok(out) => println!("  proportional static: {:6.2} MB/s", out.throughput / 1e6),
        Err(e) => println!("  proportional static: HALTED ({e})"),
    }
    let adaptive = array.write_adaptive(w, SimTime::ZERO, 64).expect("survivors remain");
    println!("  adaptive:            {:6.2} MB/s", adaptive.throughput / 1e6);
    println!("\nPer-pair blocks under the adaptive controller:");
    for (i, blocks) in adaptive.per_pair_blocks.iter().enumerate() {
        let label = injectors.get(i).map_or("healthy", |(l, _)| l);
        println!("  pair {i}: {blocks:>6} blocks   ({label})");
    }

    // Now watch the array the way a fail-stutter system would: sample each
    // pair's delivered rate once a second, classify against its spec, and
    // export only persistent faults.
    let spec = PerfSpec::constant(nominal);
    let mut detectors: Vec<EwmaDetector> =
        (0..array.n()).map(|_| EwmaDetector::new(spec.clone(), 0.2)).collect();
    let mut registry = Registry::new(SimDuration::from_secs(60));
    for s in 0..1_800u64 {
        let now = SimTime::from_secs(s);
        for (i, pair) in array.pairs().iter().enumerate() {
            let verdict = if pair.failed_at(now) {
                HealthState::Failed
            } else {
                detectors[i].observe(pair.write_rate_at(now))
            };
            if let Some(n) = registry.report(ComponentId(i as u32), now, verdict) {
                println!("  [{now}] registry export: pair {i} -> {}", n.state);
            }
        }
    }
    println!(
        "\nRegistry after 30 min: {} fault export(s), {} transient report(s) suppressed.",
        registry.notifications().len(),
        registry.suppressed()
    );
    for (id, state) in registry.faulty_components() {
        println!("  exported: {id} is {state}");
    }
}
