//! Surviving stragglers: a parallel sort and a hedged task batch.
//!
//! Part 1 reruns the NOW-Sort experience: a barrier-synchronised parallel
//! sort where one node is half-hogged doubles its end-to-end time; the
//! adaptive placement absorbs it.
//!
//! Part 2 runs the Shasha–Turek move on a task batch: duplicate any task
//! that misses its hedge deadline onto another worker and reconcile the
//! winners, bounding the tail at a measured replication cost.
//!
//! Run with: `cargo run --example hedged_sort`

use fail_stutter::adapt::prelude::*;
use fail_stutter::cluster::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::simcore::resource::RateProfile;
use fail_stutter::stutter::prelude::*;

fn main() {
    // --- Part 1: the sort ---------------------------------------------
    let job = SortJob::minute_sort(8_000_000);
    let clean: Vec<Node> = (0..8).map(|_| Node::new(1e6, 10e6)).collect();
    let hog = Injector::StaticSlowdown { factor: 0.5 }
        .timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(7));
    let mut hogged = clean.clone();
    hogged[3] = Node::new(1e6, 10e6).with_cpu_profile(hog.clone()).with_disk_profile(hog);

    let dedicated = run_sort(&clean, job, Placement::Static, SimTime::ZERO);
    let perturbed = run_sort(&hogged, job, Placement::Static, SimTime::ZERO);
    let adaptive = run_sort(&hogged, job, Placement::Adaptive, SimTime::ZERO);

    println!("Parallel sort, 8M records over 8 nodes (node 3 half-hogged):\n");
    println!("  dedicated cluster, static placement:  {:6.1} s", dedicated.total.as_secs_f64());
    println!(
        "  hogged cluster,    static placement:  {:6.1} s  ({:.2}x — the paper's factor of two)",
        perturbed.total.as_secs_f64(),
        perturbed.total.as_secs_f64() / dedicated.total.as_secs_f64()
    );
    println!(
        "  hogged cluster,    adaptive placement: {:5.1} s  (node 3 got {} of {} records)",
        adaptive.total.as_secs_f64(),
        adaptive.per_node[3],
        job.records
    );

    // --- Part 2: hedged tasks ------------------------------------------
    let mut speeds = [1.0; 16];
    speeds[7] = 0.02; // one worker at 2% — a severe slow-down failure
    let rates: Vec<RateProfile> = speeds.iter().map(|&s| RateProfile::constant(s)).collect();

    let blocking = run_hedged(&rates, 64, 1.0, HedgeConfig { hedge_after: None }, SimTime::ZERO)
        .expect("all workers alive");
    let hedged = run_hedged(
        &rates,
        64,
        1.0,
        HedgeConfig { hedge_after: Some(SimDuration::from_secs(2)) },
        SimTime::ZERO,
    )
    .expect("all workers alive");

    println!("\n64 unit tasks over 16 workers, worker 7 at 2% speed:\n");
    println!(
        "  blocking:  worst latency {:6.1} s, no wasted work",
        blocking.worst_latency().as_secs_f64()
    );
    println!(
        "  hedged@2s: worst latency {:6.1} s, {:.1}% of work discarded by reconciliation, \
         {} duplicate commits suppressed",
        hedged.worst_latency().as_secs_f64(),
        100.0 * hedged.work_wasted / hedged.work_spent,
        hedged.reconciled
    );
}
