//! Digest-invariance gate across event-queue implementations.
//!
//! The event engine's queue is pluggable ([`simcore::queue`]): the
//! calendar queue is the production default, the binary-heap
//! `ReferenceQueue` is the oracle. Dispatch order — and therefore every
//! seeded result in the workspace — must not depend on which one is
//! plugged in. This test runs the smoke campaign under *both* kinds and
//! pins both digests to the same golden as `tests/campaign_smoke.rs`, so
//! future queue tuning (bucket geometry, resize policy, batch draining)
//! can never silently reorder equal-time ties.
//!
//! Single `#[test]`, sequential: the queue kind is a process-wide default
//! (`set_default_queue_kind`), so the two campaign runs must not overlap
//! with each other — keeping them in one test body makes that structural.
//! The golden matches campaign_smoke's; regenerate the same way
//! (`cargo run -p fs-bench --release --bin fs-campaign -- --smoke`).

use fs_bench::campaign::{run_campaign, CampaignConfig};
use simcore::queue::{default_queue_kind, set_default_queue_kind, QueueKind};

/// `fs-campaign --smoke` (master seed 42) — same pin as campaign_smoke.
const GOLDEN_SMOKE_DIGEST: u64 = 0xbd73_a9d3_ca4d_7881;

#[test]
fn smoke_digest_is_identical_under_both_queue_kinds() {
    let cfg = CampaignConfig::smoke(42);
    let mut digests = Vec::new();
    for kind in [QueueKind::Calendar, QueueKind::Reference] {
        set_default_queue_kind(kind);
        let report = run_campaign(&cfg);
        assert!(
            report.violations.is_empty(),
            "oracle violations under {} queue:\n{}",
            kind.name(),
            report.violations.join("\n")
        );
        digests.push((kind, report.digest));
    }
    set_default_queue_kind(QueueKind::Calendar);
    assert_eq!(default_queue_kind(), QueueKind::Calendar);
    for (kind, digest) in digests {
        assert_eq!(
            digest,
            GOLDEN_SMOKE_DIGEST,
            "campaign digest under the {} queue drifted: got {digest:016x}, pinned \
             {GOLDEN_SMOKE_DIGEST:016x} — the queue implementations no longer dispatch \
             the identical (time, seq) order (see docs/TESTING.md)",
            kind.name()
        );
    }
}
