//! Tier-1 gate for the scenario-campaign harness.
//!
//! Runs the reduced (smoke) campaign twice and asserts (a) bit-for-bit
//! determinism, (b) zero oracle violations, and (c) the pinned golden
//! campaign digest. The digest is a pure function of the campaign config
//! and the seed tree — if an intentional change to a simulator, injector,
//! or oracle shifts it, regenerate with:
//!
//! ```text
//! cargo run -p fs-bench --release --bin fs-campaign -- --smoke
//! ```
//!
//! and record the new constant here (see docs/TESTING.md). A digest shift
//! with *no* intentional semantic change is a regression.

use fs_bench::campaign::{run_campaign, CampaignConfig};

/// `fs-campaign --smoke` (master seed 42).
const GOLDEN_SMOKE_DIGEST: u64 = 0xbd73_a9d3_ca4d_7881;

#[test]
fn smoke_campaign_is_deterministic_violation_free_and_pinned() {
    let cfg = CampaignConfig::smoke(42);
    let first = run_campaign(&cfg);
    let second = run_campaign(&cfg);

    assert_eq!(
        first.digest, second.digest,
        "consecutive runs with one config must reproduce bit-for-bit"
    );
    // 12 injector classes × 5 mechanism kinds × 2 replicates.
    assert_eq!(first.results.len(), 120);
    assert!(
        first.violations.is_empty(),
        "oracle violations in the smoke campaign:\n{}",
        first.violations.join("\n")
    );
    assert_eq!(
        first.digest, GOLDEN_SMOKE_DIGEST,
        "campaign digest drifted: got {:016x}, pinned {:016x} (see docs/TESTING.md)",
        first.digest, GOLDEN_SMOKE_DIGEST
    );
}

#[test]
fn campaign_digest_is_schedule_independent() {
    // Same seed tree on very different shard counts: per-scenario streams
    // are derived by label, so the schedule must not leak into results.
    let mut narrow = CampaignConfig::smoke(42);
    narrow.threads = 1;
    let mut wide = CampaignConfig::smoke(42);
    wide.threads = 7;
    assert_eq!(run_campaign(&narrow).digest, run_campaign(&wide).digest);
}
