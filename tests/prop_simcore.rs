//! Property tests for the simulation kernel.

use proptest::prelude::*;

use fail_stutter::simcore::prelude::*;
use fail_stutter::simcore::stats::exact_quantile;

proptest! {
    /// Events always execute in (time, insertion) order, regardless of the
    /// order they were scheduled in.
    #[test]
    fn event_order_is_time_then_fifo(times in proptest::collection::vec(0u64..1_000, 1..64)) {
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), move |log: &mut Vec<(u64, usize)>, _| {
                log.push((t, i));
            });
        }
        sim.run();
        let log = sim.into_state();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {:?}", w);
            }
        }
    }

    /// The same seed produces the same stream; different labels decouple.
    #[test]
    fn rng_derivation_deterministic(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a: Vec<u64> = {
            let mut s = Stream::from_seed(seed).derive(&label);
            (0..32).map(|_| s.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut s = Stream::from_seed(seed).derive(&label);
            (0..32).map(|_| s.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// `next_below` stays in bounds for any positive bound.
    #[test]
    fn next_below_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut s = Stream::from_seed(seed);
        for _ in 0..64 {
            prop_assert!(s.next_below(bound) < bound);
        }
    }

    /// Histogram quantiles respect the bucket's relative-error guarantee
    /// against exact sample quantiles.
    #[test]
    fn histogram_quantile_bounded_error(
        samples in proptest::collection::vec(1.0f64..1e9, 32..256),
        q in 0.01f64..0.99
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        let _ = exact_quantile(&mut sorted, q); // sorts
        let approx = h.quantile(q);
        // Log-bucketed: relative error bounded by one bucket width. Rank
        // conventions differ by at most one position between the histogram
        // (ceil(q*n)) and the exact helper (round((n-1)*q)), so accept a
        // match against any sample within one rank of the target.
        let n = sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        let lo = k.saturating_sub(1);
        let hi = (k + 1).min(n - 1);
        let ok = sorted[lo..=hi]
            .iter()
            .any(|&s| approx >= s / 1.15 && approx <= s * 1.15);
        prop_assert!(
            ok,
            "q={q}: approx {approx} vs neighbourhood {:?}",
            &sorted[lo..=hi]
        );
    }

    /// A rate profile's `time_to_transfer` inverts `integrate`.
    #[test]
    fn rate_profile_transfer_inverts_integration(
        rates in proptest::collection::vec(0.1f64..100.0, 1..6),
        units in 1.0f64..10_000.0
    ) {
        let bps: Vec<(SimTime, f64)> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (SimTime::from_secs(10 * i as u64), r))
            .collect();
        let p = fail_stutter::simcore::resource::RateProfile::from_breakpoints(bps);
        let start = SimTime::from_secs(3);
        let dt = p.time_to_transfer(start, units).expect("positive rates never stall");
        let moved = p.integrate(start, start + dt);
        prop_assert!((moved - units).abs() < units * 1e-6 + 1e-3, "moved {moved} vs {units}");
    }

    /// A FIFO server never serves two requests concurrently and never
    /// goes backwards.
    #[test]
    fn fcfs_grants_are_disjoint_and_ordered(
        arrivals in proptest::collection::vec(0u64..1_000_000, 1..64),
        services in proptest::collection::vec(1u64..10_000, 64)
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut server = FcfsServer::new();
        let mut last_finish = SimTime::ZERO;
        for (&a, &s) in sorted.iter().zip(&services) {
            let g = server.serve(SimTime::from_nanos(a), SimDuration::from_nanos(s));
            prop_assert!(g.start >= last_finish, "overlap: {g:?}");
            prop_assert!(g.start >= SimTime::from_nanos(a), "served before arrival");
            prop_assert_eq!(g.finish - g.start, SimDuration::from_nanos(s));
            last_finish = g.finish;
        }
    }

    /// Token buckets never go negative and never exceed burst.
    #[test]
    fn token_bucket_invariant(
        rate in 1.0f64..1e6,
        burst in 1.0f64..1e6,
        takes in proptest::collection::vec((0u64..10_000_000, 0.0f64..1.0), 1..32)
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        for &(dt, frac) in &takes {
            now += SimDuration::from_nanos(dt);
            let n = frac * burst;
            if n > 0.0 {
                let granted = tb.take(now, n);
                prop_assert!(granted >= now);
                now = granted;
            }
            let avail = tb.available(now);
            prop_assert!((-1e-6..=burst + 1e-6).contains(&avail), "available {avail}");
        }
    }

    /// Welford's mean matches the arithmetic mean.
    #[test]
    fn welford_mean_matches(samples in proptest::collection::vec(-1e6f64..1e6, 1..128)) {
        let mut w = Welford::new();
        for &s in &samples {
            w.add(s);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!(w.min() <= w.max());
    }
}
