//! Smoke tests for the experiment harness: a representative subset of the
//! reproduction suite must pass from `cargo test`, so a regression in any
//! substrate is caught without running the full (slower) suite.

use fs_bench::experiments;

fn run(id: &str) {
    let e = experiments::by_id(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    let report = (e.run)();
    for f in &report.findings {
        assert!(
            f.pass,
            "{id} finding failed: {} (paper: {}, measured: {})",
            f.metric, f.paper, f.measured
        );
    }
    assert!(!report.tables.is_empty(), "{id} produced no tables");
}

#[test]
fn e01_scenario_one() {
    run("e01");
}

#[test]
fn e02_scenario_two() {
    run("e02");
}

#[test]
fn e03_scenario_three() {
    run("e03");
}

#[test]
fn e07_zones() {
    run("e07");
}

#[test]
fn e09_deadlock() {
    run("e09");
}

#[test]
fn e11_transpose() {
    run("e11");
}

#[test]
fn e17_cache_mask() {
    run("e17");
}

#[test]
fn e20_threshold() {
    run("e20");
}

#[test]
fn e21_spec_fidelity() {
    run("e21");
}

#[test]
fn e25_hedging() {
    run("e25");
}

#[test]
fn e29_river() {
    run("e29");
}

#[test]
fn registry_ids_are_unique_and_ordered() {
    let all = experiments::all();
    assert!(all.len() >= 33);
    for w in all.windows(2) {
        assert!(w[0].id < w[1].id, "{} !< {}", w[0].id, w[1].id);
    }
    for e in &all {
        assert!(experiments::by_id(e.id).is_some());
    }
    assert!(experiments::by_id("nope").is_none());
}

#[test]
fn e32_chunk_ablation() {
    run("e32");
}

#[test]
fn e33_persistence_ablation() {
    run("e33");
}

#[test]
fn e36_metastable() {
    run("e36");
}
