//! Tier-1 acceptance cell for the metastable subsystem.
//!
//! The headline claim, end to end: under the campaign population a
//! 30-second full outage *ignites* a retry/orphan-work feedback loop
//! that keeps goodput collapsed for at least 10× the trigger duration
//! after the trigger is gone (the sustaining effect that defines a
//! metastable failure), while either mitigation — depth/age load
//! shedding or the circuit breaker — restores the stable regime within
//! the recovery deadline. The fluid model must also agree that this
//! configuration is vulnerable.

use metastable::engine::{run, Config};
use metastable::oracle::{self, OracleParams, Regime};
use metastable::policy::{BreakerConfig, Mitigation, ShedConfig};
use simcore::prelude::*;
use stutter::injector::SlowdownProfile;

/// A full outage over [60 s, 90 s): capacity 1.0 → 0.0 → 1.0.
fn outage() -> SlowdownProfile {
    SlowdownProfile::from_breakpoints(vec![
        (SimTime::ZERO, 1.0),
        (SimTime::from_secs(60), 0.0),
        (SimTime::from_secs(90), 1.0),
    ])
}

fn shed() -> Mitigation {
    Mitigation::Shed(ShedConfig { max_depth: 1_000, drop_expired: true })
}

fn breaker() -> Mitigation {
    Mitigation::Breaker(BreakerConfig {
        window_ticks: 100,
        open_threshold: 0.5,
        half_open_threshold: 0.1,
        min_failures: 50,
        min_failures_half: 20,
        probe_per_tick: 2,
        half_open_per_tick: 50,
    })
}

#[test]
fn outage_ignites_sustained_collapse_and_mitigations_recover() {
    let cfg = Config::campaign();
    let params = OracleParams::default();
    assert!(
        oracle::predict_vulnerable(&cfg),
        "the fluid model must classify the campaign population as vulnerable"
    );

    let trigger = outage();
    let unmit = run(&cfg, &trigger, Mitigation::None, &mut Stream::from_seed(7));
    let a = oracle::assess(&cfg, &unmit, &params);
    oracle::check_conservation(&cfg, &unmit).expect("conservation");
    oracle::check_capacity(&unmit).expect("capacity");
    assert_eq!(a.regime, Regime::Metastable, "assessment: {a:?}");
    let (first, last) = a.trigger_secs.expect("trigger observed");
    let span = last - first + 1;
    assert!(
        a.collapsed_secs_post >= 10 * span,
        "collapse must outlive the trigger 10×: {} collapsed seconds after a {span}-second \
         trigger",
        a.collapsed_secs_post
    );

    for (label, mit) in [("shed", shed()), ("breaker", breaker())] {
        let trace = run(&cfg, &trigger, mit, &mut Stream::from_seed(7));
        let m = oracle::assess(&cfg, &trace, &params);
        oracle::check_conservation(&cfg, &trace).expect("conservation");
        let recovery = m.recovery_secs.unwrap_or(u64::MAX);
        assert!(
            recovery <= params.recovery_deadline.as_secs_f64() as u64,
            "{label} must recover within the deadline, took {recovery} s"
        );
        assert_ne!(m.regime, Regime::Metastable, "{label} must break the sustaining loop");
        assert!(
            trace.total_goodput() > 3 * unmit.total_goodput(),
            "{label} goodput {} should dwarf the unmitigated {}",
            trace.total_goodput(),
            unmit.total_goodput()
        );
    }
}

#[test]
fn no_trigger_means_no_collapse() {
    let cfg = Config::campaign();
    let flat = SlowdownProfile::nominal();
    let trace = run(&cfg, &flat, Mitigation::None, &mut Stream::from_seed(7));
    let a = oracle::assess(&cfg, &trace, &OracleParams::default());
    oracle::check_no_trigger_stable(&a).expect("vulnerable-but-untriggered stays stable");
    assert_eq!(a.collapsed_secs_post, 0);
}
