//! Golden regression tests: exact values pinned for seeded runs.
//!
//! Determinism is a core promise of this workspace ("same seed, same
//! result, on any machine"). These tests pin *exact* outputs of seeded
//! runs so an accidental behaviour change in any substrate shows up as a
//! golden mismatch, not as a silent drift in experiment results. If you
//! change a model on purpose, update the constants — the diff then
//! documents the behavioural change.
//!
//! Regenerating: re-run the failing test and copy the measured values from
//! the assertion message into the pinned constants (see docs/TESTING.md);
//! say in the commit message which intentional change moved them.

use fail_stutter::blockdev::prelude::*;
use fail_stutter::raidsim::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

#[test]
fn golden_rng_stream() {
    let mut s = Stream::from_seed(42);
    let first: Vec<u64> = (0..4).map(|_| s.next_u64()).collect();
    assert_eq!(
        first,
        vec![1546998764402558742, 6990951692964543102, 12544586762248559009, 17057574109182124193]
    );
    let mut d = Stream::from_seed(42).derive("disk-0");
    assert_eq!(d.next_u64(), 8688729524810016982);
}

#[test]
fn golden_event_loop() {
    let mut sim = Simulation::new(0u64);
    sim.schedule_periodic(SimDuration::from_micros(10), |count: &mut u64, _| {
        *count += 1;
        if *count < 1_000 {
            Some(SimDuration::from_micros(10))
        } else {
            None
        }
    });
    sim.run();
    assert_eq!(*sim.state(), 1_000);
    assert_eq!(sim.now(), SimTime::from_micros(10_000));
    assert_eq!(sim.events_executed(), 1_000);
}

#[test]
fn golden_disk_bandwidth() {
    let mut disk = Disk::new(Geometry::hawk_5400(), Stream::from_seed(7).derive("disk"));
    let (bw, finish) =
        measure_sequential_read(&mut disk, SimTime::ZERO, 16 << 20, 1 << 20).expect("ok");
    // Pinned: the exact simulated bandwidth of this seeded configuration.
    assert_eq!(finish.as_nanos(), 3_050_402_912);
    assert!((bw - 5_499_999.99).abs() < 1.0, "bw {bw}");
}

#[test]
fn golden_scsi_census() {
    let rng = Stream::from_seed(11);
    let disks = vec![Disk::new(Geometry::hawk_5400(), rng.derive("d0"))];
    let chain = ScsiChain::new(
        disks,
        ErrorProcess::default(),
        SimDuration::from_secs(30 * 86_400),
        &mut rng.derive("errors"),
    );
    let c = chain.full_horizon_census();
    assert_eq!(
        (c.scsi_timeout, c.scsi_parity, c.network, c.other),
        (36, 21, 54, 6),
        "census drifted: {c:?}"
    );
}

#[test]
fn golden_injector_timeline() {
    let inj = Injector::Blackouts {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(100) },
        duration: DurationDist::Const(SimDuration::from_secs(5)),
    };
    let p = inj.timeline(SimDuration::from_secs(3_600), &mut Stream::from_seed(1));
    assert_eq!(p.segments().len(), 63);
    let mean = p.mean_multiplier(SimDuration::from_secs(3_600));
    assert!((mean - 0.956_944_444).abs() < 1e-3, "mean {mean}");
}

#[test]
fn golden_adaptive_raid_write() {
    let stutter = Injector::Stutter {
        hold: DurationDist::Exp { mean: SimDuration::from_secs(20) },
        factor: FactorDist::Uniform { lo: 0.2, hi: 1.0 },
    };
    let rng = Stream::from_seed(3);
    let pairs: Vec<MirrorPair> = (0..4)
        .map(|i| {
            let p = stutter
                .timeline(SimDuration::from_secs(3_600), &mut rng.derive(&format!("pair-{i}")));
            MirrorPair::new(VDisk::new(10e6).with_profile(p), VDisk::new(10e6))
        })
        .collect();
    let array = Raid10::new(pairs, SimDuration::from_secs(3_600));
    let out =
        array.write_adaptive(Workload::new(16_384, 65_536), SimTime::ZERO, 64).expect("alive");
    assert_eq!(out.elapsed.as_nanos(), 39_205_471_668, "elapsed drifted: {}", out.elapsed);
    assert_eq!(out.per_pair_blocks.iter().sum::<u64>(), 16_384);
}
