//! Property tests for the RAID-10 controllers — the paper's bookkeeping
//! worries made machine-checked.

use proptest::prelude::*;

use fail_stutter::raidsim::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

const HORIZON: SimDuration = SimDuration::from_secs(100_000);

/// An array of 2..=8 pairs with arbitrary static speed factors.
fn arb_array() -> impl Strategy<Value = Raid10> {
    proptest::collection::vec(0.05f64..1.0, 2..8).prop_map(|factors| {
        let pairs: Vec<MirrorPair> = factors
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let profile = Injector::StaticSlowdown { factor: f }
                    .timeline(HORIZON, &mut Stream::from_seed(i as u64));
                MirrorPair::new(VDisk::new(10e6).with_profile(profile), VDisk::new(10e6))
            })
            .collect();
        Raid10::new(pairs, HORIZON)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The adaptive block map is a partition of [0, D): every block lands
    /// exactly once — "the controller must record where each block is
    /// written" (§3.2), and the record must be exact.
    #[test]
    fn adaptive_block_map_is_a_partition(
        array in arb_array(),
        blocks in 1u64..5_000,
        chunk in 1u64..256
    ) {
        let w = Workload::new(blocks, 4_096);
        let out = array.write_adaptive(w, SimTime::ZERO, chunk).expect("static-slow pairs stay alive");
        let map = out.block_map.expect("adaptive keeps a map");
        let mut covered = 0u64;
        for e in &map {
            prop_assert_eq!(e.start, covered, "gap or overlap at block {}", covered);
            prop_assert!(e.len > 0);
            prop_assert!(e.pair < array.n());
            covered += e.len;
        }
        prop_assert_eq!(covered, blocks);
        // And the per-pair tallies agree with the map.
        let mut tally = vec![0u64; array.n()];
        for e in &map {
            tally[e.pair] += e.len;
        }
        prop_assert_eq!(tally, out.per_pair_blocks);
    }

    /// Every controller conserves blocks.
    #[test]
    fn assignments_sum_to_d(array in arb_array(), blocks in 1u64..100_000) {
        let w = Workload::new(blocks, 4_096);
        let s1 = array.write_static(w, SimTime::ZERO).expect("alive");
        prop_assert_eq!(s1.per_pair_blocks.iter().sum::<u64>(), blocks);
        let s2 = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("alive");
        prop_assert_eq!(s2.per_pair_blocks.iter().sum::<u64>(), blocks);
        let s3 = array.write_adaptive(w, SimTime::ZERO, 64).expect("alive");
        prop_assert_eq!(s3.per_pair_blocks.iter().sum::<u64>(), blocks);
    }

    /// Under static (time-invariant) performance faults, the design
    /// hierarchy holds: adaptive is at least as fast as proportional
    /// (up to one chunk of slack), which is at least as fast as equal
    /// static striping (up to rounding).
    #[test]
    fn design_hierarchy_under_static_faults(array in arb_array(), blocks in 512u64..20_000) {
        let w = Workload::new(blocks, 65_536);
        let s1 = array.write_static(w, SimTime::ZERO).expect("alive");
        let s2 = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("alive");
        let s3 = array.write_adaptive(w, SimTime::ZERO, 16).expect("alive");
        // One block of rounding slack for s2 vs s1; one chunk for s3 vs s2.
        let slowest = array
            .pairs()
            .iter()
            .map(|p| p.write_rate_at(SimTime::ZERO))
            .min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
        let block_slack = 65_536.0 / slowest;
        let chunk_slack = 16.0 * 65_536.0 / slowest;
        prop_assert!(
            s2.elapsed.as_secs_f64() <= s1.elapsed.as_secs_f64() + block_slack + 1e-6,
            "proportional {} vs static {}",
            s2.elapsed,
            s1.elapsed
        );
        prop_assert!(
            s3.elapsed.as_secs_f64() <= s2.elapsed.as_secs_f64() + chunk_slack + 1e-6,
            "adaptive {} vs proportional {}",
            s3.elapsed,
            s2.elapsed
        );
    }

    /// The simulated scenario-1 and scenario-2 throughputs match the
    /// paper's closed forms for a single slow pair.
    #[test]
    fn closed_forms_hold(n in 2usize..12, frac in 0.05f64..1.0) {
        let slow = Injector::StaticSlowdown { factor: frac }
            .timeline(HORIZON, &mut Stream::from_seed(9));
        let mut pairs: Vec<MirrorPair> = (0..n).map(|_| MirrorPair::healthy(10e6)).collect();
        pairs[0] = MirrorPair::new(VDisk::new(10e6).with_profile(slow), VDisk::new(10e6));
        let array = Raid10::new(pairs, HORIZON);
        let w = Workload::new(n as u64 * 4_096, 65_536);
        let s1 = array.write_static(w, SimTime::ZERO).expect("alive");
        let s2 = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("alive");
        let predict1 = scenario1_throughput(n, 10e6, frac * 10e6);
        let predict2 = scenario2_throughput(n, 10e6, frac * 10e6);
        prop_assert!((s1.throughput / predict1 - 1.0).abs() < 0.02, "{} vs {}", s1.throughput, predict1);
        prop_assert!((s2.throughput / predict2 - 1.0).abs() < 0.02, "{} vs {}", s2.throughput, predict2);
    }

    /// Fail-stop is subsumed: with one replica of each pair failing at an
    /// arbitrary time, every controller still completes (pairs degrade to
    /// their survivors), and with any whole pair dead the static design
    /// halts while adaptive completes on the survivors.
    #[test]
    fn fail_stop_is_subsumed(
        n in 2usize..6,
        fail_s in 1u64..100,
        dead_pair in 0usize..6
    ) {
        let dead_pair = dead_pair % n;
        // One replica per pair dies: arrays degrade but never halt.
        let pairs: Vec<MirrorPair> = (0..n)
            .map(|i| {
                let dying = SlowdownProfile::nominal()
                    .with_failure_at(SimTime::from_secs(fail_s + i as u64));
                MirrorPair::new(VDisk::new(10e6).with_profile(dying), VDisk::new(10e6))
            })
            .collect();
        let array = Raid10::new(pairs, HORIZON);
        let w = Workload::new(16_384, 65_536);
        prop_assert!(array.write_static(w, SimTime::ZERO).is_ok());
        prop_assert!(array.write_adaptive(w, SimTime::ZERO, 64).is_ok());

        // A whole pair dies: static halts, adaptive survives.
        let mut pairs: Vec<MirrorPair> = (0..n).map(|_| MirrorPair::healthy(10e6)).collect();
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(fail_s));
        pairs[dead_pair] =
            MirrorPair::new(VDisk::new(10e6).with_profile(dead.clone()), VDisk::new(10e6).with_profile(dead));
        let array = Raid10::new(pairs, HORIZON);
        // Size the write so it cannot finish before the pair dies.
        let blocks = (n as f64 * 10e6 * (fail_s + 60) as f64 / 65_536.0) as u64;
        let w = Workload::new(blocks, 65_536);
        let halted = matches!(
            array.write_static(w, SimTime::ZERO),
            Err(RaidError::PairFailed { .. })
        );
        prop_assert!(halted);
        let adaptive = array.write_adaptive(w, SimTime::ZERO, 64).expect("survivors carry on");
        prop_assert_eq!(adaptive.per_pair_blocks.iter().sum::<u64>(), blocks);
    }
}
