//! Property tests for the fail-stutter fault model.

use proptest::prelude::*;

use fail_stutter::simcore::prelude::*;
use fail_stutter::stutter::prelude::*;

/// Strategy producing an arbitrary injector from the §2 catalog.
fn arb_injector() -> impl Strategy<Value = Injector> {
    prop_oneof![
        Just(Injector::NoFault),
        (0.01f64..1.0).prop_map(|factor| Injector::StaticSlowdown { factor }),
        (1u64..120, 1u64..30).prop_map(|(gap, dur)| Injector::Blackouts {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(gap) },
            duration: DurationDist::Const(SimDuration::from_secs(dur)),
        }),
        (1u64..120, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(hold, a, b)| Injector::Stutter {
            hold: DurationDist::Const(SimDuration::from_secs(hold)),
            factor: FactorDist::TwoPoint { p: 0.8, a, b },
        }),
        (1u64..120, 1u64..60, 0.0f64..0.99).prop_map(|(gap, dur, factor)| Injector::Episodes {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(gap) },
            duration: DurationDist::Const(SimDuration::from_secs(dur)),
            factor,
        }),
        (0u64..1_000, 1u64..1_000, 0.0f64..1.0, proptest::option::of(0u64..500)).prop_map(
            |(onset, ramp, floor, fail)| Injector::Wearout {
                onset: SimTime::from_secs(onset),
                ramp: SimDuration::from_secs(ramp),
                floor,
                fail_after: fail.map(SimDuration::from_secs),
            }
        ),
    ]
}

const HORIZON: SimDuration = SimDuration::from_secs(1_800);

proptest! {
    /// Every injector's timeline keeps multipliers within [0, 1] and is
    /// deterministic for a given seed.
    #[test]
    fn timelines_are_bounded_and_deterministic(inj in arb_injector(), seed in any::<u64>()) {
        let p1 = inj.timeline(HORIZON, &mut Stream::from_seed(seed));
        let p2 = inj.timeline(HORIZON, &mut Stream::from_seed(seed));
        prop_assert_eq!(&p1, &p2);
        for s in (0..1_800).step_by(7) {
            let m = p1.multiplier_at(SimTime::from_secs(s));
            prop_assert!((0.0..=1.0).contains(&m), "multiplier {m} at {s}s");
        }
        let mean = p1.mean_multiplier(HORIZON);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&mean), "mean {mean}");
    }

    /// Composition is pointwise multiplication: bounded by each factor,
    /// and composing with NoFault is the identity.
    #[test]
    fn composition_is_pointwise_product(
        a in arb_injector(),
        b in arb_injector(),
        seed in any::<u64>()
    ) {
        let pa = a.timeline(HORIZON, &mut Stream::from_seed(seed));
        let pb = b.timeline(HORIZON, &mut Stream::from_seed(seed.wrapping_add(1)));
        let pc = pa.compose(&pb);
        for s in (0..1_800).step_by(13) {
            let t = SimTime::from_secs(s);
            let expect = pa.multiplier_at(t) * pb.multiplier_at(t);
            prop_assert!((pc.multiplier_at(t) - expect).abs() < 1e-12);
        }
        let identity = pa.compose(&SlowdownProfile::nominal());
        for s in (0..1_800).step_by(13) {
            let t = SimTime::from_secs(s);
            prop_assert!((identity.multiplier_at(t) - pa.multiplier_at(t)).abs() < 1e-12);
        }
    }

    /// After an absolute failure the multiplier is zero forever, and
    /// `next_active` never resurrects the component.
    #[test]
    fn failure_is_permanent(inj in arb_injector(), seed in any::<u64>(), fail_s in 0u64..1_800) {
        let p = inj
            .timeline(HORIZON, &mut Stream::from_seed(seed))
            .with_failure_at(SimTime::from_secs(fail_s));
        for s in (fail_s..fail_s + 600).step_by(11) {
            let t = SimTime::from_secs(s);
            prop_assert_eq!(p.multiplier_at(t), 0.0);
            prop_assert!(p.failed_at(t));
            prop_assert_eq!(p.next_active(t), None);
        }
    }

    /// Spec classification is monotone: a slower observation is never
    /// healthier than a faster one.
    #[test]
    fn spec_classification_monotone(
        nominal in 1.0f64..1e9,
        tol in 0.1f64..1.0,
        r1 in 0.0f64..2.0,
        r2 in 0.0f64..2.0
    ) {
        let spec = PerfSpec::constant_with_tolerance(nominal, tol);
        let (fast, slow) = if r1 >= r2 { (r1, r2) } else { (r2, r1) };
        let h_fast = spec.classify(fast * nominal);
        let h_slow = spec.classify(slow * nominal);
        prop_assert!(
            h_fast.badness() <= h_slow.badness(),
            "fast {h_fast:?} vs slow {h_slow:?}"
        );
        prop_assert!(h_fast.delivered_fraction() >= h_slow.delivered_fraction() - 1e-9);
    }

    /// The registry never exports a performance fault that held for less
    /// than the persistence window, and always exports one that held for
    /// longer (with continuous reporting).
    #[test]
    fn registry_persistence_rule(hold_s in 1u64..120, persist_s in 1u64..120) {
        let mut r = Registry::new(SimDuration::from_secs(persist_s));
        let c = ComponentId(0);
        let verdict = HealthState::PerfFaulty { severity: 0.5 };
        let mut exported = false;
        for s in 0..=hold_s {
            if r.report(c, SimTime::from_secs(s), verdict).is_some() {
                exported = true;
            }
        }
        prop_assert_eq!(exported, hold_s >= persist_s, "hold {} persist {}", hold_s, persist_s);
    }

    /// Threshold detector: verdicts partition latency space exactly at the
    /// configured thresholds.
    #[test]
    fn threshold_detector_partitions(lat_us in 1u64..10_000_000) {
        let degraded = SimDuration::from_millis(100);
        let failed = SimDuration::from_secs(5);
        let mut d = ThresholdDetector::new(degraded, failed);
        let latency = SimDuration::from_micros(lat_us);
        let verdict = d.observe(latency);
        if latency >= failed {
            prop_assert_eq!(verdict, HealthState::Failed);
        } else if latency >= degraded {
            let is_perf_faulty = matches!(verdict, HealthState::PerfFaulty { .. });
            prop_assert!(is_perf_faulty);
        } else {
            prop_assert_eq!(verdict, HealthState::Healthy);
        }
    }
}

proptest! {
    /// Compiling random bounded performance-fault events into a profile
    /// keeps multipliers within `[0, 1]` and recovers after every fault.
    #[test]
    fn event_compilation_is_bounded(
        faults in proptest::collection::vec(
            (0u64..1_000, 1u64..200, 0.01f64..0.99),
            1..8
        )
    ) {
        use fail_stutter::stutter::events::{perf_fault, profile_from_events};
        let events: Vec<FaultEvent> = faults
            .iter()
            .map(|&(at, dur, sev)| {
                perf_fault(
                    ComponentId(0),
                    SimTime::from_secs(at),
                    Some(SimDuration::from_secs(dur)),
                    sev,
                )
            })
            .collect();
        let p = profile_from_events(&events);
        for s in (0..1_500).step_by(7) {
            let m = p.multiplier_at(SimTime::from_secs(s));
            prop_assert!((0.0..=1.0).contains(&m));
        }
        // After every fault window closes, the profile is nominal again.
        let last_end = faults.iter().map(|&(at, dur, _)| at + dur).max().expect("non-empty");
        prop_assert_eq!(p.multiplier_at(SimTime::from_secs(last_end + 1)), 1.0);
        prop_assert_eq!(p.fail_at(), None);
    }

    /// The catalog generates valid, deterministic timelines for any seed.
    #[test]
    fn catalog_timelines_valid_for_any_seed(seed in any::<u64>()) {
        use fail_stutter::stutter::catalog;
        for (name, inj) in catalog::all() {
            let a = inj.timeline(SimDuration::from_secs(600), &mut Stream::from_seed(seed));
            let b = inj.timeline(SimDuration::from_secs(600), &mut Stream::from_seed(seed));
            prop_assert_eq!(&a, &b, "{} not deterministic", name);
            let mean = a.mean_multiplier(SimDuration::from_secs(600));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&mean), "{name}: {mean}");
        }
    }
}
