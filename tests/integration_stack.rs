//! Cross-crate integration tests: the full fail-stutter stack working
//! together — injectors from `stutter` driving `blockdev`/`raidsim`
//! hardware, watched by detectors, reacted to by `adapt` mechanisms.

use fail_stutter::adapt::prelude::*;
use fail_stutter::blockdev::prelude::*;
use fail_stutter::cluster::prelude::*;
use fail_stutter::raidsim::prelude::*;
use fail_stutter::simcore::prelude::*;
use fail_stutter::simcore::resource::RateProfile;
use fail_stutter::stutter::prelude::*;

const HOUR: SimDuration = SimDuration::from_secs(3600);

/// End-to-end: a stuttering disk is detected, exported by the registry,
/// and the work-queue layer routes around it.
#[test]
fn detect_export_and_route_around() {
    // Four "disks" as rate sources; disk 2 stutters at 30% persistently.
    let injectors = [
        Injector::NoFault,
        Injector::NoFault,
        Injector::StaticSlowdown { factor: 0.3 },
        Injector::NoFault,
    ];
    let rng = Stream::from_seed(100);
    let profiles: Vec<SlowdownProfile> = injectors
        .iter()
        .enumerate()
        .map(|(i, inj)| inj.timeline(HOUR, &mut rng.derive(&format!("d{i}"))))
        .collect();

    // Phase 1: monitoring. Sample rates once a second for two minutes.
    let spec = PerfSpec::constant(10e6);
    let mut detectors: Vec<EwmaDetector> =
        (0..4).map(|_| EwmaDetector::new(spec.clone(), 0.3)).collect();
    let mut registry = Registry::new(SimDuration::from_secs(30));
    for s in 0..120 {
        let now = SimTime::from_secs(s);
        for (i, p) in profiles.iter().enumerate() {
            let verdict = detectors[i].observe(10e6 * p.multiplier_at(now));
            registry.report(ComponentId(i as u32), now, verdict);
        }
    }
    let faulty = registry.faulty_components();
    assert_eq!(faulty.len(), 1, "exactly the persistent stutterer: {faulty:?}");
    assert_eq!(faulty[0].0, ComponentId(2));

    // Phase 2: reaction. Feed the exported states into pull-based work
    // distribution and verify the faulty disk gets proportionally less.
    let rates: Vec<RateProfile> = profiles.iter().map(|p| p.to_rate_profile(10e6)).collect();
    let out = distribute(Strategy::Pull, &rates, 400, 1e6, SimTime::ZERO).expect("all alive");
    assert!(
        (out.per_consumer[2] as f64) < 0.5 * out.per_consumer[0] as f64,
        "faulty disk must receive less work: {:?}",
        out.per_consumer
    );
}

/// The §3.2 pipeline on mechanical disks: blockdev's zoned disks gauge
/// differently, and the raidsim proportional controller uses the gauges.
#[test]
fn mechanical_gauging_feeds_proportional_striping() {
    // Gauge two real (mechanical-model) disks: one clean, one remap-heavy.
    let mut clean = Disk::new(Geometry::hawk_5400(), Stream::from_seed(1));
    let mut dirty =
        Disk::new(Geometry::hawk_5400(), Stream::from_seed(1)).with_random_defects(2_000);
    let (bw_clean, _) =
        measure_sequential_read(&mut clean, SimTime::ZERO, 32 << 20, 1 << 20).expect("ok");
    let (bw_dirty, _) =
        measure_sequential_read(&mut dirty, SimTime::ZERO, 32 << 20, 1 << 20).expect("ok");
    assert!(bw_dirty < bw_clean);

    // Build fluid pairs from the gauged bandwidths and write through the
    // proportional controller.
    let pairs = vec![
        MirrorPair::healthy(bw_clean),
        MirrorPair::healthy(bw_dirty),
        MirrorPair::healthy(bw_clean),
    ];
    let array = Raid10::new(pairs, HOUR);
    let w = Workload::new(8_192, 65_536);
    let out = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("alive");
    // The remap-heavy pair receives proportionally fewer blocks.
    assert!(out.per_pair_blocks[1] < out.per_pair_blocks[0]);
    let expected = 2.0 * bw_clean + bw_dirty;
    assert!(
        (out.throughput / expected - 1.0).abs() < 0.02,
        "throughput {} vs expected {expected}",
        out.throughput
    );
}

/// Wear-out on a mirror pair: the predictor fires, the rebuild to a hot
/// spare completes before the dying replica fail-stops.
#[test]
fn predict_then_rebuild_before_failure() {
    let wearout = Injector::Wearout {
        onset: SimTime::from_secs(600),
        ramp: SimDuration::from_secs(1_200),
        floor: 0.3,
        fail_after: Some(SimDuration::from_secs(1_800)),
    };
    let profile = wearout.timeline(SimDuration::from_secs(7_200), &mut Stream::from_seed(5));
    let fail_at = profile.fail_at().expect("wearout fails");
    let pair = MirrorPair::new(VDisk::new(10e6).with_profile(profile.clone()), VDisk::new(10e6));

    // Watch the dying replica.
    let mut predictor = FailurePredictor::new(PredictorConfig::default());
    let mut predicted_at = None;
    let mut t = SimTime::ZERO;
    while t < fail_at && predicted_at.is_none() {
        if predictor.observe(t, profile.multiplier_at(t)).is_some() {
            predicted_at = Some(t);
        }
        t += SimDuration::from_secs(30);
    }
    let predicted_at = predicted_at.expect("prediction must fire before failure");
    assert!(predicted_at < fail_at);

    // React: copy the pair's data off the *healthy* replica onto a spare,
    // starting at prediction time. 10 GB at 30% of 10 MB/s ≈ 3333 s.
    let outcome = rebuild_to_spare(
        &pair,
        false, // survivor is replica b (the healthy one)
        10e9,
        20e6,
        RebuildPolicy::default(),
        predicted_at,
        SimDuration::from_secs(100_000),
    )
    .expect("healthy replica survives");
    assert!(
        outcome.completed < fail_at + SimDuration::from_secs(3600),
        "rebuild finished at {} (failure at {fail_at})",
        outcome.completed
    );
}

/// A hogged cluster node slows the sort; hedging the same workload as a
/// task batch bounds the tail.
#[test]
fn sort_and_hedging_agree_on_the_straggler() {
    let hog = Injector::StaticSlowdown { factor: 0.5 }.timeline(HOUR, &mut Stream::from_seed(11));
    let mut nodes: Vec<Node> = (0..8).map(|_| Node::new(1e6, 10e6)).collect();
    nodes[5] = Node::new(1e6, 10e6).with_cpu_profile(hog.clone()).with_disk_profile(hog.clone());

    let job = SortJob::minute_sort(4_000_000);
    let static_out = run_sort(&nodes, job, Placement::Static, SimTime::ZERO);
    let adaptive_out = run_sort(&nodes, job, Placement::Adaptive, SimTime::ZERO);
    assert!(adaptive_out.total < static_out.total);

    // The same nodes as hedged task workers.
    let rates: Vec<RateProfile> = nodes.iter().map(|n| n.cpu_rate_profile(HOUR)).collect();
    let blocking = run_hedged(&rates, 32, 1e6, HedgeConfig { hedge_after: None }, SimTime::ZERO)
        .expect("alive");
    let hedged = run_hedged(
        &rates,
        32,
        1e6,
        HedgeConfig { hedge_after: Some(SimDuration::from_millis(1_500)) },
        SimTime::ZERO,
    )
    .expect("alive");
    assert!(hedged.worst_latency() <= blocking.worst_latency());
}

/// Availability accounting across the stack: the same injected stutter
/// costs the fail-stop design availability and leaves the adaptive design
/// untouched.
#[test]
fn availability_gap_under_stutter() {
    let slow = Injector::StaticSlowdown { factor: 0.25 }.timeline(HOUR, &mut Stream::from_seed(13));
    let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10e6)).collect();
    pairs[0] = MirrorPair::new(VDisk::new(10e6).with_profile(slow), VDisk::new(10e6));
    let array = Raid10::new(pairs, HOUR);

    let w = Workload::new(1_024, 65_536); // 64 MB writes
    let floor_bytes_per_sec = 0.7 * 40e6;
    let deadline = SimDuration::from_secs_f64(w.total_bytes() as f64 / floor_bytes_per_sec);
    let mut meter_static = AvailabilityMeter::new(deadline);
    let mut meter_adaptive = AvailabilityMeter::new(deadline);
    for _ in 0..16 {
        match array.write_static(w, SimTime::ZERO) {
            Ok(out) => meter_static.record(out.elapsed),
            Err(_) => meter_static.record_dropped(),
        }
        match array.write_adaptive(w, SimTime::ZERO, 16) {
            Ok(out) => meter_adaptive.record(out.elapsed),
            Err(_) => meter_adaptive.record_dropped(),
        }
    }
    assert_eq!(meter_static.availability(), 0.0, "fail-stop design misses every deadline");
    assert_eq!(meter_adaptive.availability(), 1.0, "adaptive design meets every deadline");
}

/// Determinism across the whole stack: everything keyed by seeds.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let inj = Injector::Compose(vec![
            Injector::Blackouts {
                interarrival: DurationDist::Exp { mean: SimDuration::from_secs(40) },
                duration: DurationDist::Const(SimDuration::from_secs(1)),
            },
            Injector::StaticSlowdown { factor: 0.8 },
        ]);
        let rng = Stream::from_seed(999);
        let pairs: Vec<MirrorPair> = (0..4)
            .map(|i| {
                let p = inj.timeline(HOUR, &mut rng.derive(&format!("p{i}")));
                MirrorPair::new(VDisk::new(10e6).with_profile(p), VDisk::new(10e6))
            })
            .collect();
        let array = Raid10::new(pairs, HOUR);
        let out =
            array.write_adaptive(Workload::new(8_192, 65_536), SimTime::ZERO, 32).expect("alive");
        (out.elapsed, out.per_pair_blocks)
    };
    assert_eq!(run(), run());
}

/// Two independent early-warning channels agree on a dying disk: the
/// rate-based predictor (stutter) and the event-based SMART advisory
/// (blockdev) both fire before the fail-stop, and the WiND manager turns
/// the warning into a completed rebuild.
#[test]
fn smart_and_predictor_agree_then_wind_rescues() {
    use fail_stutter::blockdev::smart::{SmartConfig, SmartEvent, SmartLog};

    let horizon = SimDuration::from_secs(14_400);
    let wear = Injector::Wearout {
        onset: SimTime::from_secs(3_600),
        ramp: SimDuration::from_secs(7_200),
        floor: 0.25,
        fail_after: Some(SimDuration::from_secs(1_800)),
    };
    let profile = wear.timeline(horizon, &mut Stream::from_seed(123));
    let fail_at = profile.fail_at().expect("dies");

    // Channel 1: delivered-rate trend.
    let mut predictor = FailurePredictor::new(PredictorConfig::default());
    let mut rate_warning = None;
    let mut t = SimTime::ZERO;
    while t < fail_at {
        if rate_warning.is_none() {
            if let Some(p) = predictor.observe(t, profile.multiplier_at(t)) {
                rate_warning = Some(p.at);
            }
        }
        t += SimDuration::from_secs(30);
    }

    // Channel 2: error events accelerating as the medium degrades. Model
    // the reallocation rate as inversely proportional to health: one event
    // per day while healthy, one per ~40 minutes at 25% health.
    let mut smart = SmartLog::new(SmartConfig {
        window: SimDuration::from_secs(3_600),
        factor: 4.0,
        min_events: 6,
    });
    let mut smart_warning = None;
    // Pre-history: a quiet month before the simulated window.
    let mut now = SimTime::ZERO;
    for d in 0..30u64 {
        smart.record(SimTime::from_secs(d * 86_400), SmartEvent::Reallocated);
        now = SimTime::from_secs(d * 86_400);
    }
    let base = now + SimDuration::from_secs(86_400);
    // Sample every minute; the event rate is one per hour while healthy,
    // rising as the square of the health deficit (deterministic
    // accumulator, no extra randomness needed).
    let mut t = SimTime::ZERO;
    let mut acc = 0.0f64;
    while t < fail_at {
        let health = profile.multiplier_at(t);
        let every_secs = (3_600.0 * health * health).max(120.0);
        acc += 60.0 / every_secs;
        if acc >= 1.0 {
            acc -= 1.0;
            if let Some(a) = smart.record(base + (t - SimTime::ZERO), SmartEvent::Reallocated) {
                smart_warning = Some(a.at);
            }
        }
        t += SimDuration::from_secs(60);
    }

    let rate_at = rate_warning.expect("rate-based predictor fires");
    assert!(rate_at < fail_at);
    let smart_at = smart_warning.expect("SMART advisory fires");
    assert!(smart_at < base + (fail_at - SimTime::ZERO));

    // The manager acts on the warning: WiND with a spare rides through.
    let pair = MirrorPair::new(
        VDisk::new(10e6).with_profile(profile.clone()),
        VDisk::new(10e6).with_profile(profile),
    );
    let mut pairs =
        vec![MirrorPair::healthy(10e6), MirrorPair::healthy(10e6), MirrorPair::healthy(10e6)];
    pairs.insert(1, pair);
    let out = run_wind(&pairs, WindConfig::default(), Management::Managed { hot_spares: 1 });
    assert!(out.availability > 0.9, "{}", out.availability);
    assert!(out.events.iter().any(|e| matches!(e, WindEvent::RebuildCompleted { pair: 1, .. })));
}
