//! # fail-stutter — a toolkit for fail-stutter fault tolerance
//!
//! A from-scratch Rust reproduction of *"Fail-Stutter Fault Tolerance"*
//! (Remzi H. Arpaci-Dusseau and Andrea C. Arpaci-Dusseau, HotOS VIII,
//! 2001). The paper proposes a fault model between fail-stop and
//! Byzantine: components may, in addition to stopping detectably, become
//! **performance-faulty** — correct but slower than their performance
//! specification. Systems designed only for fail-stop track their slowest
//! component; systems designed for fail-stutter keep delivering the
//! bandwidth that is actually available.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`simcore`] | deterministic discrete-event simulation kernel |
//! | [`stutter`] | **the fault model**: taxonomy, specs, injectors, detectors, notification, prediction |
//! | [`blockdev`] | disk substrate: zones, bad-block remapping, SCSI chains, file-system aging |
//! | [`netsim`] | network substrate: unfair switches, deadlock watchdogs, flow-control collapse |
//! | [`cpusim`] | processor substrate: masked caches, nondeterministic TLBs, hogs, predictor aliasing |
//! | [`raidsim`] | the paper's §3.2 RAID-10 example: three controller designs |
//! | [`adapt`] | adaptive mechanisms: AIMD, distributed queues, hedging, availability |
//! | [`cluster`] | parallel workloads: NOW-Sort-style sort, replicated hash table |
//! | [`perfplane`] | cluster-wide performance-state plane: gossip, staleness-aware views, consumers |
//! | [`metastable`] | closed-loop client populations: retry storms, metastable collapse, mitigation policies |
//!
//! # Quickstart
//!
//! ```
//! use fail_stutter::raidsim::prelude::*;
//! use fail_stutter::simcore::prelude::*;
//! use fail_stutter::stutter::prelude::*;
//!
//! // Four mirror pairs at 10 MB/s; one develops a 50% stutter.
//! let slow = Injector::StaticSlowdown { factor: 0.5 }
//!     .timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
//! let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10e6)).collect();
//! pairs[0] = MirrorPair::new(VDisk::new(10e6).with_profile(slow), VDisk::new(10e6));
//! let array = Raid10::new(pairs, SimDuration::from_secs(3600));
//!
//! let w = Workload::new(65_536, 65_536);
//! let fail_stop = array.write_static(w, SimTime::ZERO).unwrap();
//! let fail_stutter = array.write_adaptive(w, SimTime::ZERO, 64).unwrap();
//! assert!(fail_stutter.throughput / fail_stop.throughput > 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adapt;
pub use blockdev;
pub use cluster;
pub use cpusim;
pub use metastable;
pub use netsim;
pub use perfplane;
pub use raidsim;
pub use simcore;
pub use stutter;
