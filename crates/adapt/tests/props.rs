//! Property tests for the adaptive mechanisms.

use proptest::prelude::*;

use adapt::prelude::*;
use adapt::queue::Strategy as DistStrategy;
use simcore::resource::RateProfile;
use simcore::time::{SimDuration, SimTime};

proptest! {
    /// Work distribution conserves items under both strategies.
    #[test]
    fn distribution_conserves_items(
        rates in proptest::collection::vec(0.1f64..100.0, 1..12),
        items in 1u64..2_000,
        pull in any::<bool>()
    ) {
        let profiles: Vec<RateProfile> = rates.iter().map(|&r| RateProfile::constant(r)).collect();
        let strategy = if pull { DistStrategy::Pull } else { DistStrategy::Push };
        let out = distribute(strategy, &profiles, items, 1.0, SimTime::ZERO).expect("alive");
        prop_assert_eq!(out.per_consumer.iter().sum::<u64>(), items);
    }

    /// Pull never has a longer makespan than push (up to one item of
    /// slack on the slowest consumer).
    #[test]
    fn pull_never_materially_worse(
        rates in proptest::collection::vec(0.1f64..100.0, 2..10),
        items in 10u64..1_000
    ) {
        let profiles: Vec<RateProfile> = rates.iter().map(|&r| RateProfile::constant(r)).collect();
        let push = distribute(DistStrategy::Push, &profiles, items, 1.0, SimTime::ZERO).expect("alive");
        let pull = distribute(DistStrategy::Pull, &profiles, items, 1.0, SimTime::ZERO).expect("alive");
        let slowest = rates.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
        let slack = 1.0 / slowest;
        prop_assert!(
            pull.makespan.as_secs_f64() <= push.makespan.as_secs_f64() + slack + 1e-9,
            "pull {} vs push {}",
            pull.makespan,
            push.makespan
        );
    }

    /// Pull's makespan is at least the aggregate-bandwidth lower bound.
    #[test]
    fn pull_respects_aggregate_bound(
        rates in proptest::collection::vec(0.1f64..100.0, 1..10),
        items in 1u64..1_000
    ) {
        let profiles: Vec<RateProfile> = rates.iter().map(|&r| RateProfile::constant(r)).collect();
        let out = distribute(DistStrategy::Pull, &profiles, items, 1.0, SimTime::ZERO).expect("alive");
        let aggregate: f64 = rates.iter().sum();
        let bound = items as f64 / aggregate;
        // Nanosecond rounding of each item's service time can shave up to
        // 0.5 ns per item off the theoretical bound.
        prop_assert!(out.makespan.as_secs_f64() >= bound - 1e-9 * items as f64);
    }

    /// Hedged batches commit every task exactly once, with a valid winner,
    /// and waste is bounded by total work.
    #[test]
    fn hedging_commits_exactly_once(
        speeds in proptest::collection::vec(0.05f64..2.0, 2..10),
        tasks in 1u64..128,
        hedge_s in proptest::option::of(1u64..20)
    ) {
        let rates: Vec<RateProfile> = speeds.iter().map(|&s| RateProfile::constant(s)).collect();
        let config = HedgeConfig { hedge_after: hedge_s.map(SimDuration::from_secs) };
        let out = run_hedged(&rates, tasks, 1.0, config, SimTime::ZERO).expect("all alive");
        prop_assert_eq!(out.tasks.len(), tasks as usize);
        for t in &out.tasks {
            prop_assert!(t.winner < speeds.len());
            prop_assert!(t.committed >= t.issued);
        }
        prop_assert!(out.work_wasted <= out.work_spent + 1e-9);
        prop_assert!(out.makespan >= out.worst_latency());
    }

    /// AIMD rates always stay within their clamps.
    #[test]
    fn aimd_stays_clamped(
        initial in 0.1f64..100.0,
        events in proptest::collection::vec(any::<bool>(), 1..128)
    ) {
        let mut a = Aimd::new(initial, 1.0, 0.5, 0.5, 50.0);
        for &up in &events {
            let r = if up { a.on_success() } else { a.on_congestion() };
            prop_assert!((0.5..=50.0).contains(&r), "rate {r}");
        }
    }

    /// Jain's fairness index is always in (0, 1] and is 1 for equal rates.
    #[test]
    fn fairness_index_bounds(rates in proptest::collection::vec(0.001f64..1e6, 1..32)) {
        let f = fairness_index(&rates);
        prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "index {f}");
        let equal = vec![rates[0]; rates.len()];
        prop_assert!((fairness_index(&equal) - 1.0).abs() < 1e-12);
    }

    /// Availability is the exact fraction of latencies within deadline.
    #[test]
    fn availability_is_a_fraction(
        lats in proptest::collection::vec(0u64..10_000, 1..128),
        deadline in 1u64..10_000
    ) {
        let latencies: Vec<SimDuration> =
            lats.iter().map(|&ms| SimDuration::from_millis(ms)).collect();
        let d = SimDuration::from_millis(deadline);
        let a = availability_of(&latencies, d);
        let expect =
            lats.iter().filter(|&&ms| ms <= deadline).count() as f64 / lats.len() as f64;
        prop_assert!((a - expect).abs() < 1e-12);
    }
}
