//! # adapt — adaptive algorithms for fail-stutter tolerance
//!
//! The mechanisms §3–§4 of *"Fail-Stutter Fault Tolerance"* call for, and
//! the related-work baselines the paper compares against:
//!
//! * [`aimd`] — TCP-style additive-increase / multiplicative-decrease rate
//!   control, converging to fair shares of a stuttering resource.
//! * [`queue`] — push (static partition) vs pull (River-style distributed
//!   queue) work distribution over consumers with time-varying rates.
//! * [`hedge`] — Shasha–Turek duplicate issue under slow-down failures,
//!   with reconciliation so side effects commit exactly once.
//! * [`avail`] — availability as Gray & Reuter define it: the fraction of
//!   offered load processed with acceptable response times.
//!
//! # Examples
//!
//! ```
//! use adapt::queue::{distribute, Strategy};
//! use simcore::resource::RateProfile;
//! use simcore::time::SimTime;
//!
//! // Four consumers, one at a third of the speed.
//! let rates: Vec<RateProfile> = [10.0, 10.0, 10.0, 10.0 / 3.0]
//!     .iter().map(|&r| RateProfile::constant(r)).collect();
//! let push = distribute(Strategy::Push, &rates, 400, 1.0, SimTime::ZERO).unwrap();
//! let pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).unwrap();
//! assert!(pull.makespan < push.makespan); // the distributed queue wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aimd;
pub mod avail;
pub mod hedge;
pub mod oracle;
pub mod queue;
pub mod river;
pub mod txn;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aimd::{fairness_index, share_bottleneck, Aimd};
    pub use crate::avail::{availability_of, AvailabilityMeter};
    pub use crate::hedge::{run_hedged, HedgeConfig, HedgeOutcome, TaskOutcome};
    pub use crate::queue::{
        distribute, distribute_weighted, DistributeOutcome, QueueError, Strategy,
    };
    pub use crate::river::{run_decluster, DeclusterOutcome, DeclusterPolicy};
    pub use crate::txn::{run_transactions, Executor, Txn, TxnBatchOutcome, TxnOutcome};
}
