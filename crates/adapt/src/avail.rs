//! Availability as Gray & Reuter define it.
//!
//! Paper §3.3: "Gray and Reuter define availability as follows: 'The
//! fraction of the offered load that is processed with acceptable response
//! times.' A system that only utilizes the fail-stop model is likely to
//! deliver poor performance under even a single performance failure; if
//! performance does not meet the threshold, availability decreases."
//!
//! [`AvailabilityMeter`] scores request latencies against a deadline and
//! reports that fraction.

use simcore::time::SimDuration;

/// Measures Gray–Reuter availability over a stream of request latencies.
#[derive(Clone, Debug)]
pub struct AvailabilityMeter {
    deadline: SimDuration,
    acceptable: u64,
    total: u64,
    dropped: u64,
}

impl AvailabilityMeter {
    /// Creates a meter with the given acceptable-response deadline.
    pub fn new(deadline: SimDuration) -> Self {
        AvailabilityMeter { deadline, acceptable: 0, total: 0, dropped: 0 }
    }

    /// Records a completed request.
    pub fn record(&mut self, latency: SimDuration) {
        self.total += 1;
        if latency <= self.deadline {
            self.acceptable += 1;
        }
    }

    /// Records a request that never completed (counts as unacceptable).
    pub fn record_dropped(&mut self) {
        self.total += 1;
        self.dropped += 1;
    }

    /// The availability: fraction of offered load processed within the
    /// deadline. A meter with no offered load reports 1.0.
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.acceptable as f64 / self.total as f64
        }
    }

    /// Offered requests so far.
    pub fn offered(&self) -> u64 {
        self.total
    }

    /// Requests that never completed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The deadline being enforced.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }
}

/// Computes availability for a batch of latencies against a deadline.
pub fn availability_of(latencies: &[SimDuration], deadline: SimDuration) -> f64 {
    let mut m = AvailabilityMeter::new(deadline);
    for &l in latencies {
        m.record(l);
    }
    m.availability()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fraction_within_deadline() {
        let mut m = AvailabilityMeter::new(SimDuration::from_millis(100));
        m.record(SimDuration::from_millis(50));
        m.record(SimDuration::from_millis(100)); // boundary counts
        m.record(SimDuration::from_millis(150));
        m.record(SimDuration::from_secs(10));
        assert!((m.availability() - 0.5).abs() < 1e-12);
        assert_eq!(m.offered(), 4);
    }

    #[test]
    fn dropped_requests_hurt() {
        let mut m = AvailabilityMeter::new(SimDuration::from_millis(100));
        m.record(SimDuration::from_millis(10));
        m.record_dropped();
        assert!((m.availability() - 0.5).abs() < 1e-12);
        assert_eq!(m.dropped(), 1);
    }

    #[test]
    fn empty_meter_is_fully_available() {
        let m = AvailabilityMeter::new(SimDuration::from_millis(1));
        assert_eq!(m.availability(), 1.0);
    }

    #[test]
    fn batch_helper_agrees() {
        let lats = vec![
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            SimDuration::from_millis(300),
        ];
        let a = availability_of(&lats, SimDuration::from_millis(100));
        assert!((a - 2.0 / 3.0).abs() < 1e-12);
    }
}
