//! Graduated declustering — River's mechanism for robust mirrored reads.
//!
//! Paper §4: River "provides mechanisms to enable consistent and high
//! performance in spite of erratic performance in underlying components,
//! focusing mainly on disks." Its central storage trick is *graduated
//! declustering*: every data partition is mirrored on two producers, and
//! consumers shift load between the mirrors in proportion to observed
//! rates, so a slow producer sheds half of each of its partitions to its
//! mirror-neighbours and a single stutter is absorbed smoothly by the
//! whole ring instead of gating one consumer.

use simcore::time::SimDuration;

/// How mirrored partitions are read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeclusterPolicy {
    /// Each partition is read entirely from its primary copy.
    PrimaryOnly,
    /// Graduated declustering: the two copies of each partition serve it
    /// in proportion to their producers' available rates, rebalanced
    /// continuously (modelled as an optimal fluid split).
    Graduated,
}

/// The outcome of streaming all partitions.
#[derive(Clone, Debug, PartialEq)]
pub struct DeclusterOutcome {
    /// Time until every partition is fully delivered.
    pub makespan: SimDuration,
    /// Bytes served by each producer.
    pub per_producer: Vec<f64>,
}

/// Streams `n` partitions of `partition_bytes` each over `n` producers in
/// a mirrored ring: partition `i` lives on producers `i` and `(i+1) % n`.
/// `speeds[p]` is producer `p`'s rate in bytes/second.
pub fn run_decluster(
    speeds: &[f64],
    partition_bytes: f64,
    policy: DeclusterPolicy,
) -> DeclusterOutcome {
    let n = speeds.len();
    assert!(n >= 2, "a mirrored ring needs at least two producers");
    assert!(partition_bytes > 0.0, "empty partitions");
    for &s in speeds {
        assert!(s > 0.0, "producer rates must be positive");
    }

    match policy {
        DeclusterPolicy::PrimaryOnly => {
            // Producer p serves its own partition alone.
            let mut per_producer = vec![0.0; n];
            let mut makespan = 0.0f64;
            for p in 0..n {
                per_producer[p] = partition_bytes;
                makespan = makespan.max(partition_bytes / speeds[p]);
            }
            DeclusterOutcome { makespan: SimDuration::from_secs_f64(makespan), per_producer }
        }
        DeclusterPolicy::Graduated => {
            // Fluid-optimal split: find the smallest T such that the
            // bipartite demand (each partition needs `partition_bytes`,
            // each producer supplies `speeds[p]·T`, partition i may draw
            // only from producers i and i+1) is feasible. Binary search on
            // T with a max-flow check specialised to the ring.
            let total: f64 = speeds.iter().sum();
            let lo = partition_bytes * n as f64 / total;
            let hi = partition_bytes
                / speeds.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
            let feasible = |t: f64| ring_feasible(speeds, partition_bytes, t);
            let mut lo = lo * 0.999;
            let mut hi = hi * 1.001;
            for _ in 0..64 {
                let mid = 0.5 * (lo + hi);
                if feasible(mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let t = hi;
            let per_producer = ring_assignment(speeds, partition_bytes, t);
            DeclusterOutcome { makespan: SimDuration::from_secs_f64(t), per_producer }
        }
    }
}

/// Greedy feasibility check for the ring at horizon `t`: walk partitions
/// in order, drawing as much as possible from the primary (producer i),
/// spilling the rest to the mirror (producer i+1).
///
/// The greedy walk is not exact for all ring instances (capacity freed by
/// wrap-around), so run it from every starting rotation and accept if any
/// succeeds — n² but n is small.
fn ring_feasible(speeds: &[f64], partition_bytes: f64, t: f64) -> bool {
    let n = speeds.len();
    'rot: for rot in 0..n {
        let mut cap: Vec<f64> = (0..n).map(|p| speeds[p] * t).collect();
        for k in 0..n {
            let i = (rot + k) % n;
            let primary = i;
            let mirror = (i + 1) % n;
            let from_primary = cap[primary].min(partition_bytes);
            let rest = partition_bytes - from_primary;
            if rest > cap[mirror] + 1e-9 {
                continue 'rot;
            }
            cap[primary] -= from_primary;
            cap[mirror] -= rest;
        }
        return true;
    }
    false
}

/// Reconstructs a feasible per-producer byte assignment at horizon `t`.
fn ring_assignment(speeds: &[f64], partition_bytes: f64, t: f64) -> Vec<f64> {
    let n = speeds.len();
    for rot in 0..n {
        let mut cap: Vec<f64> = (0..n).map(|p| speeds[p] * t).collect();
        let mut served = vec![0.0; n];
        let mut ok = true;
        for k in 0..n {
            let i = (rot + k) % n;
            let mirror = (i + 1) % n;
            let from_primary = cap[i].min(partition_bytes);
            let rest = partition_bytes - from_primary;
            if rest > cap[mirror] + 1e-9 {
                ok = false;
                break;
            }
            cap[i] -= from_primary;
            served[i] += from_primary;
            cap[mirror] -= rest;
            served[mirror] += rest;
        }
        if ok {
            return served;
        }
    }
    // The caller only asks at a feasible horizon.
    panic!("no feasible assignment at the given horizon");
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn healthy_ring_ties_both_policies() {
        let speeds = vec![10e6; 4];
        let primary = run_decluster(&speeds, GB, DeclusterPolicy::PrimaryOnly);
        let graduated = run_decluster(&speeds, GB, DeclusterPolicy::Graduated);
        let p = primary.makespan.as_secs_f64();
        let g = graduated.makespan.as_secs_f64();
        assert!((p - 100.0).abs() < 0.1, "{p}");
        assert!((g - 100.0).abs() < 0.5, "{g}");
    }

    #[test]
    fn one_slow_producer_gates_primary_only() {
        let mut speeds = vec![10e6; 4];
        speeds[2] = 5e6;
        let out = run_decluster(&speeds, GB, DeclusterPolicy::PrimaryOnly);
        assert!((out.makespan.as_secs_f64() - 200.0).abs() < 0.1, "{}", out.makespan);
    }

    #[test]
    fn graduated_declustering_absorbs_the_stutter() {
        // Aggregate 35 MB/s over 4 GB → the fluid optimum is ~114.3 s;
        // the ring constraint (a partition only has two homes) keeps it
        // close to that, far below the 200 s of primary-only.
        let mut speeds = vec![10e6; 4];
        speeds[2] = 5e6;
        let out = run_decluster(&speeds, GB, DeclusterPolicy::Graduated);
        let t = out.makespan.as_secs_f64();
        assert!(t < 140.0, "makespan {t}");
        // The slow producer served materially less than its healthy peers.
        assert!(out.per_producer[2] < 0.75 * out.per_producer[0], "{:?}", out.per_producer);
    }

    #[test]
    fn served_bytes_are_conserved() {
        let mut speeds = vec![10e6, 8e6, 12e6, 6e6, 10e6];
        speeds[1] = 3e6;
        for policy in [DeclusterPolicy::PrimaryOnly, DeclusterPolicy::Graduated] {
            let out = run_decluster(&speeds, GB, policy);
            let total: f64 = out.per_producer.iter().sum();
            assert!((total - 5.0 * GB).abs() < 1e6, "{policy:?}: served {total}");
        }
    }

    #[test]
    fn graduated_never_loses_to_primary_only() {
        let cases = vec![vec![10e6, 10e6], vec![10e6, 2e6, 10e6], vec![4e6, 10e6, 10e6, 10e6, 1e6]];
        for speeds in cases {
            let p = run_decluster(&speeds, GB, DeclusterPolicy::PrimaryOnly);
            let g = run_decluster(&speeds, GB, DeclusterPolicy::Graduated);
            assert!(
                g.makespan.as_secs_f64() <= p.makespan.as_secs_f64() + 0.5,
                "{speeds:?}: graduated {} vs primary {}",
                g.makespan,
                p.makespan
            );
        }
    }

    #[test]
    fn two_producer_ring_is_a_full_mirror() {
        // With n = 2 every partition lives on both producers: the split
        // reaches the aggregate-bandwidth optimum exactly.
        let speeds = vec![10e6, 2e6];
        let g = run_decluster(&speeds, GB, DeclusterPolicy::Graduated);
        let ideal = 2.0 * GB / 12e6;
        assert!((g.makespan.as_secs_f64() / ideal - 1.0).abs() < 0.01, "{}", g.makespan);
    }
}
