//! Push vs pull work distribution — the River principle.
//!
//! Paper §4: River "provides mechanisms to enable consistent and high
//! performance in spite of erratic performance in underlying components",
//! chiefly through a *distributed queue*: consumers take work at the rate
//! they can actually sustain, rather than receiving a static share.
//!
//! [`distribute`] runs the same batch of work items under both strategies
//! against consumers with arbitrary time-varying rates, making the
//! static-parallelism penalty directly measurable.

use simcore::resource::RateProfile;
use simcore::time::{SimDuration, SimTime};

/// A work-distribution strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Static partition: item `i` is pre-assigned to consumer
    /// `i mod consumers` (fail-stop thinking).
    Push,
    /// Distributed queue: a free consumer pulls the next item
    /// (fail-stutter thinking).
    Pull,
}

/// The outcome of distributing a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct DistributeOutcome {
    /// When the last item completed.
    pub makespan: SimDuration,
    /// Items completed by each consumer.
    pub per_consumer: Vec<u64>,
}

/// Errors from work distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueError {
    /// A consumer with pre-assigned work never finishes (push strategy
    /// with a dead consumer), or no consumer remains (pull strategy).
    StarvedForever,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work can never complete: consumer(s) permanently stopped")
    }
}

impl std::error::Error for QueueError {}

/// Distributes `items` work items of `item_units` each over consumers whose
/// service capacity is given by `rates` (units/second over time), starting
/// at `start`.
pub fn distribute(
    strategy: Strategy,
    rates: &[RateProfile],
    items: u64,
    item_units: f64,
    start: SimTime,
) -> Result<DistributeOutcome, QueueError> {
    assert!(!rates.is_empty(), "need at least one consumer");
    assert!(items > 0 && item_units > 0.0, "degenerate batch");
    match strategy {
        Strategy::Push => push(rates, items, item_units, start),
        Strategy::Pull => pull(rates, items, item_units, start),
    }
}

/// Distributes a batch by a *static proportional* partition: consumer `i`
/// receives a share of items proportional to `weights[i]` (largest-
/// remainder apportionment), then works through it alone.
///
/// This is the plane-fed middle ground between [`Strategy::Push`] and
/// [`Strategy::Pull`]: a coordinator that cannot run a distributed queue
/// (items must be pre-placed) but *does* have a gossiped estimate of each
/// consumer's rate can at least weight the partition by those estimates —
/// the paper's scenario-2 design with the gauge replaced by the plane.
/// Uniform weights reduce exactly to `Push`; true rates as weights
/// approach `Pull`. Weights must be finite and non-negative; a consumer
/// weighted 0.0 (believed failed) gets nothing. All-zero weights — a
/// plane that believes in nobody — yield [`QueueError::StarvedForever`].
pub fn distribute_weighted(
    rates: &[RateProfile],
    weights: &[f64],
    items: u64,
    item_units: f64,
    start: SimTime,
) -> Result<DistributeOutcome, QueueError> {
    assert!(!rates.is_empty(), "need at least one consumer");
    assert_eq!(rates.len(), weights.len(), "one weight per consumer");
    assert!(items > 0 && item_units > 0.0, "degenerate batch");
    assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0), "weights must be non-negative");
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return Err(QueueError::StarvedForever);
    }
    // Largest-remainder apportionment so shares sum to `items`.
    let quotas: Vec<f64> = weights.iter().map(|w| items as f64 * w / sum).collect();
    let mut per_consumer: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    let mut left = items - per_consumer.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let fi = quotas[i] - quotas[i].floor();
        let fj = quotas[j] - quotas[j].floor();
        fj.total_cmp(&fi)
    });
    for &i in &order {
        if left == 0 {
            break;
        }
        per_consumer[i] += 1;
        left -= 1;
    }
    let mut makespan = SimDuration::ZERO;
    for (i, profile) in rates.iter().enumerate() {
        if per_consumer[i] == 0 {
            continue;
        }
        match profile.time_to_transfer(start, per_consumer[i] as f64 * item_units) {
            Some(t) => makespan = makespan.max(t),
            None => return Err(QueueError::StarvedForever),
        }
    }
    Ok(DistributeOutcome { makespan, per_consumer })
}

fn push(
    rates: &[RateProfile],
    items: u64,
    item_units: f64,
    start: SimTime,
) -> Result<DistributeOutcome, QueueError> {
    let n = rates.len() as u64;
    let mut per_consumer = vec![0u64; rates.len()];
    let mut makespan = SimDuration::ZERO;
    for (i, profile) in rates.iter().enumerate() {
        let assigned = items / n + u64::from((i as u64) < items % n);
        per_consumer[i] = assigned;
        if assigned == 0 {
            continue;
        }
        match profile.time_to_transfer(start, assigned as f64 * item_units) {
            Some(t) => makespan = makespan.max(t),
            None => return Err(QueueError::StarvedForever),
        }
    }
    Ok(DistributeOutcome { makespan, per_consumer })
}

fn pull(
    rates: &[RateProfile],
    items: u64,
    item_units: f64,
    start: SimTime,
) -> Result<DistributeOutcome, QueueError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut ready: BinaryHeap<Reverse<(SimTime, usize)>> =
        (0..rates.len()).map(|i| Reverse((start, i))).collect();
    let mut per_consumer = vec![0u64; rates.len()];
    let mut issued = 0u64;
    let mut finish = start;
    while issued < items {
        let Some(Reverse((avail, i))) = ready.pop() else {
            return Err(QueueError::StarvedForever);
        };
        match rates[i].time_to_transfer(avail, item_units) {
            Some(dt) => {
                issued += 1;
                per_consumer[i] += 1;
                let done = avail + dt;
                finish = finish.max(done);
                ready.push(Reverse((done, i)));
            }
            None => {
                // Consumer is dead from here on; it simply pulls no more.
            }
        }
    }
    Ok(DistributeOutcome { makespan: finish - start, per_consumer })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_rates(rates: &[f64]) -> Vec<RateProfile> {
        rates.iter().map(|&r| RateProfile::constant(r)).collect()
    }

    #[test]
    fn uniform_consumers_tie() {
        let rates = constant_rates(&[10.0, 10.0, 10.0, 10.0]);
        let push = distribute(Strategy::Push, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        let pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        assert_eq!(push.makespan, SimDuration::from_secs(10));
        // Pull pays no penalty when everyone is identical.
        assert_eq!(pull.makespan, SimDuration::from_secs(10));
        assert_eq!(pull.per_consumer, vec![100, 100, 100, 100]);
    }

    #[test]
    fn push_tracks_the_straggler_pull_does_not() {
        // One consumer at a third of the speed: push is gated by it, pull
        // routes around it.
        let rates = constant_rates(&[10.0, 10.0, 10.0, 10.0 / 3.0]);
        let push = distribute(Strategy::Push, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        let pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        // Push: 100 items at 10/3 u/s = 30 s.
        assert_eq!(push.makespan, SimDuration::from_secs(30));
        // Pull: aggregate 33.3 u/s → ~12 s.
        assert!(pull.makespan < SimDuration::from_secs(14), "{}", pull.makespan);
        // The slow consumer did roughly a third the work of the others.
        let slow = pull.per_consumer[3] as f64;
        let fast = pull.per_consumer[0] as f64;
        assert!(slow < 0.6 * fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn dead_consumer_kills_push_not_pull() {
        let mut rates = constant_rates(&[10.0, 10.0, 10.0]);
        rates[1] = RateProfile::from_breakpoints(vec![
            (SimTime::ZERO, 10.0),
            (SimTime::from_secs(1), 0.0),
        ]);
        let push = distribute(Strategy::Push, &rates, 300, 1.0, SimTime::ZERO);
        assert_eq!(push, Err(QueueError::StarvedForever));
        let pull = distribute(Strategy::Pull, &rates, 300, 1.0, SimTime::ZERO).expect("ok");
        assert_eq!(pull.per_consumer.iter().sum::<u64>(), 300);
        // The dead consumer only got what it finished in its first second.
        assert!(pull.per_consumer[1] <= 11, "{:?}", pull.per_consumer);
    }

    #[test]
    fn all_dead_is_an_error() {
        let rates = vec![RateProfile::from_breakpoints(vec![
            (SimTime::ZERO, 10.0),
            (SimTime::from_secs(1), 0.0),
        ])];
        let r = distribute(Strategy::Pull, &rates, 1_000, 1.0, SimTime::ZERO);
        assert_eq!(r, Err(QueueError::StarvedForever));
    }

    #[test]
    fn pull_adapts_to_time_varying_rates() {
        // A consumer that is slow early and fast late still ends up with
        // close to its fair share of work.
        let varying = RateProfile::from_breakpoints(vec![
            (SimTime::ZERO, 2.0),
            (SimTime::from_secs(10), 18.0),
        ]);
        let rates = vec![RateProfile::constant(10.0), varying];
        let pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        let total: u64 = pull.per_consumer.iter().sum();
        assert_eq!(total, 400);
        assert!(pull.per_consumer[1] > 100, "{:?}", pull.per_consumer);
    }

    #[test]
    fn weighted_with_uniform_weights_is_push() {
        let rates = constant_rates(&[10.0, 10.0, 10.0, 10.0 / 3.0]);
        let push = distribute(Strategy::Push, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        let weighted = distribute_weighted(&rates, &[1.0; 4], 400, 1.0, SimTime::ZERO).expect("ok");
        assert_eq!(weighted.makespan, push.makespan);
        assert_eq!(weighted.per_consumer, push.per_consumer);
    }

    #[test]
    fn weighted_with_true_rates_routes_around_the_straggler() {
        let rates = constant_rates(&[10.0, 10.0, 10.0, 10.0 / 3.0]);
        let push = distribute(Strategy::Push, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        let pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).expect("ok");
        let weighted =
            distribute_weighted(&rates, &[10.0, 10.0, 10.0, 10.0 / 3.0], 400, 1.0, SimTime::ZERO)
                .expect("ok");
        // Perfect estimates land on the pull-side makespan, far from push.
        assert!(weighted.makespan <= pull.makespan + SimDuration::from_secs(1));
        assert!(weighted.makespan.as_secs_f64() < 0.5 * push.makespan.as_secs_f64());
        assert_eq!(weighted.per_consumer.iter().sum::<u64>(), 400);
    }

    #[test]
    fn weighted_zero_weight_consumer_gets_nothing() {
        let mut rates = constant_rates(&[10.0, 10.0, 10.0]);
        // Consumer 1 is truly dead AND the plane knows it: weight 0 keeps
        // the batch clear of the corpse that would kill a plain push.
        rates[1] = RateProfile::from_breakpoints(vec![
            (SimTime::ZERO, 10.0),
            (SimTime::from_secs(1), 0.0),
        ]);
        let out =
            distribute_weighted(&rates, &[1.0, 0.0, 1.0], 300, 1.0, SimTime::ZERO).expect("ok");
        assert_eq!(out.per_consumer[1], 0);
        assert_eq!(out.per_consumer.iter().sum::<u64>(), 300);
    }

    #[test]
    fn weighted_all_zero_weights_starves() {
        let rates = constant_rates(&[10.0, 10.0]);
        let r = distribute_weighted(&rates, &[0.0, 0.0], 10, 1.0, SimTime::ZERO);
        assert_eq!(r, Err(QueueError::StarvedForever));
    }

    #[test]
    fn work_is_conserved() {
        let rates = constant_rates(&[3.0, 7.0, 11.0]);
        for strategy in [Strategy::Push, Strategy::Pull] {
            let out = distribute(strategy, &rates, 1_001, 2.5, SimTime::ZERO).expect("ok");
            assert_eq!(out.per_consumer.iter().sum::<u64>(), 1_001, "{strategy:?}");
        }
    }
}
