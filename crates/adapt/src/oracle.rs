//! Machine-checkable invariants for the queue and hedging mechanisms.
//!
//! Used by the `fs-campaign` harness: every scenario run is checked against
//! these oracles, so a regression in `distribute` or `run_hedged` fails the
//! campaign instead of just shifting a plot.

use crate::hedge::HedgeOutcome;
use crate::queue::DistributeOutcome;
use simcore::time::SimDuration;

/// A failed oracle check: which oracle, and what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable identifier of the oracle that fired.
    pub oracle: &'static str,
    /// Human-readable account of expected vs measured.
    pub detail: String,
}

/// Every item offered must be consumed by exactly one consumer.
pub fn check_queue_conservation(out: &DistributeOutcome, items: u64) -> Result<(), Violation> {
    let consumed: u64 = out.per_consumer.iter().sum();
    if consumed == items {
        Ok(())
    } else {
        Err(Violation {
            oracle: "queue/conservation",
            detail: format!("consumed {consumed} items, offered {items}"),
        })
    }
}

/// The fluid lower bound on any schedule: `items·units / Σ nominal rates`.
///
/// Injected faults only remove bandwidth, so no strategy may finish faster
/// than the all-nominal aggregate — this doubles as the metamorphic
/// "a stutter never speeds the queue up" check.
pub fn aggregate_floor(items: u64, item_units: f64, aggregate_rate: f64) -> SimDuration {
    SimDuration::from_secs_f64(items as f64 * item_units / aggregate_rate)
}

/// Makespan must respect the aggregate fluid bound (within `rel_tol`).
pub fn check_aggregate_floor(
    out: &DistributeOutcome,
    floor: SimDuration,
    rel_tol: f64,
) -> Result<(), Violation> {
    let lo = floor.as_secs_f64() * (1.0 - rel_tol);
    if out.makespan.as_secs_f64() >= lo {
        Ok(())
    } else {
        Err(Violation {
            oracle: "queue/aggregate-floor",
            detail: format!(
                "makespan {:.6}s beats the fluid bound {:.6}s",
                out.makespan.as_secs_f64(),
                floor.as_secs_f64()
            ),
        })
    }
}

/// River's claim: the distributed queue is never materially worse than the
/// static partition. `slack` absorbs the one-item granularity tail — the
/// last item pulled may land on the consumer just before its worst stall.
pub fn check_pull_competitive(
    pull: &DistributeOutcome,
    push: &DistributeOutcome,
    slack: SimDuration,
    rel_tol: f64,
) -> Result<(), Violation> {
    let limit = push.makespan.as_secs_f64() * (1.0 + rel_tol) + slack.as_secs_f64();
    if pull.makespan.as_secs_f64() <= limit {
        Ok(())
    } else {
        Err(Violation {
            oracle: "queue/pull-competitive",
            detail: format!(
                "pull {:.6}s exceeds push {:.6}s plus slack {:.6}s",
                pull.makespan.as_secs_f64(),
                push.makespan.as_secs_f64(),
                slack.as_secs_f64()
            ),
        })
    }
}

/// Structural invariants every hedged (or blocking) run must satisfy:
/// one outcome per task, winners in range, commit after issue, bounded
/// waste, and `worst_latency ≤ makespan`.
pub fn check_hedge_sanity(out: &HedgeOutcome, tasks: u64, workers: usize) -> Result<(), Violation> {
    if out.tasks.len() as u64 != tasks {
        return Err(Violation {
            oracle: "hedge/task-count",
            detail: format!("{} outcomes for {tasks} tasks", out.tasks.len()),
        });
    }
    for (i, t) in out.tasks.iter().enumerate() {
        if t.winner >= workers {
            return Err(Violation {
                oracle: "hedge/winner-range",
                detail: format!("task {i} won by worker {} of {workers}", t.winner),
            });
        }
        if t.committed < t.issued {
            return Err(Violation {
                oracle: "hedge/commit-after-issue",
                detail: format!("task {i} committed before it was issued"),
            });
        }
    }
    if out.work_wasted > out.work_spent + 1e-9 {
        return Err(Violation {
            oracle: "hedge/waste-bounded",
            detail: format!("wasted {:.6e} of {:.6e} spent", out.work_wasted, out.work_spent),
        });
    }
    if out.reconciled as usize > out.tasks.len() {
        return Err(Violation {
            oracle: "hedge/reconcile-bounded",
            detail: format!("{} reconciliations for {} tasks", out.reconciled, out.tasks.len()),
        });
    }
    if out.worst_latency() > out.makespan {
        return Err(Violation {
            oracle: "hedge/latency-le-makespan",
            detail: format!(
                "worst latency {:.6}s exceeds makespan {:.6}s",
                out.worst_latency().as_secs_f64(),
                out.makespan.as_secs_f64()
            ),
        });
    }
    Ok(())
}

/// Without duplicate issue there is nothing to waste or reconcile.
pub fn check_blocking_spends_everything(out: &HedgeOutcome) -> Result<(), Violation> {
    if out.work_wasted.abs() > 1e-9 || out.reconciled != 0 || out.tasks.iter().any(|t| t.hedged) {
        Err(Violation {
            oracle: "hedge/blocking-no-waste",
            detail: format!(
                "blocking run wasted {:.6e}, reconciled {}",
                out.work_wasted, out.reconciled
            ),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hedge::{run_hedged, HedgeConfig};
    use crate::queue::{distribute, Strategy};
    use simcore::resource::RateProfile;
    use simcore::time::SimTime;

    fn rates() -> Vec<RateProfile> {
        [10.0, 10.0, 10.0, 2.5].iter().map(|&r| RateProfile::constant(r)).collect()
    }

    #[test]
    fn queue_oracles_accept_real_runs() {
        let rates = rates();
        let push = distribute(Strategy::Push, &rates, 400, 1.0, SimTime::ZERO).unwrap();
        let pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).unwrap();
        check_queue_conservation(&push, 400).unwrap();
        check_queue_conservation(&pull, 400).unwrap();
        let floor = aggregate_floor(400, 1.0, 40.0);
        check_aggregate_floor(&pull, floor, 1e-9).unwrap();
        check_pull_competitive(&pull, &push, SimDuration::from_secs_f64(0.4), 0.01).unwrap();
    }

    #[test]
    fn impossible_makespan_is_caught() {
        let rates = rates();
        let mut pull = distribute(Strategy::Pull, &rates, 400, 1.0, SimTime::ZERO).unwrap();
        // Finishing in half the fluid bound means work was lost, not done.
        pull.makespan = SimDuration::from_secs_f64(400.0 / 40.0 / 2.0);
        let floor = aggregate_floor(400, 1.0, 40.0);
        let v = check_aggregate_floor(&pull, floor, 0.01).unwrap_err();
        assert_eq!(v.oracle, "queue/aggregate-floor");
    }

    #[test]
    fn hedge_oracles_accept_real_runs() {
        let rates = rates();
        let blocking =
            run_hedged(&rates, 32, 10.0, HedgeConfig { hedge_after: None }, SimTime::ZERO).unwrap();
        check_hedge_sanity(&blocking, 32, 4).unwrap();
        check_blocking_spends_everything(&blocking).unwrap();
        let hedged = run_hedged(
            &rates,
            32,
            10.0,
            HedgeConfig { hedge_after: Some(SimDuration::from_secs(2)) },
            SimTime::ZERO,
        )
        .unwrap();
        check_hedge_sanity(&hedged, 32, 4).unwrap();
    }
}
