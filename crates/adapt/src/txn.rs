//! Wait-free transaction execution under slow-down failures.
//!
//! Paper §4: "The earliest [model beyond fail-stop] that we are aware of
//! is Shasha and Turek's work on 'slow-down' failures. The authors design
//! an algorithm that runs transactions correctly in the presence of such
//! failures, by simply issuing new processes to do the work elsewhere, and
//! reconciling properly so as to avoid work replication."
//!
//! This module distils that scheme: transactions acquire locks on data
//! items and hold a processor for their execution time.
//!
//! * Under [`Executor::Blocking`] (two-phase locking on fixed processors),
//!   a transaction scheduled onto a slowed processor holds its locks for
//!   the whole stretched execution, and every conflicting transaction
//!   convoys behind it.
//! * Under [`Executor::WaitFree`], a transaction whose processor misses a
//!   progress deadline is re-issued on another processor; versioned
//!   commits ensure exactly one copy's effects apply (the loser aborts at
//!   commit).

use std::collections::BTreeMap;

use simcore::time::{SimDuration, SimTime};

/// A transaction: a set of data items and a nominal execution time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Txn {
    /// Items read/written (lock set).
    pub items: Vec<u32>,
    /// Execution time on a nominal-speed processor.
    pub work: SimDuration,
}

/// Execution strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Executor {
    /// 2PL on a fixed processor per transaction (round-robin assignment).
    Blocking,
    /// Re-issue a transaction elsewhere if it has not committed within
    /// `patience` of starting; first commit wins.
    WaitFree {
        /// Progress deadline before a duplicate is issued.
        patience: SimDuration,
    },
}

/// Per-transaction result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TxnOutcome {
    /// When the transaction's effects committed.
    pub committed: SimTime,
    /// Which processor's copy won.
    pub processor: usize,
    /// Whether a duplicate was issued.
    pub reissued: bool,
}

/// Batch result.
#[derive(Clone, Debug)]
pub struct TxnBatchOutcome {
    /// Per-transaction outcomes, in input order.
    pub outcomes: Vec<TxnOutcome>,
    /// When the batch finished.
    pub makespan: SimDuration,
    /// Copies aborted by reconciliation (duplicates that lost the race).
    pub aborted_duplicates: u64,
}

impl TxnBatchOutcome {
    /// Worst commit latency from batch start.
    pub fn worst_latency(&self) -> SimDuration {
        self.outcomes.iter().map(|o| o.committed - SimTime::ZERO).max().unwrap_or(SimDuration::ZERO)
    }
}

/// Executes `txns` over processors with the given speed multipliers
/// (1.0 = nominal; smaller = slowed; transactions serialise per item in
/// input order).
///
/// The model is deliberately sequential-per-lock: conflicting transactions
/// run in input order; independent ones in parallel across processors.
pub fn run_transactions(
    txns: &[Txn],
    processor_speeds: &[f64],
    executor: Executor,
) -> TxnBatchOutcome {
    assert!(!txns.is_empty(), "empty batch");
    assert!(processor_speeds.len() >= 2, "need at least two processors");
    for &s in processor_speeds {
        assert!(s > 0.0, "processor speeds must be positive (use tiny for near-stopped)");
    }

    // When each lock (item) becomes free, and when each processor is free.
    let mut lock_free: BTreeMap<u32, SimTime> = BTreeMap::new();
    let mut cpu_free = vec![SimTime::ZERO; processor_speeds.len()];
    let mut outcomes = Vec::with_capacity(txns.len());
    let mut aborted = 0u64;
    let mut makespan = SimDuration::ZERO;

    for (idx, t) in txns.iter().enumerate() {
        // Locks acquired when every item is free.
        let locks_at = t
            .items
            .iter()
            .map(|i| lock_free.get(i).copied().unwrap_or(SimTime::ZERO))
            .max()
            .unwrap_or(SimTime::ZERO);

        let primary = idx % processor_speeds.len();
        let p_start = cpu_free[primary].max(locks_at);
        let p_exec = t.work.mul_f64(1.0 / processor_speeds[primary]);
        let p_done = p_start + p_exec;

        let (committed, processor, reissued) = match executor {
            Executor::Blocking => {
                cpu_free[primary] = p_done;
                (p_done, primary, false)
            }
            Executor::WaitFree { patience } => {
                if p_done <= p_start + patience {
                    cpu_free[primary] = p_done;
                    (p_done, primary, false)
                } else {
                    // Re-issue on the least-loaded other processor at the
                    // patience deadline.
                    let deadline = p_start + patience;
                    let secondary = (0..processor_speeds.len())
                        .filter(|&p| p != primary)
                        .min_by_key(|&p| cpu_free[p].max(deadline))
                        .expect("two processors");
                    let s_start = cpu_free[secondary].max(deadline).max(locks_at);
                    let s_done = s_start + t.work.mul_f64(1.0 / processor_speeds[secondary]);
                    aborted += 1;
                    if s_done < p_done {
                        // The duplicate wins; the primary's copy aborts at
                        // commit time and releases its processor then.
                        cpu_free[secondary] = s_done;
                        cpu_free[primary] = cpu_free[primary].max(s_done.min(p_done));
                        (s_done, secondary, true)
                    } else {
                        cpu_free[primary] = p_done;
                        cpu_free[secondary] = cpu_free[secondary].max(p_done.min(s_done));
                        (p_done, primary, true)
                    }
                }
            }
        };

        for i in &t.items {
            lock_free.insert(*i, committed);
        }
        makespan = makespan.max(committed - SimTime::ZERO);
        outcomes.push(TxnOutcome { committed, processor, reissued });
    }

    TxnBatchOutcome { outcomes, makespan, aborted_duplicates: aborted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(items: &[u32], ms: u64) -> Txn {
        Txn { items: items.to_vec(), work: SimDuration::from_millis(ms) }
    }

    const WAIT_FREE: Executor = Executor::WaitFree { patience: SimDuration::from_millis(50) };

    #[test]
    fn independent_txns_run_in_parallel() {
        let txns = vec![txn(&[1], 10), txn(&[2], 10), txn(&[3], 10), txn(&[4], 10)];
        let out = run_transactions(&txns, &[1.0; 4], Executor::Blocking);
        assert_eq!(out.makespan, SimDuration::from_millis(10));
    }

    #[test]
    fn conflicting_txns_serialise() {
        let txns = vec![txn(&[1], 10), txn(&[1], 10), txn(&[1], 10)];
        let out = run_transactions(&txns, &[1.0; 4], Executor::Blocking);
        assert_eq!(out.makespan, SimDuration::from_millis(30));
    }

    #[test]
    fn slow_processor_convoys_blocking_execution() {
        // Processor 1 at 1% speed; the second transaction lands on it and
        // holds the lock on item 1 for 1 s; the third convoys behind it.
        let mut speeds = vec![1.0; 4];
        speeds[1] = 0.01;
        let txns = vec![txn(&[1], 10), txn(&[1], 10), txn(&[1], 10)];
        let blocking = run_transactions(&txns, &speeds, Executor::Blocking);
        assert!(blocking.makespan > SimDuration::from_millis(1_000), "{}", blocking.makespan);

        let wait_free = run_transactions(&txns, &speeds, WAIT_FREE);
        assert!(wait_free.makespan < SimDuration::from_millis(200), "{}", wait_free.makespan);
        assert_eq!(wait_free.aborted_duplicates, 1);
        assert!(wait_free.outcomes[1].reissued);
    }

    #[test]
    fn wait_free_pays_nothing_when_healthy() {
        let txns = vec![txn(&[1], 10), txn(&[2], 10), txn(&[3], 10)];
        let blocking = run_transactions(&txns, &[1.0; 4], Executor::Blocking);
        let wait_free = run_transactions(&txns, &[1.0; 4], WAIT_FREE);
        assert_eq!(blocking.makespan, wait_free.makespan);
        assert_eq!(wait_free.aborted_duplicates, 0);
    }

    #[test]
    fn reconciliation_keeps_serial_order() {
        // Commits on the same item must be strictly ordered even when
        // copies are re-issued.
        let mut speeds = vec![1.0; 4];
        speeds[1] = 0.02;
        let txns: Vec<Txn> = (0..8).map(|_| txn(&[7], 10)).collect();
        let out = run_transactions(&txns, &speeds, WAIT_FREE);
        for w in out.outcomes.windows(2) {
            assert!(w[0].committed <= w[1].committed, "{w:?}");
        }
    }

    #[test]
    fn duplicate_losing_the_race_is_aborted_not_committed() {
        // Patience so tight everything re-issues, but the primary is
        // actually faster: the duplicate must lose.
        let txns = vec![txn(&[1], 100)];
        let speeds = vec![1.0, 0.5];
        let out = run_transactions(
            &txns,
            &speeds,
            Executor::WaitFree { patience: SimDuration::from_millis(10) },
        );
        assert_eq!(out.aborted_duplicates, 1);
        assert_eq!(out.outcomes[0].processor, 0, "primary's copy wins");
        assert_eq!(out.outcomes[0].committed, SimTime::from_millis(100));
    }

    #[test]
    fn near_stopped_processor_is_survivable() {
        let mut speeds = vec![1.0; 8];
        speeds[3] = 1e-6; // effectively stopped, but never "detectably failed"
        let txns: Vec<Txn> = (0..32).map(|i| txn(&[i as u32 % 4], 10)).collect();
        let out = run_transactions(&txns, &speeds, WAIT_FREE);
        assert!(out.makespan < SimDuration::from_secs(2), "{}", out.makespan);
        assert_eq!(out.outcomes.len(), 32);
    }
}
