//! Duplicate issue under slow-down failures — Shasha & Turek's move.
//!
//! Paper §4: Shasha and Turek "design an algorithm that runs transactions
//! correctly in the presence of such [slow-down] failures, by simply
//! issuing new processes to do the work elsewhere, and reconciling
//! properly so as to avoid work replication."
//!
//! [`run_hedged`] executes a batch of tasks on a pool of workers. A task
//! that has not completed within `hedge_after` of being issued is
//! *re-issued* to a different worker; the first copy to finish commits,
//! and reconciliation discards the loser so side effects happen exactly
//! once. The cost of the strategy is the wasted duplicate work; the
//! benefit is a bounded tail.

use simcore::resource::RateProfile;
use simcore::time::{SimDuration, SimTime};

/// Configuration of the hedging policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Re-issue a task if it has not completed within this delay.
    /// `None` disables hedging (the blocking baseline).
    pub hedge_after: Option<SimDuration>,
}

/// Per-task outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskOutcome {
    /// When the task was issued.
    pub issued: SimTime,
    /// When its first copy committed.
    pub committed: SimTime,
    /// Which worker's copy won.
    pub winner: usize,
    /// Whether a duplicate was issued.
    pub hedged: bool,
}

/// Batch-level outcome.
#[derive(Clone, Debug)]
pub struct HedgeOutcome {
    /// Per-task results, in issue order.
    pub tasks: Vec<TaskOutcome>,
    /// When the whole batch was done.
    pub makespan: SimDuration,
    /// Total work-seconds spent, including discarded duplicates.
    pub work_spent: f64,
    /// Work-seconds discarded by reconciliation (the replication cost).
    pub work_wasted: f64,
    /// Number of duplicate commits prevented by reconciliation (every one
    /// of these would have been a double side effect).
    pub reconciled: u64,
}

impl HedgeOutcome {
    /// The slowest task's commit latency.
    pub fn worst_latency(&self) -> SimDuration {
        self.tasks.iter().map(|t| t.committed - t.issued).max().unwrap_or(SimDuration::ZERO)
    }
}

/// Runs `tasks` tasks of `task_units` each over workers with capacities
/// `rates`. Tasks are issued round-robin at time `start`, one per worker
/// slot, FIFO per worker. With hedging enabled, a late task is duplicated
/// onto the *least-loaded other* worker.
///
/// # Examples
///
/// ```
/// use adapt::prelude::*;
/// use simcore::resource::RateProfile;
/// use simcore::time::{SimDuration, SimTime};
///
/// let rates = vec![RateProfile::constant(1.0), RateProfile::constant(0.01)];
/// let out = run_hedged(
///     &rates,
///     2,
///     1.0,
///     HedgeConfig { hedge_after: Some(SimDuration::from_secs(2)) },
///     SimTime::ZERO,
/// )
/// .expect("workers alive");
/// assert!(out.worst_latency() < SimDuration::from_secs(5));
/// ```
///
/// Workers that never finish (rate permanently zero) simply never commit
/// their copies; with hedging the duplicate rescues the task, without it
/// the run returns `None` (the blocking baseline blocks forever).
pub fn run_hedged(
    rates: &[RateProfile],
    tasks: u64,
    task_units: f64,
    config: HedgeConfig,
    start: SimTime,
) -> Option<HedgeOutcome> {
    assert!(rates.len() >= 2, "hedging needs at least two workers");
    assert!(tasks > 0 && task_units > 0.0, "degenerate batch");

    // Each worker serves its queue FIFO; track the next-free time.
    let mut next_free = vec![start; rates.len()];
    let mut outcomes = Vec::with_capacity(tasks as usize);
    let mut work_spent = 0.0;
    let mut work_wasted = 0.0;
    let mut reconciled = 0;
    let mut makespan = SimDuration::ZERO;

    for t in 0..tasks {
        let issued = start;
        let primary = (t as usize) % rates.len();
        let p_start = next_free[primary];
        let p_done = rates[primary].time_to_transfer(p_start, task_units).map(|d| p_start + d);

        // Decide whether to hedge: the task is late if it has not
        // committed within hedge_after of issue.
        let hedge_at = config.hedge_after.map(|d| issued + d);
        let needs_hedge = match (hedge_at, p_done) {
            (Some(h), Some(done)) => done > h,
            (Some(_), None) => true,
            (None, _) => false,
        };

        if !needs_hedge {
            let done = p_done?; // blocking baseline: a dead worker blocks forever
            next_free[primary] = done;
            let spent = (done - p_start).as_secs_f64();
            work_spent += spent;
            makespan = makespan.max(done - start);
            outcomes.push(TaskOutcome { issued, committed: done, winner: primary, hedged: false });
            continue;
        }

        // Duplicate onto the least-loaded other worker at the hedge time.
        let hedge_time = hedge_at.expect("hedging enabled").max(issued);
        let secondary = (0..rates.len())
            .filter(|&w| w != primary)
            .min_by_key(|&w| next_free[w])
            .expect("at least two workers");
        let s_start = next_free[secondary].max(hedge_time);
        let s_done = rates[secondary].time_to_transfer(s_start, task_units).map(|d| s_start + d);

        let (winner, committed) = match (p_done, s_done) {
            (Some(p), Some(s)) => {
                if p <= s {
                    (primary, p)
                } else {
                    (secondary, s)
                }
            }
            (Some(p), None) => (primary, p),
            (None, Some(s)) => (secondary, s),
            (None, None) => return None, // both copies stuck forever
        };

        // Both copies occupy their workers until they finish or are
        // cancelled at commit time (reconciliation cancels the loser).
        let p_busy_until = p_done.unwrap_or(SimTime::MAX).min(committed);
        let s_busy_until = s_done.unwrap_or(SimTime::MAX).min(committed);
        let p_work = (p_busy_until.max(p_start) - p_start).as_secs_f64();
        let s_work = (s_busy_until.max(s_start) - s_start).as_secs_f64();
        next_free[primary] = p_busy_until.max(next_free[primary]);
        next_free[secondary] = s_busy_until.max(next_free[secondary]);
        work_spent += p_work + s_work;
        if winner == primary {
            work_wasted += s_work;
        } else {
            work_wasted += p_work;
        }
        // Would both copies have completed (and thus double-applied their
        // side effects) without reconciliation? Count the save.
        if p_done.is_some() && s_done.is_some() {
            reconciled += 1;
        }
        makespan = makespan.max(committed - start);
        outcomes.push(TaskOutcome { issued, committed, winner, hedged: true });
    }

    Some(HedgeOutcome { tasks: outcomes, makespan, work_spent, work_wasted, reconciled })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(rs: &[f64]) -> Vec<RateProfile> {
        rs.iter().map(|&r| RateProfile::constant(r)).collect()
    }

    fn dead_after(rate: f64, secs: u64) -> RateProfile {
        if secs == 0 {
            RateProfile::constant(0.0)
        } else {
            RateProfile::from_breakpoints(vec![
                (SimTime::ZERO, rate),
                (SimTime::from_secs(secs), 0.0),
            ])
        }
    }

    const NO_HEDGE: HedgeConfig = HedgeConfig { hedge_after: None };

    fn hedge(secs: u64) -> HedgeConfig {
        HedgeConfig { hedge_after: Some(SimDuration::from_secs(secs)) }
    }

    #[test]
    fn healthy_pool_never_hedges() {
        let r = rates(&[1.0, 1.0, 1.0, 1.0]);
        let out = run_hedged(&r, 4, 1.0, hedge(10), SimTime::ZERO).expect("ok");
        assert!(out.tasks.iter().all(|t| !t.hedged));
        assert_eq!(out.work_wasted, 0.0);
        assert_eq!(out.makespan, SimDuration::from_secs(1));
    }

    #[test]
    fn slow_worker_tasks_get_rescued() {
        // Worker 1 runs at 1/100 speed: its task takes 100 s unhedged.
        let r = rates(&[1.0, 0.01]);
        let blocking = run_hedged(&r, 2, 1.0, NO_HEDGE, SimTime::ZERO).expect("ok");
        assert_eq!(blocking.worst_latency(), SimDuration::from_secs(100));
        let hedged = run_hedged(&r, 2, 1.0, hedge(2), SimTime::ZERO).expect("ok");
        // The duplicate on worker 0 commits at ~3 s (hedge at 2 + 1 s work).
        assert!(hedged.worst_latency() <= SimDuration::from_secs(4), "{}", hedged.worst_latency());
        assert!(hedged.work_wasted > 0.0, "the loser's partial work is discarded");
    }

    #[test]
    fn dead_worker_blocks_baseline_forever() {
        let r = vec![RateProfile::constant(1.0), dead_after(1.0, 0)];
        assert!(run_hedged(&r, 2, 1.0, NO_HEDGE, SimTime::ZERO).is_none());
        let hedged = run_hedged(&r, 2, 1.0, hedge(1), SimTime::ZERO).expect("rescued");
        assert_eq!(hedged.tasks.len(), 2);
        assert!(hedged.tasks.iter().all(|t| t.winner == 0));
    }

    #[test]
    fn reconciliation_counts_double_finishers() {
        // Both workers healthy but one marginally slower: a tight hedge
        // triggers duplicates that both complete.
        let r = rates(&[1.0, 0.9]);
        let out = run_hedged(&r, 2, 10.0, hedge(1), SimTime::ZERO).expect("ok");
        assert!(out.tasks.iter().any(|t| t.hedged));
        assert!(out.reconciled > 0, "duplicate commits must be reconciled away");
    }

    #[test]
    fn hedging_bounds_the_tail_at_bounded_cost() {
        // 16 workers, one catastrophically slow.
        let mut rs = vec![1.0; 16];
        rs[7] = 0.02;
        let r = rates(&rs);
        let blocking = run_hedged(&r, 64, 1.0, NO_HEDGE, SimTime::ZERO).expect("ok");
        let hedged = run_hedged(&r, 64, 1.0, hedge(2), SimTime::ZERO).expect("ok");
        assert!(blocking.worst_latency() > SimDuration::from_secs(100));
        assert!(hedged.worst_latency() < SimDuration::from_secs(10));
        // Waste is a small fraction of total work.
        assert!(
            hedged.work_wasted < 0.3 * hedged.work_spent,
            "wasted {} of {}",
            hedged.work_wasted,
            hedged.work_spent
        );
    }

    #[test]
    fn all_workers_dead_returns_none() {
        let r = vec![dead_after(1.0, 0), dead_after(1.0, 0)];
        assert!(run_hedged(&r, 1, 1.0, hedge(1), SimTime::ZERO).is_none());
    }
}
