//! Additive-increase / multiplicative-decrease rate control.
//!
//! Paper §4: "The networking literature is replete with examples of
//! adaptation and design for variable performance, with the prime example
//! of TCP. We believe that similar techniques will need to be employed in
//! the development of adaptive, fail-stutter fault-tolerant algorithms."
//!
//! [`Aimd`] is the canonical controller: probe upward additively, back off
//! multiplicatively on a congestion (performance-fault) signal. Competing
//! AIMD controllers sharing a bottleneck converge toward fair shares,
//! which is what makes the scheme suitable for sharing a stuttering
//! resource.

/// An AIMD rate controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aimd {
    rate: f64,
    increase: f64,
    decrease: f64,
    floor: f64,
    ceiling: f64,
}

impl Aimd {
    /// Creates a controller starting at `initial`, adding `increase` per
    /// good round and multiplying by `decrease` on a bad one, clamped to
    /// `[floor, ceiling]`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters, `decrease` outside `(0, 1)`, or
    /// an empty clamp interval.
    pub fn new(initial: f64, increase: f64, decrease: f64, floor: f64, ceiling: f64) -> Self {
        assert!(initial > 0.0 && increase > 0.0, "rates must be positive");
        assert!(decrease > 0.0 && decrease < 1.0, "decrease must be in (0,1)");
        assert!(floor > 0.0 && floor <= ceiling, "invalid clamp [{floor}, {ceiling}]");
        Aimd { rate: initial.clamp(floor, ceiling), increase, decrease, floor, ceiling }
    }

    /// The current send rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Signals a successful round: additive increase.
    pub fn on_success(&mut self) -> f64 {
        self.rate = (self.rate + self.increase).min(self.ceiling);
        self.rate
    }

    /// Signals congestion or a performance fault: multiplicative decrease.
    pub fn on_congestion(&mut self) -> f64 {
        self.rate = (self.rate * self.decrease).max(self.floor);
        self.rate
    }
}

/// Simulates `flows` AIMD controllers sharing a bottleneck of `capacity`
/// for `rounds` rounds; every flow backs off in rounds where aggregate
/// demand exceeds capacity. Returns the final per-flow rates.
pub fn share_bottleneck(flows: usize, capacity: f64, rounds: u32, initial: &[f64]) -> Vec<f64> {
    assert_eq!(initial.len(), flows, "one initial rate per flow");
    let mut ctrls: Vec<Aimd> = initial
        .iter()
        .map(|&r| Aimd::new(r, capacity / 100.0, 0.5, capacity / 1e6, capacity))
        .collect();
    for _ in 0..rounds {
        let demand: f64 = ctrls.iter().map(|c| c.rate()).sum();
        if demand > capacity {
            for c in &mut ctrls {
                c.on_congestion();
            }
        } else {
            for c in &mut ctrls {
                c.on_success();
            }
        }
    }
    ctrls.iter().map(|c| c.rate()).collect()
}

/// Jain's fairness index: 1.0 = perfectly fair.
pub fn fairness_index(rates: &[f64]) -> f64 {
    let n = rates.len() as f64;
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increase_and_decrease() {
        let mut a = Aimd::new(10.0, 1.0, 0.5, 0.1, 100.0);
        assert_eq!(a.on_success(), 11.0);
        assert_eq!(a.on_congestion(), 5.5);
    }

    #[test]
    fn clamped_to_bounds() {
        let mut a = Aimd::new(10.0, 50.0, 0.01, 5.0, 20.0);
        assert_eq!(a.on_success(), 20.0);
        assert_eq!(a.on_congestion(), 5.0);
    }

    #[test]
    fn unequal_starts_converge_to_fairness() {
        // The classic AIMD convergence result.
        let rates = share_bottleneck(2, 100.0, 2_000, &[90.0, 1.0]);
        let f = fairness_index(&rates);
        assert!(f > 0.95, "fairness {f}, rates {rates:?}");
    }

    #[test]
    fn aggregate_tracks_capacity() {
        let rates = share_bottleneck(4, 100.0, 2_000, &[1.0, 2.0, 3.0, 4.0]);
        let sum: f64 = rates.iter().sum();
        assert!(sum > 50.0 && sum <= 110.0, "aggregate {sum}");
    }

    #[test]
    fn fairness_index_extremes() {
        assert!((fairness_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = fairness_index(&[10.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
    }
}
