//! Property tests for the mitigation layer and the retry budget.
//!
//! Two contracts matter for the metastable scenarios and are promised in
//! the module docs: the circuit breaker is *monotone* in the observed
//! failure rate (a strictly worse observation window can never move the
//! breaker toward Closed, so flapping cannot be caused by the state
//! function itself), and its admission limit never starves probes. The
//! retry budget's token accounting must be non-negative and invariant
//! under any permutation of same-tick client arrivals, so engine results
//! cannot depend on client iteration order.

use proptest::prelude::*;

use metastable::client::{BudgetConfig, RetryBudget};
use metastable::policy::{BreakerConfig, CircuitBreaker};

fn breaker_cfg() -> BreakerConfig {
    BreakerConfig {
        window_ticks: 8,
        open_threshold: 0.5,
        half_open_threshold: 0.2,
        min_failures: 20,
        min_failures_half: 10,
        probe_per_tick: 2,
        half_open_per_tick: 16,
    }
}

proptest! {
    /// Closed → HalfOpen → Open is monotone in the observed failure
    /// rate: feeding one breaker a per-tick trace that is everywhere at
    /// least as bad (same volume, at least as many failures) keeps its
    /// state at or above the better breaker's at every tick.
    #[test]
    fn breaker_state_monotone_in_failure_rate(
        ticks in proptest::collection::vec((0u64..200, 0u64..100, 0u64..100), 1..60)
    ) {
        let mut better = CircuitBreaker::new(breaker_cfg());
        let mut worse = CircuitBreaker::new(breaker_cfg());
        for &(total, cut_a, cut_b) in &ticks {
            // Both breakers see `total` outcomes this tick; the worse
            // one sees at least as many failures.
            let fail_lo = (total * cut_a.min(cut_b)) / 100;
            let fail_hi = (total * cut_a.max(cut_b)) / 100;
            better.begin_tick();
            better.record(total - fail_lo, fail_lo);
            worse.begin_tick();
            worse.record(total - fail_hi, fail_hi);
            prop_assert!(
                worse.state() >= better.state(),
                "worse window {:?} below better window {:?}",
                worse.state(),
                better.state()
            );
        }
    }

    /// Whatever the observation history, the breaker either admits
    /// everything (Closed ⇒ `None`) or admits at least the configured
    /// probe floor — a recovering server is always re-discovered.
    #[test]
    fn breaker_admission_never_below_probe_floor(
        ticks in proptest::collection::vec((0u64..1_000, 0u64..1_000), 1..80)
    ) {
        let mut b = CircuitBreaker::new(breaker_cfg());
        for &(succ, fail) in &ticks {
            b.begin_tick();
            b.record(succ, fail);
            match b.admit_limit() {
                None => {}
                Some(limit) => prop_assert!(
                    limit >= b.probe_floor(),
                    "admission {limit} fell below the probe floor {}",
                    b.probe_floor()
                ),
            }
        }
    }

    /// Token accounting never goes negative and never grants more than
    /// the allowance, under any interleaving of deposits and grants.
    #[test]
    fn budget_balance_never_negative(
        floor in 0.0f64..50.0,
        ratio in 0.0f64..1.0,
        ops in proptest::collection::vec((any::<bool>(), 0u64..200), 1..100)
    ) {
        let mut budget = RetryBudget::new(BudgetConfig { floor, ratio });
        let mut deposited = 0u64;
        let mut granted = 0u64;
        for &(is_deposit, n) in &ops {
            if is_deposit {
                budget.deposit(n);
                deposited += n;
            } else {
                granted += budget.grant(n);
            }
            prop_assert!(budget.balance() >= 0.0);
            prop_assert!(
                (granted as f64) <= floor + ratio * deposited as f64,
                "granted {granted} exceeds allowance {}",
                floor + ratio * deposited as f64
            );
        }
    }

    /// The total granted to a same-tick batch of requests is invariant
    /// under any permutation of the arrivals: it only depends on the
    /// requested sum and the allowance, never on client order.
    #[test]
    fn budget_grant_is_permutation_invariant(
        floor in 0.0f64..100.0,
        ratio in 0.0f64..0.5,
        successes in 0u64..5_000,
        requests in proptest::collection::vec(0u64..40, 1..30),
        shuffle_seed in any::<u64>()
    ) {
        // Deterministic Fisher-Yates driven by a splitmix-style stream,
        // so the permutation is itself a generated input.
        let mut permuted = requests.clone();
        let mut s = shuffle_seed;
        for i in (1..permuted.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 32) as usize % (i + 1);
            permuted.swap(i, j);
        }

        let mut a = RetryBudget::new(BudgetConfig { floor, ratio });
        let mut b = RetryBudget::new(BudgetConfig { floor, ratio });
        a.deposit(successes);
        b.deposit(successes);
        let granted_a: u64 = requests.iter().map(|&r| a.grant(r)).sum();
        let granted_b: u64 = permuted.iter().map(|&r| b.grant(r)).sum();
        prop_assert_eq!(granted_a, granted_b);
        let total: u64 = requests.iter().sum();
        prop_assert_eq!(granted_a, total.min(a.available() + granted_a));
    }
}
