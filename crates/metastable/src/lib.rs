//! Metastable-failure workload engine: a closed-loop client population
//! with timeouts and retries over a bounded server queue, where a
//! transient stutter (the trigger) can ignite a retry/queue feedback
//! loop that outlives the trigger itself.
//!
//! The paper argues that components which stay correct but go slow break
//! fail-stop designs; "Characterizing Metastable Faults and Failures"
//! (PAPERS.md) is the at-scale version of that claim. This crate models
//! it end to end:
//!
//! * [`engine`] — an aggregate cohort-based tick engine driven by a
//!   single `simcore` periodic event, so runs are deterministic and
//!   identical under every event-queue kind, and cost is independent of
//!   the client population (10⁵–10⁶ clients are free).
//! * [`client`] — per-client retry policy (timeout, attempts, backoff)
//!   and the aggregate retry-token budget.
//! * [`server`] — the bounded FIFO queue of request cohorts and the
//!   trigger-windowing helper that turns any `stutter` injector profile
//!   into a transient mid-run trigger.
//! * [`policy`] — the mitigation layer: depth/age load shedding, a
//!   windowed circuit breaker with half-open probing, and
//!   predictor-armed early shedding via
//!   `stutter::predict::FailurePredictor`.
//! * [`oracle`] — the sustaining-effect oracle family: conservation and
//!   capacity audits, fluid-model vulnerability prediction, regime
//!   classification (stable / vulnerable / metastable), and
//!   "mitigation restores the stable regime within a deadline" checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod oracle;
pub mod policy;
pub mod server;

/// Convenience re-exports of the crate's main types.
pub mod prelude {
    pub use crate::client::{Backoff, BudgetConfig, RetryBudget, RetryPolicy};
    pub use crate::engine::{Config, RunTrace, Totals};
    pub use crate::oracle::{Assessment, OracleParams, Regime, Violation};
    pub use crate::policy::{BreakerConfig, BreakerState, CircuitBreaker, Mitigation, ShedConfig};
    pub use crate::server::trigger_window;
}
