//! Client-side retry machinery: backoff schedules, the per-client retry
//! policy, and the aggregate retry-token budget.
//!
//! The budget is the SRE-folklore "retry budget": clients may spend
//! retry tokens only in proportion to recently observed successes (plus
//! a small floor), which caps the demand amplification a retry storm can
//! produce. It is deliberately aggregate — token accounting is done per
//! batch, and the grant arithmetic makes totals invariant under any
//! permutation of same-tick client arrivals (property-tested in
//! `tests/props.rs`).

use simcore::time::SimDuration;

/// Delay schedule between a failed attempt and the retry that follows it.
#[derive(Clone, Copy, Debug)]
pub enum Backoff {
    /// The same delay after every failed attempt.
    Fixed(SimDuration),
    /// `base × 2^(attempt-1)`, saturating at `cap`.
    Exponential {
        /// Delay after the first failed attempt.
        base: SimDuration,
        /// Upper bound on the computed delay.
        cap: SimDuration,
    },
}

impl Backoff {
    /// Delay before the retry that follows failed attempt `attempt`
    /// (1-based: `attempt = 1` is the first try).
    pub fn delay(self, attempt: u32) -> SimDuration {
        match self {
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, cap } => {
                let shift = attempt.saturating_sub(1).min(32);
                let nanos = base.as_nanos().saturating_mul(1u64 << shift);
                SimDuration::from_nanos(nanos).min(cap)
            }
        }
    }
}

/// Per-client request policy: how long to wait and how often to retry.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How long a client waits for a response before declaring failure.
    pub timeout: SimDuration,
    /// Total tries per logical operation (1 = no retries).
    pub max_attempts: u32,
    /// Delay schedule between failed attempts.
    pub backoff: Backoff,
}

impl RetryPolicy {
    /// Sum of all backoff delays a client can spend on one operation
    /// (between attempts 1..`max_attempts`), in seconds.
    pub fn total_backoff_secs(&self) -> f64 {
        (1..self.max_attempts).map(|a| self.backoff.delay(a).as_secs_f64()).sum()
    }
}

/// Retry-budget tuning: the allowance is `floor + ratio × successes`.
#[derive(Clone, Copy, Debug)]
pub struct BudgetConfig {
    /// Tokens available before any success has been observed.
    pub floor: f64,
    /// Extra tokens granted per observed success (e.g. 0.1 = retries may
    /// add at most 10% to successful traffic).
    pub ratio: f64,
}

/// Aggregate retry-token accounting.
///
/// `earned` only grows with [`deposit`](RetryBudget::deposit)ed
/// successes and `spent` only grows by grants clamped to the available
/// balance, so the balance is non-negative by construction — there is no
/// code path that can drive it below zero.
#[derive(Clone, Copy, Debug)]
pub struct RetryBudget {
    cfg: BudgetConfig,
    earned: f64,
    spent: u64,
}

impl RetryBudget {
    /// An empty budget (only the floor is available).
    pub fn new(cfg: BudgetConfig) -> Self {
        RetryBudget { cfg, earned: 0.0, spent: 0 }
    }

    /// Credits `successes` observed completions.
    pub fn deposit(&mut self, successes: u64) {
        self.earned += successes as f64;
    }

    /// Whole tokens currently available to spend.
    pub fn available(&self) -> u64 {
        let balance = self.cfg.floor + self.cfg.ratio * self.earned - self.spent as f64;
        if balance <= 0.0 {
            0
        } else {
            balance as u64
        }
    }

    /// Grants up to `requested` tokens, returning how many were granted.
    ///
    /// Sequential grants against a fixed allowance satisfy
    /// `grant(a) + grant(b) = min(a + b, available)` no matter how a
    /// batch is split or ordered, which is what makes same-tick client
    /// arrival order irrelevant.
    pub fn grant(&mut self, requested: u64) -> u64 {
        let granted = requested.min(self.available());
        self.spent += granted;
        granted
    }

    /// Current fractional balance (always ≥ 0, may be < 1).
    pub fn balance(&self) -> f64 {
        (self.cfg.floor + self.cfg.ratio * self.earned - self.spent as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let b = Backoff::Exponential {
            base: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(2),
        };
        assert_eq!(b.delay(1), SimDuration::from_millis(500));
        assert_eq!(b.delay(2), SimDuration::from_secs(1));
        assert_eq!(b.delay(3), SimDuration::from_secs(2));
        assert_eq!(b.delay(9), SimDuration::from_secs(2));
    }

    #[test]
    fn budget_floor_then_ratio() {
        let mut b = RetryBudget::new(BudgetConfig { floor: 3.0, ratio: 0.1 });
        assert_eq!(b.available(), 3);
        assert_eq!(b.grant(5), 3);
        assert_eq!(b.grant(1), 0);
        b.deposit(20); // +2 tokens
        assert_eq!(b.grant(5), 2);
        assert!(b.balance() >= 0.0);
    }

    #[test]
    fn budget_split_invariant() {
        let mut whole = RetryBudget::new(BudgetConfig { floor: 10.0, ratio: 0.0 });
        let mut split = RetryBudget::new(BudgetConfig { floor: 10.0, ratio: 0.0 });
        let all = whole.grant(7 + 6);
        let parts = split.grant(7) + split.grant(6);
        assert_eq!(all, parts);
    }
}
