//! The mitigation layer: depth/age load shedding, a windowed circuit
//! breaker with half-open probing, and predictor-armed early shedding.
//!
//! The circuit breaker is deliberately *stateless-from-window*: its
//! state is a pure function of the success/failure counts in the
//! sliding observation window, with nested thresholds
//! (`open ≥ half_open`). That makes closed→half-open→open monotone in
//! the observed failure rate by construction — a strictly worse window
//! can never move the breaker toward Closed — and the admission floor
//! guarantees probes always flow, so a recovering server is always
//! re-discovered. Both properties are property-tested in
//! `tests/props.rs`.

use std::collections::VecDeque;

use stutter::predict::PredictorConfig;

/// Load-shedding configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShedConfig {
    /// Reject new admissions once queue depth reaches this bound. To
    /// guarantee served requests beat their issuer's timeout, keep this
    /// below `service_rate × timeout`.
    pub max_depth: u64,
    /// Discard queued requests whose issuers already timed out instead
    /// of serving them (age-based shedding of orphan work).
    pub drop_expired: bool,
}

/// Circuit-breaker tuning.
///
/// Monotonicity contract: `open_threshold ≥ half_open_threshold` and
/// `min_failures ≥ min_failures_half`, so the Open predicate implies the
/// HalfOpen predicate and a worse window can only escalate the state.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding observation window, in engine ticks.
    pub window_ticks: usize,
    /// Failure rate at or above which the breaker opens.
    pub open_threshold: f64,
    /// Failure rate at or above which the breaker is at least half-open.
    pub half_open_threshold: f64,
    /// Minimum windowed failures before opening (volume gate).
    pub min_failures: u64,
    /// Minimum windowed failures before half-opening.
    pub min_failures_half: u64,
    /// Requests admitted per tick while Open — the probe floor;
    /// admission never drops below this.
    pub probe_per_tick: u64,
    /// Requests admitted per tick while HalfOpen (clamped up to at
    /// least the probe floor).
    pub half_open_per_tick: u64,
}

/// Breaker admission state, derived from the observation window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerState {
    /// Healthy: admit everything.
    Closed,
    /// Degraded: admit a trickle to probe for recovery.
    HalfOpen,
    /// Failing: admit only the probe floor.
    Open,
}

/// A windowed circuit breaker with half-open probing.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    ring: VecDeque<(u64, u64)>,
    succ: u64,
    fail: u64,
}

impl CircuitBreaker {
    /// A breaker with an empty (healthy) observation window.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.window_ticks > 0, "breaker window must be non-empty");
        assert!(
            cfg.open_threshold >= cfg.half_open_threshold
                && cfg.min_failures >= cfg.min_failures_half,
            "breaker thresholds must nest (open >= half-open) for monotonicity"
        );
        CircuitBreaker { cfg, ring: VecDeque::new(), succ: 0, fail: 0 }
    }

    /// Opens a fresh per-tick observation slot, evicting expired ones.
    pub fn begin_tick(&mut self) {
        self.ring.push_back((0, 0));
        while self.ring.len() > self.cfg.window_ticks {
            if let Some((s, f)) = self.ring.pop_front() {
                self.succ -= s;
                self.fail -= f;
            }
        }
    }

    /// Records observed request outcomes in the current tick slot.
    pub fn record(&mut self, successes: u64, failures: u64) {
        if let Some(slot) = self.ring.back_mut() {
            slot.0 += successes;
            slot.1 += failures;
        }
        self.succ += successes;
        self.fail += failures;
    }

    /// Current state — a pure function of the windowed counts.
    pub fn state(&self) -> BreakerState {
        let total = self.succ + self.fail;
        if total == 0 {
            return BreakerState::Closed;
        }
        let rate = self.fail as f64 / total as f64;
        if self.fail >= self.cfg.min_failures && rate >= self.cfg.open_threshold {
            BreakerState::Open
        } else if self.fail >= self.cfg.min_failures_half && rate >= self.cfg.half_open_threshold {
            BreakerState::HalfOpen
        } else {
            BreakerState::Closed
        }
    }

    /// Per-tick admission limit: `None` means unlimited (Closed). The
    /// limit never falls below `probe_per_tick`.
    pub fn admit_limit(&self) -> Option<u64> {
        match self.state() {
            BreakerState::Closed => None,
            BreakerState::HalfOpen => {
                Some(self.cfg.half_open_per_tick.max(self.cfg.probe_per_tick))
            }
            BreakerState::Open => Some(self.cfg.probe_per_tick),
        }
    }

    /// The configured probe floor.
    pub fn probe_floor(&self) -> u64 {
        self.cfg.probe_per_tick
    }
}

/// A mitigation variant applied to the served system.
#[derive(Clone, Copy, Debug)]
pub enum Mitigation {
    /// No protection: naive clients against a bounded queue.
    None,
    /// Depth/age load shedding at the queue.
    Shed(ShedConfig),
    /// A circuit breaker between the client population and the queue.
    Breaker(BreakerConfig),
    /// Depth/age shedding armed early by a `FailurePredictor` trend
    /// crossing (the ROADMAP "prediction as the load-shedding trigger"
    /// pairing): sheds only while the observed capacity trend is at or
    /// below `level` and declining at least `decline` per window.
    PredictiveShed {
        /// Shedding applied while the trend threshold is crossed.
        shed: ShedConfig,
        /// Trend estimator configuration.
        predictor: PredictorConfig,
        /// Arm when the fitted capacity level is at or below this.
        level: f64,
        /// Arm when declining at least this much per predictor window.
        decline: f64,
    },
}

impl Mitigation {
    /// Short stable label for metrics and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Mitigation::None => "none",
            Mitigation::Shed(_) => "shed",
            Mitigation::Breaker(_) => "breaker",
            Mitigation::PredictiveShed { .. } => "predictive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window_ticks: 4,
            open_threshold: 0.5,
            half_open_threshold: 0.25,
            min_failures: 8,
            min_failures_half: 4,
            probe_per_tick: 2,
            half_open_per_tick: 10,
        }
    }

    #[test]
    fn escalates_and_recovers_through_half_open() {
        let mut b = CircuitBreaker::new(cfg());
        b.begin_tick();
        b.record(20, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.begin_tick();
        b.record(0, 30);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit_limit(), Some(2));
        // Failures age out of the window; successes re-close the breaker.
        for _ in 0..3 {
            b.begin_tick();
            b.record(2, 0);
        }
        assert_eq!(b.state(), BreakerState::Open); // 30 fails still in window
        b.begin_tick();
        b.record(2, 1); // the 30-failure slot just aged out
        assert!(b.state() <= BreakerState::HalfOpen);
        for _ in 0..4 {
            b.begin_tick();
            b.record(20, 0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit_limit(), None);
    }

    #[test]
    fn admission_never_below_probe_floor() {
        let mut b = CircuitBreaker::new(cfg());
        b.begin_tick();
        b.record(0, 1_000_000);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit_limit().unwrap_or(u64::MAX) >= b.probe_floor());
    }
}
