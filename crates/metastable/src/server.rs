//! The served system: a bounded FIFO queue of aggregate request cohorts,
//! plus the trigger-windowing helper that maps a stutter injector's
//! lifetime profile into a transient mid-run trigger.
//!
//! A *cohort* is a batch of identical outstanding requests — same issue
//! tick, same deadline, same attempt number — so the engine's cost per
//! tick is bounded by the handful of cohorts created per tick, not by
//! the client population. This is what lets the closed loop model 10⁵+
//! clients on the PR-6 event engine without per-request events.

use std::collections::{BTreeMap, VecDeque};

use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// An aggregate batch of identical outstanding requests.
#[derive(Clone, Copy, Debug)]
pub struct Cohort {
    /// Tick at which the batch entered the queue.
    pub issued_tick: u64,
    /// Tick at which the issuing clients give up waiting.
    pub deadline_tick: u64,
    /// 1-based attempt number of the issuing clients.
    pub attempt: u32,
    /// Requests of the batch still queued.
    pub remaining: u64,
    /// Whether the issuers are still waiting (false once timed out).
    pub live: bool,
    /// Whether the batch came from the open-arrival stream.
    pub open: bool,
}

/// One tick of service, split by request disposition.
#[derive(Clone, Copy, Debug, Default)]
pub struct Served {
    /// Closed-loop requests served before their issuer's deadline.
    pub live_closed: u64,
    /// Open-arrival requests served before their deadline.
    pub live_open: u64,
    /// Orphaned requests served after their issuer gave up (pure waste).
    pub orphan: u64,
    /// Orphaned requests discarded unserved by age-based shedding.
    pub dropped_expired: u64,
}

/// A cohort remainder newly orphaned by its deadline passing.
#[derive(Clone, Copy, Debug)]
pub struct Expired {
    /// Attempt number the timed-out clients were on.
    pub attempt: u32,
    /// How many requests timed out.
    pub count: u64,
    /// Whether the cohort came from the open-arrival stream.
    pub open: bool,
}

/// Bounded FIFO queue of request cohorts with a deadline index.
#[derive(Debug)]
pub struct ServerQueue {
    slab: Vec<Cohort>,
    fifo: VecDeque<u32>,
    by_deadline: BTreeMap<u64, Vec<u32>>,
    depth: u64,
    cap: u64,
}

impl ServerQueue {
    /// An empty queue admitting at most `cap` requests.
    pub fn new(cap: u64) -> Self {
        ServerQueue {
            slab: Vec::new(),
            fifo: VecDeque::new(),
            by_deadline: BTreeMap::new(),
            depth: 0,
            cap,
        }
    }

    /// Requests currently queued.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Admission slots left before the hard capacity bound.
    pub fn free_slots(&self) -> u64 {
        self.cap.saturating_sub(self.depth)
    }

    /// Enqueues a cohort. The caller must have clamped `remaining` to
    /// [`free_slots`](Self::free_slots); empty cohorts are ignored.
    pub fn push(&mut self, c: Cohort) {
        if c.remaining == 0 {
            return;
        }
        debug_assert!(c.remaining <= self.free_slots(), "cohort overflows queue capacity");
        let id = self.slab.len() as u32;
        self.depth += c.remaining;
        self.by_deadline.entry(c.deadline_tick).or_default().push(id);
        self.slab.push(c);
        self.fifo.push_back(id);
    }

    /// Serves queued requests front-to-back while `credit` covers them.
    ///
    /// With `drop_expired`, orphaned cohorts at the head are discarded
    /// without consuming credit (age-based shedding: a request whose
    /// issuer already gave up is pure waste, and rejecting is cheap).
    pub fn serve(&mut self, credit: &mut f64, drop_expired: bool) -> Served {
        let mut out = Served::default();
        while let Some(&id) = self.fifo.front() {
            let Some(c) = self.slab.get_mut(id as usize) else {
                break;
            };
            if drop_expired && !c.live {
                out.dropped_expired += c.remaining;
                self.depth -= c.remaining;
                c.remaining = 0;
                self.fifo.pop_front();
                continue;
            }
            let can = *credit as u64;
            if can == 0 {
                break;
            }
            let k = can.min(c.remaining);
            *credit -= k as f64;
            c.remaining -= k;
            self.depth -= k;
            if c.live {
                if c.open {
                    out.live_open += k;
                } else {
                    out.live_closed += k;
                }
            } else {
                out.orphan += k;
            }
            if c.remaining == 0 {
                self.fifo.pop_front();
            } else {
                break; // credit exhausted mid-cohort
            }
        }
        out
    }

    /// Marks every cohort whose deadline is `tick` as timed out,
    /// returning the newly orphaned remainders (cohorts fully served
    /// before their deadline produce nothing).
    pub fn expire(&mut self, tick: u64) -> Vec<Expired> {
        let mut out = Vec::new();
        if let Some(ids) = self.by_deadline.remove(&tick) {
            for id in ids {
                if let Some(c) = self.slab.get_mut(id as usize) {
                    if c.live && c.remaining > 0 {
                        c.live = false;
                        out.push(Expired { attempt: c.attempt, count: c.remaining, open: c.open });
                    } else {
                        c.live = false;
                    }
                }
            }
        }
        out
    }

    /// Final queue census: (live closed, live open, orphaned) requests.
    pub fn census(&self) -> (u64, u64, u64) {
        let mut live_closed = 0;
        let mut live_open = 0;
        let mut orphan = 0;
        for &id in &self.fifo {
            if let Some(c) = self.slab.get(id as usize) {
                if !c.live {
                    orphan += c.remaining;
                } else if c.open {
                    live_open += c.remaining;
                } else {
                    live_closed += c.remaining;
                }
            }
        }
        (live_closed, live_open, orphan)
    }
}

/// Maps an injector's lifetime [`SlowdownProfile`] into a transient
/// mid-run trigger.
///
/// The run window `[start, start + span)` replays the profile's first
/// `span × scale` of component life at `scale`× time compression;
/// outside the window capacity is nominal. A fail-stop inside the
/// replayed prefix becomes a zero-multiplier segment that ends with the
/// window — the trigger is transient *by construction*, which is exactly
/// what the sustaining-effect oracles need: any overload that persists
/// after `start + span` is sustained by the feedback loop, not by the
/// fault.
pub fn trigger_window(
    profile: &SlowdownProfile,
    start: SimTime,
    span: SimDuration,
    scale: f64,
) -> SlowdownProfile {
    assert!(scale > 0.0, "time-compression scale must be positive");
    let span_src = span.mul_f64(scale);
    let fail = profile.fail_at();
    let mut points: BTreeMap<u64, f64> = BTreeMap::new();
    points.insert(0, 1.0);
    for &(ts, m) in profile.segments() {
        let src = SimDuration::from_nanos(ts.as_nanos());
        if src >= span_src {
            break;
        }
        let failed = fail.map(|f| SimDuration::from_nanos(f.as_nanos()) <= src).unwrap_or(false);
        let eff = if failed { 0.0 } else { m.clamp(0.0, 1.0) };
        let mapped = start + src.mul_f64(1.0 / scale);
        points.insert(mapped.as_nanos(), eff);
    }
    if let Some(f) = fail {
        let src = SimDuration::from_nanos(f.as_nanos());
        if src < span_src {
            let mapped = start + src.mul_f64(1.0 / scale);
            points.insert(mapped.as_nanos(), 0.0);
        }
    }
    points.insert((start + span).as_nanos(), 1.0);
    let breakpoints =
        points.into_iter().map(|(t, m)| (SimTime::ZERO + SimDuration::from_nanos(t), m)).collect();
    SlowdownProfile::from_breakpoints(breakpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort(deadline: u64, n: u64, attempt: u32) -> Cohort {
        Cohort {
            issued_tick: 0,
            deadline_tick: deadline,
            attempt,
            remaining: n,
            live: true,
            open: false,
        }
    }

    #[test]
    fn fifo_serve_and_expire() {
        let mut q = ServerQueue::new(100);
        q.push(cohort(5, 10, 1));
        q.push(cohort(7, 4, 2));
        let mut credit = 6.0;
        let s = q.serve(&mut credit, false);
        assert_eq!(s.live_closed, 6);
        assert_eq!(q.depth(), 8);
        let expired = q.expire(5);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].count, 4);
        // orphaned head now served as waste
        let mut credit = 10.0;
        let s = q.serve(&mut credit, false);
        assert_eq!(s.orphan, 4);
        assert_eq!(s.live_closed, 4);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn drop_expired_discards_without_credit() {
        let mut q = ServerQueue::new(100);
        q.push(cohort(1, 9, 1));
        q.push(cohort(9, 3, 1));
        assert!(q.expire(1).len() == 1);
        let mut credit = 3.0;
        let s = q.serve(&mut credit, true);
        assert_eq!(s.dropped_expired, 9);
        assert_eq!(s.live_closed, 3);
        assert_eq!(credit, 0.0);
    }

    #[test]
    fn census_splits_dispositions() {
        let mut q = ServerQueue::new(100);
        q.push(cohort(1, 5, 1));
        q.push(Cohort { open: true, ..cohort(9, 2, 1) });
        q.expire(1);
        assert_eq!(q.census(), (0, 2, 5));
    }

    #[test]
    fn window_compresses_and_strips_failure() {
        // Source: nominal, degrades to 0.2 at 1000 s, fails at 2000 s.
        let p = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(1000), 0.2),
        ])
        .with_failure_at(SimTime::from_secs(2000));
        let w = trigger_window(&p, SimTime::from_secs(60), SimDuration::from_secs(30), 100.0);
        assert_eq!(w.fail_at(), None);
        assert_eq!(w.multiplier_at(SimTime::from_secs(59)), 1.0);
        assert_eq!(w.multiplier_at(SimTime::from_secs(65)), 1.0); // source 500 s
        assert_eq!(w.multiplier_at(SimTime::from_secs(75)), 0.2); // source 1500 s
        assert_eq!(w.multiplier_at(SimTime::from_secs(85)), 0.0); // past source failure
        assert_eq!(w.multiplier_at(SimTime::from_secs(90)), 1.0); // trigger removed
        assert_eq!(w.multiplier_at(SimTime::from_secs(400)), 1.0);
    }
}
