//! The closed-loop population engine.
//!
//! Clients cycle think → issue → wait; the server drains a bounded FIFO
//! queue at `service_rate × multiplier(t)`, where the multiplier comes
//! from a (windowed) `stutter` slowdown profile — the *trigger*. A
//! request served after its issuer's timeout is *orphan work*: capacity
//! spent producing nothing. Once the queue holds more than
//! `service_rate × timeout` requests, everything served is orphaned,
//! goodput pins near zero, every attempt times out and (with naive
//! retries) demand is amplified by the retry policy — the feedback loop
//! that makes collapse outlive the trigger.
//!
//! The engine is aggregate: same-tick requests form *cohorts*
//! ([`crate::server`]), so cost per tick is O(cohorts), independent of
//! the client population. The whole run is driven by a single `simcore`
//! periodic event — one event per timestamp means the dispatch order is
//! trivially identical under every event-queue kind, keeping the
//! campaign's queue-invariance digest safe.

use std::collections::BTreeMap;

use simcore::rng::Stream;
use simcore::sim::Simulation;
use simcore::time::{SimDuration, SimTime, NANOS_PER_SEC};
use stutter::injector::SlowdownProfile;
use stutter::predict::FailurePredictor;

use crate::client::{Backoff, BudgetConfig, RetryBudget, RetryPolicy};
use crate::policy::{BreakerState, CircuitBreaker, Mitigation, ShedConfig};
use crate::server::{Cohort, ServerQueue};

/// Closed-loop population configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Closed-loop client population size.
    pub population: u64,
    /// Think time between a completed (or abandoned) operation and the
    /// next fresh request.
    pub think: SimDuration,
    /// Per-client timeout/retry policy.
    pub policy: RetryPolicy,
    /// Retry-token budget; `None` = naive unbudgeted retries.
    pub budget: Option<BudgetConfig>,
    /// Nominal service rate, requests/second.
    pub service_rate: f64,
    /// Hard bound on queued requests.
    pub queue_cap: u64,
    /// Engine tick; must divide one second evenly.
    pub dt: SimDuration,
    /// Run length.
    pub horizon: SimDuration,
    /// Extra open-arrival requests/second (timeout applies, but no
    /// retries and no think loop).
    pub open_per_sec: f64,
    /// Start collapsed: every client issues at t = 0 instead of being
    /// staggered over one think time — the recovery side of the
    /// hysteresis sweep.
    pub initial_burst: bool,
}

impl Config {
    /// The campaign-cell reference configuration.
    ///
    /// Sized so the stable regime is comfortably feasible (utilisation
    /// ≈ 0.65) while the fully-collapsed retry storm demands ≈ 1.18×
    /// nominal capacity: vulnerable, in the fluid-model sense, to a deep
    /// enough trigger — and the queue bound (10× `service_rate ×
    /// timeout`) is deep enough to hold the head past the client timeout,
    /// which is what sustains pure orphan service.
    pub fn campaign() -> Self {
        Config {
            population: 13_000,
            think: SimDuration::from_secs(10),
            policy: RetryPolicy {
                timeout: SimDuration::from_secs(1),
                max_attempts: 3,
                backoff: Backoff::Exponential {
                    base: SimDuration::from_millis(500),
                    cap: SimDuration::from_secs(2),
                },
            },
            budget: None,
            service_rate: 2_000.0,
            queue_cap: 20_000,
            dt: SimDuration::from_millis(50),
            horizon: SimDuration::from_secs(450),
            open_per_sec: 0.0,
            initial_burst: false,
        }
    }

    /// Checks every constraint the engine relies on, in release builds
    /// too. [`Engine::new`] refuses an invalid configuration, but
    /// sweep/CLI code should call this at the config boundary, where the
    /// error can name the offending knob instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 {
            return Err("population must be non-empty".to_string());
        }
        if self.service_rate.is_nan() || self.service_rate <= 0.0 {
            return Err(format!("service rate must be positive, got {}", self.service_rate));
        }
        if self.policy.max_attempts < 1 {
            return Err("at least one attempt per operation".to_string());
        }
        if self.dt.is_zero() {
            return Err("tick must be positive".to_string());
        }
        if !NANOS_PER_SEC.is_multiple_of(self.dt.as_nanos()) {
            return Err(format!(
                "tick must divide one second evenly, got dt = {} ns",
                self.dt.as_nanos()
            ));
        }
        Ok(())
    }

    /// Number of whole engine ticks in the run.
    pub fn ticks(&self) -> u64 {
        assert!(!self.dt.is_zero(), "tick must be positive");
        self.horizon.as_nanos() / self.dt.as_nanos()
    }

    /// Engine ticks per simulated second.
    ///
    /// [`Config::validate`] has already established that `dt` divides
    /// one second evenly, so the division here is exact.
    pub fn ticks_per_sec(&self) -> u64 {
        let per_sec = NANOS_PER_SEC / self.dt.as_nanos();
        debug_assert!(per_sec * self.dt.as_nanos() == NANOS_PER_SEC);
        per_sec
    }

    fn dur_ticks(&self, d: SimDuration) -> u64 {
        (d.as_nanos() / self.dt.as_nanos()).max(1)
    }
}

/// End-of-run counters; the conservation oracles audit these.
#[derive(Clone, Copy, Debug, Default)]
pub struct Totals {
    /// First attempts issued by closed-loop clients.
    pub issued_fresh: u64,
    /// Retry attempts issued by closed-loop clients.
    pub issued_retry: u64,
    /// Open-arrival requests issued.
    pub issued_open: u64,
    /// Requests fast-failed by the circuit breaker.
    pub rejected_breaker: u64,
    /// Requests rejected by depth shedding.
    pub rejected_shed: u64,
    /// Requests rejected by the hard queue capacity bound.
    pub rejected_cap: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Closed-loop requests served before their issuer's deadline.
    pub served_live: u64,
    /// Open-arrival requests served before their deadline.
    pub served_open: u64,
    /// Requests served after their issuer gave up (wasted work).
    pub served_orphan: u64,
    /// Orphaned requests discarded unserved by age shedding.
    pub dropped_expired: u64,
    /// Closed-loop requests whose issuer timed out waiting.
    pub timeouts: u64,
    /// Open-arrival requests that timed out waiting.
    pub open_timeouts: u64,
    /// Retries granted and scheduled (after budget clamping).
    pub retries_scheduled: u64,
    /// Operations abandoned (retries exhausted or budget-refused).
    pub gave_up: u64,
    /// Live closed-loop requests still queued at the horizon.
    pub queue_live_end: u64,
    /// Live open-arrival requests still queued at the horizon.
    pub queue_open_end: u64,
    /// Orphaned requests still queued at the horizon.
    pub queue_orphan_end: u64,
    /// Clients still waiting out a backoff at the horizon.
    pub backoff_end: u64,
    /// Clients thinking (or past-horizon scheduled) at the horizon.
    pub think_end: u64,
    /// Total service credit accrued (requests' worth of capacity).
    pub capacity_credit: f64,
    /// First tick on which any admission was rejected, if any.
    pub first_reject_tick: Option<u64>,
}

/// Per-tick series and totals recorded for the oracles and experiments.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Engine tick length.
    pub dt: SimDuration,
    /// Ticks executed.
    pub ticks: u64,
    /// Ticks per simulated second.
    pub ticks_per_sec: u64,
    /// Live (non-orphan) requests served, per tick.
    pub goodput: Vec<u64>,
    /// Queue depth at tick end.
    pub depth: Vec<u64>,
    /// Orphaned requests served, per tick.
    pub orphans: Vec<u64>,
    /// Closed-loop timeouts, per tick.
    pub timeouts: Vec<u64>,
    /// Admissions rejected (breaker + shed + cap), per tick.
    pub rejected: Vec<u64>,
    /// Breaker state per tick (0 closed, 1 half-open, 2 open).
    pub breaker: Vec<u8>,
    /// First tick with degraded capacity (multiplier < 1), if any.
    pub first_degraded: Option<u64>,
    /// Last tick with degraded capacity, if any.
    pub last_degraded: Option<u64>,
    /// End-of-run counters.
    pub totals: Totals,
}

impl RunTrace {
    /// Goodput folded into per-second sums.
    pub fn goodput_per_sec(&self) -> Vec<u64> {
        self.goodput.chunks(self.ticks_per_sec as usize).map(|c| c.iter().sum()).collect()
    }

    /// Total live requests served.
    pub fn total_goodput(&self) -> u64 {
        self.totals.served_live + self.totals.served_open
    }

    /// Degraded (trigger) span in whole seconds `(first, last)`, if the
    /// run saw any capacity dip.
    pub fn degraded_secs(&self) -> Option<(u64, u64)> {
        match (self.first_degraded, self.last_degraded) {
            (Some(a), Some(b)) => Some((a / self.ticks_per_sec, b / self.ticks_per_sec)),
            _ => None,
        }
    }
}

struct Engine {
    cfg: Config,
    trigger: SlowdownProfile,
    queue: ServerQueue,
    budget: Option<RetryBudget>,
    breaker: Option<CircuitBreaker>,
    predictor: Option<(FailurePredictor, ShedConfig, f64, f64)>,
    pred_armed: bool,
    plain_shed: Option<ShedConfig>,
    think_wheel: BTreeMap<u64, u64>,
    backoff_wheel: BTreeMap<u64, BTreeMap<u32, u64>>,
    jitter: Stream,
    credit: f64,
    open_acc: f64,
    tick: u64,
    ticks: u64,
    timeout_ticks: u64,
    think_ticks: u64,
    dt_secs: f64,
    waiting: u64,
    in_backoff: u64,
    in_think: u64,
    tick_timeouts: u64,
    tick_rejected: u64,
    totals: Totals,
    trace: RunTrace,
}

impl Engine {
    fn new(
        cfg: Config,
        trigger: SlowdownProfile,
        mitigation: Mitigation,
        rng: &mut Stream,
    ) -> Self {
        let checked = cfg.validate();
        assert!(checked.is_ok(), "invalid metastable config: {:?}", checked);
        let ticks = cfg.ticks();
        let ticks_per_sec = cfg.ticks_per_sec();
        let think_ticks = cfg.dur_ticks(cfg.think);
        let timeout_ticks = cfg.dur_ticks(cfg.policy.timeout);
        let (breaker, plain_shed, predictor) = match mitigation {
            Mitigation::None => (None, None, None),
            Mitigation::Shed(s) => (None, Some(s), None),
            Mitigation::Breaker(b) => (Some(CircuitBreaker::new(b)), None, None),
            Mitigation::PredictiveShed { shed, predictor, level, decline } => {
                (None, None, Some((FailurePredictor::new(predictor), shed, level, decline)))
            }
        };
        let mut think_wheel: BTreeMap<u64, u64> = BTreeMap::new();
        if cfg.initial_burst {
            think_wheel.insert(0, cfg.population);
        } else {
            // Stagger first issues uniformly over one think time, with a
            // seeded phase so replicates de-correlate.
            let phase = rng.derive("meta-stagger").next_below(think_ticks);
            let mut prev = 0;
            for s in 0..think_ticks {
                let cum = cfg.population * (s + 1) / think_ticks;
                let c = cum - prev;
                prev = cum;
                if c > 0 {
                    *think_wheel.entry((s + phase) % think_ticks).or_insert(0) += c;
                }
            }
        }
        let cap = ticks as usize;
        Engine {
            cfg,
            trigger,
            queue: ServerQueue::new(cfg.queue_cap),
            budget: cfg.budget.map(RetryBudget::new),
            breaker,
            predictor,
            pred_armed: false,
            plain_shed,
            think_wheel,
            backoff_wheel: BTreeMap::new(),
            jitter: rng.derive("meta-jitter"),
            credit: 0.0,
            open_acc: 0.0,
            tick: 0,
            ticks,
            timeout_ticks,
            think_ticks,
            dt_secs: cfg.dt.as_secs_f64(),
            waiting: 0,
            in_backoff: 0,
            in_think: cfg.population,
            tick_timeouts: 0,
            tick_rejected: 0,
            totals: Totals::default(),
            trace: RunTrace {
                dt: cfg.dt,
                ticks,
                ticks_per_sec,
                goodput: Vec::with_capacity(cap),
                depth: Vec::with_capacity(cap),
                orphans: Vec::with_capacity(cap),
                timeouts: Vec::with_capacity(cap),
                rejected: Vec::with_capacity(cap),
                breaker: Vec::with_capacity(cap),
                first_degraded: None,
                last_degraded: None,
                totals: Totals::default(),
            },
        }
    }

    /// Spreads `n` clients' next fresh issues over a few ticks starting
    /// one think time after `t` (a seeded phase picks the remainder slot
    /// so lockstep cohorts de-correlate across replicates).
    fn schedule_think(&mut self, t: u64, n: u64) {
        if n == 0 {
            return;
        }
        let base = t + self.think_ticks;
        let spread = 4;
        let phase = self.jitter.next_below(spread);
        let per = n / spread;
        let rem = n % spread;
        for s in 0..spread {
            let c = per + if s == phase { rem } else { 0 };
            if c > 0 {
                *self.think_wheel.entry(base + s).or_insert(0) += c;
            }
        }
        self.in_think += n;
    }

    /// Routes `n` failed closed-loop attempts (timeout or rejection) at
    /// attempt number `attempt`: budget-clamped retry after backoff, or
    /// give up and think.
    fn fail_path(&mut self, t: u64, attempt: u32, n: u64) {
        let retryable = if attempt < self.cfg.policy.max_attempts { n } else { 0 };
        let granted = match &mut self.budget {
            Some(b) => b.grant(retryable),
            None => retryable,
        };
        let refused = n - granted;
        if granted > 0 {
            let delay = self.cfg.dur_ticks(self.cfg.policy.backoff.delay(attempt));
            let slot = self.backoff_wheel.entry(t + delay).or_default();
            *slot.entry(attempt + 1).or_insert(0) += granted;
            self.in_backoff += granted;
            self.totals.retries_scheduled += granted;
        }
        if refused > 0 {
            self.totals.gave_up += refused;
            self.schedule_think(t, refused);
        }
    }

    /// Admits one issuing batch through breaker → shed → capacity, in
    /// that order, routing rejected closed-loop clients to the retry
    /// path.
    fn admit(
        &mut self,
        t: u64,
        attempt: u32,
        n: u64,
        open: bool,
        shed: Option<ShedConfig>,
        admit_left: &mut Option<u64>,
    ) {
        if open {
            self.totals.issued_open += n;
        } else if attempt > 1 {
            self.totals.issued_retry += n;
        } else {
            self.totals.issued_fresh += n;
        }
        let mut remaining = n;
        let mut rej_breaker = 0;
        if let Some(left) = admit_left {
            let a = remaining.min(*left);
            rej_breaker = remaining - a;
            *left -= a;
            remaining = a;
        }
        let mut rej_shed = 0;
        if let Some(s) = shed {
            let room = s.max_depth.saturating_sub(self.queue.depth());
            let a = remaining.min(room);
            rej_shed = remaining - a;
            remaining = a;
        }
        let room = self.queue.free_slots();
        let a = remaining.min(room);
        let rej_cap = remaining - a;
        remaining = a;

        self.totals.rejected_breaker += rej_breaker;
        self.totals.rejected_shed += rej_shed;
        self.totals.rejected_cap += rej_cap;
        let rejected = rej_breaker + rej_shed + rej_cap;
        self.tick_rejected += rejected;
        if rejected > 0 && self.totals.first_reject_tick.is_none() {
            self.totals.first_reject_tick = Some(t);
        }
        if remaining > 0 {
            self.totals.admitted += remaining;
            self.queue.push(Cohort {
                issued_tick: t,
                deadline_tick: t + self.timeout_ticks,
                attempt,
                remaining,
                live: true,
                open,
            });
            if !open {
                self.waiting += remaining;
            }
        }
        if rejected > 0 && !open {
            self.fail_path(t, attempt, rejected);
        }
    }

    /// One engine tick: serve, expire, issue, record.
    fn step(&mut self, now: SimTime) {
        let t = self.tick;
        let mult = self.trigger.multiplier_at(now);
        if mult < 1.0 - 1e-9 {
            if self.trace.first_degraded.is_none() {
                self.trace.first_degraded = Some(t);
            }
            self.trace.last_degraded = Some(t);
        }
        if let Some((p, _, level, decline)) = &mut self.predictor {
            p.observe(now, mult);
            self.pred_armed = p.trend_crossed(*level, *decline);
        }
        let shed = match (&self.plain_shed, &self.predictor) {
            (Some(s), _) => Some(*s),
            (None, Some((_, s, _, _))) if self.pred_armed => Some(*s),
            _ => None,
        };
        if let Some(b) = &mut self.breaker {
            b.begin_tick();
        }

        // Serve. Unused capacity is lost (no banking across an idle
        // queue beyond one request's worth of fractional carry).
        let accrued = self.cfg.service_rate * mult * self.dt_secs;
        self.credit += accrued;
        self.totals.capacity_credit += accrued;
        let drop_expired = shed.map(|s| s.drop_expired).unwrap_or(false);
        let served = self.queue.serve(&mut self.credit, drop_expired);
        if self.queue.depth() == 0 {
            self.credit = self.credit.min(1.0);
        }
        self.totals.served_live += served.live_closed;
        self.totals.served_open += served.live_open;
        self.totals.served_orphan += served.orphan;
        self.totals.dropped_expired += served.dropped_expired;
        if let Some(b) = &mut self.breaker {
            b.record(served.live_closed + served.live_open, 0);
        }
        if let Some(bud) = &mut self.budget {
            bud.deposit(served.live_closed);
        }
        self.waiting -= served.live_closed;
        self.schedule_think(t, served.live_closed);

        // Timeouts: unserved remainders orphan, issuers retry or give up.
        for e in self.queue.expire(t) {
            if let Some(b) = &mut self.breaker {
                b.record(0, e.count);
            }
            if e.open {
                self.totals.open_timeouts += e.count;
            } else {
                self.totals.timeouts += e.count;
                self.tick_timeouts += e.count;
                self.waiting -= e.count;
                self.fail_path(t, e.attempt, e.count);
            }
        }

        // Issue: retries (ascending attempt), then fresh, then open.
        let mut admit_left = self.breaker.as_ref().and_then(|b| b.admit_limit());
        if let Some(batches) = self.backoff_wheel.remove(&t) {
            for (attempt, count) in batches {
                self.in_backoff -= count;
                self.admit(t, attempt, count, false, shed, &mut admit_left);
            }
        }
        if let Some(fresh) = self.think_wheel.remove(&t) {
            self.in_think -= fresh;
            self.admit(t, 1, fresh, false, shed, &mut admit_left);
        }
        self.open_acc += self.cfg.open_per_sec * self.dt_secs;
        let n_open = self.open_acc as u64;
        if n_open > 0 {
            self.open_acc -= n_open as f64;
            self.admit(t, 1, n_open, true, shed, &mut admit_left);
        }

        // Record.
        self.trace.goodput.push(served.live_closed + served.live_open);
        self.trace.depth.push(self.queue.depth());
        self.trace.orphans.push(served.orphan);
        self.trace.timeouts.push(self.tick_timeouts);
        self.trace.rejected.push(self.tick_rejected);
        self.trace.breaker.push(match self.breaker.as_ref().map(|b| b.state()) {
            None | Some(BreakerState::Closed) => 0,
            Some(BreakerState::HalfOpen) => 1,
            Some(BreakerState::Open) => 2,
        });
        self.tick_timeouts = 0;
        self.tick_rejected = 0;
        assert!(
            self.waiting + self.in_backoff + self.in_think == self.cfg.population,
            "client conservation broken at tick {t}"
        );
        self.tick += 1;
    }

    fn finish(mut self) -> RunTrace {
        let (live, open, orphan) = self.queue.census();
        debug_assert_eq!(self.waiting, live, "waiting clients must equal live queued requests");
        self.totals.queue_live_end = live;
        self.totals.queue_open_end = open;
        self.totals.queue_orphan_end = orphan;
        self.totals.backoff_end = self.in_backoff;
        self.totals.think_end = self.in_think;
        self.trace.totals = self.totals;
        self.trace
    }
}

/// Runs the closed loop to the horizon under `trigger` and `mitigation`.
///
/// Deterministic given `(config, trigger, rng)`: the run is driven by a
/// single `simcore` periodic event, so with one event per timestamp the
/// dispatch order is identical under every event-queue kind.
pub fn run(
    cfg: &Config,
    trigger: &SlowdownProfile,
    mitigation: Mitigation,
    rng: &mut Stream,
) -> RunTrace {
    let engine = Engine::new(*cfg, trigger.clone(), mitigation, rng);
    let ticks = engine.ticks;
    let mut sim = Simulation::new(engine);
    sim.schedule_periodic(SimDuration::ZERO, move |eng: &mut Engine, sched| {
        eng.step(sched.now());
        if eng.tick >= ticks {
            None
        } else {
            Some(eng.cfg.dt)
        }
    });
    sim.run_until(SimTime::ZERO + cfg.horizon);
    sim.into_state().finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::trigger_window;

    fn small() -> Config {
        Config {
            population: 400,
            think: SimDuration::from_secs(10),
            policy: RetryPolicy {
                timeout: SimDuration::from_secs(1),
                max_attempts: 3,
                backoff: Backoff::Fixed(SimDuration::from_millis(500)),
            },
            budget: None,
            service_rate: 60.0,
            queue_cap: 600,
            dt: SimDuration::from_millis(50),
            horizon: SimDuration::from_secs(120),
            open_per_sec: 0.0,
            initial_burst: false,
        }
    }

    fn outage(start: u64, secs: u64) -> SlowdownProfile {
        SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(start), 0.0),
            (SimTime::from_secs(start + secs), 1.0),
        ])
    }

    #[test]
    fn validate_rejects_non_dividing_dt() {
        // A `Result`, not a `debug_assert!`: the check must hold in
        // release builds too, where a 7 ms tick would silently truncate
        // `ticks_per_sec` and reshape every per-second rate.
        let mut cfg = small();
        assert!(cfg.validate().is_ok());
        cfg.dt = SimDuration::from_millis(7);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("divide one second"), "{err}");
        cfg.dt = SimDuration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_names_the_offending_knob() {
        let mut cfg = small();
        cfg.population = 0;
        assert!(cfg.validate().unwrap_err().contains("population"));
        let mut cfg = small();
        cfg.service_rate = 0.0;
        assert!(cfg.validate().unwrap_err().contains("service rate"));
        let mut cfg = small();
        cfg.policy.max_attempts = 0;
        assert!(cfg.validate().unwrap_err().contains("attempt"));
    }

    #[test]
    fn quiet_run_conserves_and_serves() {
        let mut rng = Stream::from_seed(7).derive("meta-engine-test-quiet");
        let cfg = small();
        let tr = run(&cfg, &SlowdownProfile::nominal(), Mitigation::None, &mut rng);
        let t = tr.totals;
        assert_eq!(t.issued_fresh + t.issued_retry, t.admitted);
        assert_eq!(t.timeouts, 0);
        assert_eq!(t.served_orphan, 0);
        // ~40 req/s for ~120 s, minus ramp-in.
        assert!(t.served_live > 4_000, "goodput too low: {}", t.served_live);
        assert_eq!(cfg.population, t.queue_live_end + t.backoff_end + t.think_end);
    }

    #[test]
    fn outage_orphans_and_retries() {
        let mut rng = Stream::from_seed(7).derive("meta-engine-test-outage");
        let cfg = small();
        let tr = run(&cfg, &outage(30, 10), Mitigation::None, &mut rng);
        let t = tr.totals;
        assert!(t.timeouts > 0, "an outage longer than the timeout must time out waiters");
        assert!(t.issued_retry > 0, "timeouts must schedule retries");
        assert!(t.served_orphan > 0, "orphaned work must be served after the outage");
        assert_eq!(t.issued_fresh + t.issued_retry, t.admitted + t.rejected_cap);
        assert_eq!(
            t.admitted,
            t.served_live
                + t.served_orphan
                + t.dropped_expired
                + t.queue_live_end
                + t.queue_orphan_end
        );
        assert_eq!(t.timeouts, t.served_orphan + t.dropped_expired + t.queue_orphan_end);
        assert_eq!(t.retries_scheduled, t.issued_retry + t.backoff_end);
    }

    #[test]
    fn capacity_bound_holds() {
        let mut rng = Stream::from_seed(7).derive("meta-engine-test-capacity");
        let cfg = small();
        let tr = run(&cfg, &outage(30, 10), Mitigation::None, &mut rng);
        let served =
            (tr.totals.served_live + tr.totals.served_open + tr.totals.served_orphan) as f64;
        assert!(served <= tr.totals.capacity_credit + 1.0);
    }

    #[test]
    fn windowed_trigger_marks_degraded_span() {
        let mut rng = Stream::from_seed(7).derive("meta-engine-test-window");
        let cfg = small();
        let src = SlowdownProfile::from_breakpoints(vec![(SimTime::ZERO, 0.3)]);
        let w = trigger_window(&src, SimTime::from_secs(30), SimDuration::from_secs(10), 100.0);
        let tr = run(&cfg, &w, Mitigation::None, &mut rng);
        let (a, b) = tr.degraded_secs().expect("window must register as degraded");
        assert_eq!((a, b), (30, 39));
    }

    #[test]
    fn identical_under_both_queue_kinds() {
        use simcore::queue::QueueKind;
        let gp = |kind: QueueKind| {
            let engine = {
                let mut rng = Stream::from_seed(11).derive("meta-engine-test-kinds");
                Engine::new(small(), outage(30, 10), Mitigation::None, &mut rng)
            };
            let ticks = engine.ticks;
            let mut sim = Simulation::with_queue_kind(engine, kind);
            sim.schedule_periodic(SimDuration::ZERO, move |eng: &mut Engine, sched| {
                eng.step(sched.now());
                if eng.tick >= ticks {
                    None
                } else {
                    Some(eng.cfg.dt)
                }
            });
            sim.run_until(SimTime::ZERO + small().horizon);
            sim.into_state().finish().goodput
        };
        assert_eq!(gp(QueueKind::Calendar), gp(QueueKind::Reference));
    }
}
