//! The sustaining-effect oracle family.
//!
//! Following "A Formal Framework for Predicting Distributed System
//! Performance under Faults" (PAPERS.md), the checks pair an analytic
//! *fluid-model* prediction — is this configuration vulnerable, i.e.
//! does the fully-collapsed retry storm demand more than nominal
//! capacity? — with the simulated outcome:
//!
//! * conservation audits (every request and every client accounted for),
//! * a capacity bound (you cannot serve work that was never affordable),
//! * regime classification per run (stable / vulnerable / metastable),
//! * "trigger removed but goodput stays collapsed" detection, and
//! * "mitigation restores the stable regime within a deadline".

use simcore::time::SimDuration;

use crate::engine::{Config, RunTrace};

/// A failed oracle check.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which oracle flagged.
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(oracle: &'static str, detail: String) -> Self {
        Violation { oracle, detail }
    }
}

/// Observed/predicted regime of one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Healthy, and the configuration could not sustain a collapse.
    Stable,
    /// Healthy in this run, but the configuration admits a sustained
    /// collapse (a deep enough trigger would stick).
    Vulnerable,
    /// Goodput stayed collapsed for the whole sustain window after the
    /// trigger was removed — the feedback loop, not the fault, is in
    /// charge.
    Metastable,
}

impl Regime {
    /// Stable numeric code for campaign metrics (0/1/2).
    pub fn code(self) -> u64 {
        match self {
            Regime::Stable => 0,
            Regime::Vulnerable => 1,
            Regime::Metastable => 2,
        }
    }
}

/// Classification thresholds.
#[derive(Clone, Copy, Debug)]
pub struct OracleParams {
    /// Seconds of ramp-in excluded from the baseline.
    pub warmup_secs: u64,
    /// A second is *collapsed* when goodput is below this fraction of
    /// baseline.
    pub collapse_frac: f64,
    /// A second is *recovered* when goodput is at or above this fraction
    /// of baseline.
    pub recover_frac: f64,
    /// Consecutive recovered seconds required to declare recovery.
    pub recover_dwell_secs: u64,
    /// Collapse must persist this × the trigger span (post-trigger) to
    /// classify as metastable.
    pub sustain_mult: u64,
    /// Mitigations must restore the stable regime within this much time
    /// after the trigger is removed.
    pub recovery_deadline: SimDuration,
}

impl Default for OracleParams {
    fn default() -> Self {
        OracleParams {
            warmup_secs: 20,
            collapse_frac: 0.1,
            recover_frac: 0.5,
            recover_dwell_secs: 5,
            sustain_mult: 10,
            recovery_deadline: SimDuration::from_secs(45),
        }
    }
}

/// Everything the classifier measured about one run.
#[derive(Clone, Copy, Debug)]
pub struct Assessment {
    /// Mean goodput per second over the pre-trigger baseline window.
    pub baseline_per_sec: f64,
    /// Degraded span `(first, last)` in whole seconds, if any.
    pub trigger_secs: Option<(u64, u64)>,
    /// Consecutive collapsed seconds immediately after the trigger.
    pub collapsed_secs_post: u64,
    /// Seconds from trigger end to sustained recovery, if it happened.
    pub recovery_secs: Option<u64>,
    /// Fluid-model prediction for the configuration.
    pub predicted_vulnerable: bool,
    /// The resulting classification.
    pub regime: Regime,
}

/// Fluid-model vulnerability prediction for a configuration.
///
/// In the fully-collapsed state every attempt times out, so one
/// operation costs `max_attempts × timeout + Σ backoff + think` seconds
/// and issues `max_attempts` requests (one request per `timeout + think`
/// when a budget chokes retries — with no successes there is nothing to
/// earn tokens from). The configuration is vulnerable when that demand
/// meets or exceeds nominal capacity **and** the queue bound is deep
/// enough (`> service_rate × timeout`) to hold the head past the client
/// timeout, which is what keeps all served work orphaned.
pub fn predict_vulnerable(cfg: &Config) -> bool {
    let timeout = cfg.policy.timeout.as_secs_f64();
    let think = cfg.think.as_secs_f64();
    let collapsed_rate = if cfg.budget.is_none() {
        let attempts = cfg.policy.max_attempts as f64;
        let cycle = attempts * timeout + cfg.policy.total_backoff_secs() + think;
        cfg.population as f64 * attempts / cycle
    } else {
        cfg.population as f64 / (timeout + think)
    } + cfg.open_per_sec;
    let deep_enough = cfg.queue_cap as f64 > cfg.service_rate * timeout;
    collapsed_rate >= cfg.service_rate && deep_enough
}

/// Classifies one run: measures the baseline, detects sustained
/// post-trigger collapse, finds the recovery point, and combines with
/// the fluid-model prediction into a [`Regime`].
pub fn assess(cfg: &Config, trace: &RunTrace, params: &OracleParams) -> Assessment {
    let per_sec = trace.goodput_per_sec();
    let trigger_secs = trace.degraded_secs();
    let baseline_window: Vec<u64> = match trigger_secs {
        Some((first, _)) => {
            per_sec.iter().copied().take(first as usize).skip(params.warmup_secs as usize).collect()
        }
        None => per_sec.iter().copied().skip(params.warmup_secs as usize).collect(),
    };
    let baseline_per_sec = if baseline_window.is_empty() {
        0.0
    } else {
        baseline_window.iter().sum::<u64>() as f64 / baseline_window.len() as f64
    };

    let mut collapsed_secs_post = 0;
    let mut recovery_secs = None;
    if let Some((_, last)) = trigger_secs {
        let post_start = (last + 1) as usize;
        let collapse_at = params.collapse_frac * baseline_per_sec;
        for &g in per_sec.iter().skip(post_start) {
            if (g as f64) < collapse_at {
                collapsed_secs_post += 1;
            } else {
                break;
            }
        }
        let recover_at = params.recover_frac * baseline_per_sec;
        let post: Vec<u64> = per_sec.iter().copied().skip(post_start).collect();
        let dwell = params.recover_dwell_secs as usize;
        if dwell > 0 && post.len() >= dwell {
            for (i, w) in post.windows(dwell).enumerate() {
                if w.iter().all(|&g| g as f64 >= recover_at) {
                    recovery_secs = Some(i as u64);
                    break;
                }
            }
        }
    }

    let predicted_vulnerable = predict_vulnerable(cfg);
    let sustained = match trigger_secs {
        Some((first, last)) => {
            let span = last - first + 1;
            collapsed_secs_post >= params.sustain_mult * span
        }
        None => false,
    };
    let regime = if sustained {
        Regime::Metastable
    } else if predicted_vulnerable {
        Regime::Vulnerable
    } else {
        Regime::Stable
    };
    Assessment {
        baseline_per_sec,
        trigger_secs,
        collapsed_secs_post,
        recovery_secs,
        predicted_vulnerable,
        regime,
    }
}

/// Request- and client-conservation audit over the run totals.
pub fn check_conservation(cfg: &Config, trace: &RunTrace) -> Result<(), Violation> {
    let t = &trace.totals;
    let issued = t.issued_fresh + t.issued_retry + t.issued_open;
    let rejected = t.rejected_breaker + t.rejected_shed + t.rejected_cap;
    if issued != t.admitted + rejected {
        return Err(Violation::new(
            "meta-conservation",
            format!("issued {issued} != admitted {} + rejected {rejected}", t.admitted),
        ));
    }
    let drained = t.served_live
        + t.served_open
        + t.served_orphan
        + t.dropped_expired
        + t.queue_live_end
        + t.queue_open_end
        + t.queue_orphan_end;
    if t.admitted != drained {
        return Err(Violation::new(
            "meta-conservation",
            format!("admitted {} != dispositions {drained}", t.admitted),
        ));
    }
    let orphans = t.served_orphan + t.dropped_expired + t.queue_orphan_end;
    if t.timeouts + t.open_timeouts != orphans {
        return Err(Violation::new(
            "meta-conservation",
            format!(
                "timeouts {} + open {} != orphan dispositions {orphans}",
                t.timeouts, t.open_timeouts
            ),
        ));
    }
    if t.retries_scheduled != t.issued_retry + t.backoff_end {
        return Err(Violation::new(
            "meta-conservation",
            format!(
                "retries scheduled {} != issued {} + pending {}",
                t.retries_scheduled, t.issued_retry, t.backoff_end
            ),
        ));
    }
    let clients = t.queue_live_end + t.backoff_end + t.think_end;
    if cfg.population != clients {
        return Err(Violation::new(
            "meta-conservation",
            format!("population {} != accounted clients {clients}", cfg.population),
        ));
    }
    Ok(())
}

/// Served work never exceeds the capacity that was actually available.
pub fn check_capacity(trace: &RunTrace) -> Result<(), Violation> {
    let t = &trace.totals;
    let served = (t.served_live + t.served_open + t.served_orphan) as f64;
    if served > t.capacity_credit + 1.0 {
        return Err(Violation::new(
            "meta-capacity",
            format!("served {served} requests with only {:.1} credit accrued", t.capacity_credit),
        ));
    }
    Ok(())
}

/// Without a trigger the run must not collapse (baseline load is
/// feasible by construction, so collapse would mean the engine itself
/// leaks demand).
pub fn check_no_trigger_stable(a: &Assessment) -> Result<(), Violation> {
    if a.trigger_secs.is_none() && (a.regime == Regime::Metastable || a.collapsed_secs_post > 0) {
        return Err(Violation::new(
            "meta-no-trigger-stable",
            format!("collapse with no trigger: {a:?}"),
        ));
    }
    Ok(())
}

/// Sound direction of the fluid model: an observed sustained collapse
/// must have been predicted possible.
pub fn check_prediction(a: &Assessment) -> Result<(), Violation> {
    if a.regime == Regime::Metastable && !a.predicted_vulnerable {
        return Err(Violation::new(
            "meta-prediction",
            format!(
                "sustained collapse in a configuration predicted invulnerable \
                 (baseline {:.1}/s, collapsed {} s post-trigger)",
                a.baseline_per_sec, a.collapsed_secs_post
            ),
        ));
    }
    Ok(())
}

/// A mitigated run must return to the stable regime within the deadline
/// of the trigger being removed (vacuous without a trigger or without a
/// measurable baseline).
pub fn check_mitigation_recovers(a: &Assessment, params: &OracleParams) -> Result<(), Violation> {
    if a.trigger_secs.is_none() || a.baseline_per_sec <= 0.0 {
        return Ok(());
    }
    let deadline = params.recovery_deadline.as_secs_f64();
    match a.recovery_secs {
        Some(r) if (r as f64) <= deadline => Ok(()),
        got => Err(Violation::new(
            "meta-recovery",
            format!("mitigated run recovered at {got:?} s post-trigger, deadline {deadline} s"),
        )),
    }
}

/// A mitigation must break the sustaining loop: where the unmitigated
/// run sticks in the collapsed state, the mitigated one must not.
pub fn check_mitigation_effective(
    unmitigated: &Assessment,
    mitigated: &Assessment,
) -> Result<(), Violation> {
    if unmitigated.regime == Regime::Metastable && mitigated.regime == Regime::Metastable {
        return Err(Violation::new(
            "meta-mitigation",
            format!(
                "mitigation failed to break the loop: unmitigated {unmitigated:?} vs \
                 mitigated {mitigated:?}"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Backoff, BudgetConfig, RetryPolicy};
    use crate::policy::{Mitigation, ShedConfig};
    use simcore::rng::Stream;
    use simcore::time::SimTime;
    use stutter::injector::SlowdownProfile;

    /// A vulnerable-by-design configuration small enough for unit tests:
    /// stable utilisation ≈ 0.67, collapsed demand ≈ 1.2× capacity.
    fn vulnerable_cfg() -> Config {
        Config {
            population: 1_300,
            think: SimDuration::from_secs(10),
            policy: RetryPolicy {
                timeout: SimDuration::from_secs(1),
                max_attempts: 3,
                backoff: Backoff::Exponential {
                    base: SimDuration::from_millis(500),
                    cap: SimDuration::from_secs(2),
                },
            },
            budget: None,
            service_rate: 200.0,
            queue_cap: 2_000,
            dt: SimDuration::from_millis(50),
            horizon: SimDuration::from_secs(450),
            open_per_sec: 0.0,
            initial_burst: false,
        }
    }

    fn outage_trigger() -> SlowdownProfile {
        SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(60), 0.0),
            (SimTime::from_secs(90), 1.0),
        ])
    }

    #[test]
    fn prediction_matches_design() {
        let cfg = vulnerable_cfg();
        assert!(predict_vulnerable(&cfg));
        // Budgeted retries choke the storm below capacity.
        let budgeted = Config { budget: Some(BudgetConfig { floor: 10.0, ratio: 0.1 }), ..cfg };
        assert!(!predict_vulnerable(&budgeted));
        // A shallow queue cannot hold the head past the timeout.
        assert!(!predict_vulnerable(&Config { queue_cap: 100, ..cfg }));
        // No retries, longer effective cycle: not vulnerable.
        let no_retry = Config { policy: RetryPolicy { max_attempts: 1, ..cfg.policy }, ..cfg };
        assert!(!predict_vulnerable(&no_retry));
    }

    #[test]
    fn unmitigated_outage_sticks_and_classifies_metastable() {
        let cfg = vulnerable_cfg();
        let mut rng = Stream::from_seed(3).derive("meta-oracle-test-unmit");
        let tr = crate::engine::run(&cfg, &outage_trigger(), Mitigation::None, &mut rng);
        let a = assess(&cfg, &tr, &OracleParams::default());
        assert_eq!(a.regime, Regime::Metastable, "assessment: {a:?}");
        check_conservation(&cfg, &tr).expect("conservation");
        check_capacity(&tr).expect("capacity");
        check_prediction(&a).expect("prediction agreement");
        // Collapse outlives the trigger by >= 10x its span.
        assert!(a.collapsed_secs_post >= 10 * 30, "collapsed only {} s", a.collapsed_secs_post);
    }

    #[test]
    fn shedding_restores_stable_within_deadline() {
        let cfg = vulnerable_cfg();
        let shed = Mitigation::Shed(ShedConfig { max_depth: 100, drop_expired: true });
        let mut rng = Stream::from_seed(3).derive("meta-oracle-test-shed");
        let tr = crate::engine::run(&cfg, &outage_trigger(), shed, &mut rng);
        let a = assess(&cfg, &tr, &OracleParams::default());
        check_conservation(&cfg, &tr).expect("conservation");
        check_mitigation_recovers(&a, &OracleParams::default()).expect("recovery");
        assert_ne!(a.regime, Regime::Metastable);
    }

    #[test]
    fn no_trigger_run_is_not_collapsed() {
        let cfg = vulnerable_cfg();
        let mut rng = Stream::from_seed(3).derive("meta-oracle-test-quiet");
        let tr = crate::engine::run(&cfg, &SlowdownProfile::nominal(), Mitigation::None, &mut rng);
        let a = assess(&cfg, &tr, &OracleParams::default());
        check_no_trigger_stable(&a).expect("no-trigger stability");
        assert_eq!(a.regime, Regime::Vulnerable, "vulnerable config, healthy run: {a:?}");
    }
}
