//! Versioned performance-state entries and the per-node store.
//!
//! Each entry carries one component's exported [`HealthState`] plus the
//! observed rate behind it, stamped by the *origin* node that watched the
//! component, a monotone per-origin sequence number, and the observation
//! time. Entries are **single-writer**: only the origin ever mints new
//! versions of its components' entries, so "newer" is simply "higher
//! sequence number" and merges need no vector clocks.
//!
//! A [`HealthState::Failed`] entry is a **tombstone**: fail-stop is
//! permanent (paper §3.1 threshold rule — beyond `T` the component is
//! absolutely failed), so the origin stops publishing after it and no
//! later entry may overwrite it.

use simcore::time::SimTime;
use stutter::fault::{ComponentId, HealthState};

use std::collections::BTreeMap;

/// Identifies a plane node (an observer/consumer of performance state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One versioned performance-state fact about one component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthEntry {
    /// The component this entry describes.
    pub component: ComponentId,
    /// The node that observed the component and minted this version.
    pub origin: NodeId,
    /// Monotone per-`(origin, component)` version; higher is fresher.
    pub seq: u64,
    /// The exported health classification at the origin.
    pub state: HealthState,
    /// The origin's smoothed observed rate (units/second) behind the
    /// classification; what staleness-aware consumers actually plan with.
    pub rate: f64,
    /// When the origin made the observation. A view's *age* is measured
    /// from here, so propagation delay counts as staleness.
    pub observed_at: SimTime,
}

impl HealthEntry {
    /// True if this entry is a fail-stop tombstone.
    pub fn is_tombstone(&self) -> bool {
        matches!(self.state, HealthState::Failed)
    }
}

/// A node's local copy of the plane: latest entry per component, plus the
/// full accepted-update history (arrival time, entry) that staleness views
/// replay.
#[derive(Clone, Debug, Default)]
pub struct Store {
    entries: BTreeMap<ComponentId, HealthEntry>,
    history: BTreeMap<ComponentId, Vec<(SimTime, HealthEntry)>>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Merges one entry received (or locally produced) at `now`.
    ///
    /// Accepts iff the entry is strictly fresher than what the store
    /// holds; tombstones are terminal — once a component is failed no
    /// entry replaces it (single-writer sequencing makes a fresher
    /// non-failed entry after a tombstone impossible, and this guards the
    /// invariant against any buggy sender). Returns whether the entry was
    /// accepted.
    pub fn merge(&mut self, now: SimTime, entry: HealthEntry) -> bool {
        match self.entries.get(&entry.component) {
            Some(existing) if existing.is_tombstone() => return false,
            Some(existing) if entry.seq <= existing.seq => return false,
            _ => {}
        }
        self.entries.insert(entry.component, entry);
        self.history.entry(entry.component).or_default().push((now, entry));
        true
    }

    /// The freshest entry for a component, if any version has arrived.
    pub fn get(&self, component: ComponentId) -> Option<&HealthEntry> {
        self.entries.get(&component)
    }

    /// All freshest entries, ordered by component — the gossip payload.
    pub fn snapshot(&self) -> Vec<HealthEntry> {
        self.entries.values().copied().collect()
    }

    /// Entries strictly fresher here than in `theirs` (or absent there) —
    /// the pull half of a push-pull exchange.
    pub fn fresher_than(&self, theirs: &[HealthEntry]) -> Vec<HealthEntry> {
        let their_seq: BTreeMap<ComponentId, u64> =
            theirs.iter().map(|e| (e.component, e.seq)).collect();
        self.entries
            .values()
            .filter(|e| their_seq.get(&e.component).is_none_or(|&s| e.seq > s))
            .copied()
            .collect()
    }

    /// The accepted-update history for a component, in arrival order.
    pub fn history(&self, component: ComponentId) -> &[(SimTime, HealthEntry)] {
        self.history.get(&component).map_or(&[], Vec::as_slice)
    }

    /// Components with at least one entry.
    pub fn components(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.entries.keys().copied()
    }

    /// Moves the history out of the store (for building a view).
    pub fn into_history(self) -> BTreeMap<ComponentId, Vec<(SimTime, HealthEntry)>> {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn entry(seq: u64, state: HealthState) -> HealthEntry {
        HealthEntry {
            component: ComponentId(0),
            origin: NodeId(0),
            seq,
            state,
            rate: 10.0,
            observed_at: SimTime::ZERO + SimDuration::from_secs(seq),
        }
    }

    #[test]
    fn merge_keeps_only_fresher_versions() {
        let mut s = Store::new();
        assert!(s.merge(SimTime::ZERO, entry(2, HealthState::Healthy)));
        assert!(!s.merge(SimTime::ZERO, entry(2, HealthState::Healthy)), "equal seq rejected");
        assert!(!s.merge(SimTime::ZERO, entry(1, HealthState::Healthy)), "stale rejected");
        assert!(s.merge(SimTime::ZERO, entry(3, HealthState::PerfFaulty { severity: 0.5 })));
        assert_eq!(s.get(ComponentId(0)).unwrap().seq, 3);
        assert_eq!(s.history(ComponentId(0)).len(), 2);
    }

    #[test]
    fn tombstones_are_terminal() {
        let mut s = Store::new();
        assert!(s.merge(SimTime::ZERO, entry(5, HealthState::Failed)));
        assert!(!s.merge(SimTime::ZERO, entry(9, HealthState::Healthy)));
        assert!(s.get(ComponentId(0)).unwrap().is_tombstone());
    }

    #[test]
    fn fresher_than_implements_the_pull_half() {
        let mut a = Store::new();
        let mut b = Store::new();
        a.merge(SimTime::ZERO, entry(3, HealthState::Healthy));
        b.merge(SimTime::ZERO, entry(1, HealthState::Healthy));
        let mut other = entry(7, HealthState::Healthy);
        other.component = ComponentId(1);
        a.merge(SimTime::ZERO, other);

        let reply = a.fresher_than(&b.snapshot());
        assert_eq!(reply.len(), 2, "newer version and unknown component");
        assert!(a.fresher_than(&a.snapshot()).is_empty());
    }
}
