//! Model oracles for the performance-state plane.
//!
//! Each check takes a finished [`PlaneRun`] and returns the violations it
//! found (empty = pass), mirroring the three-valued oracle style of the
//! campaign harness:
//!
//! * [`check_convergence`] — with faults quiescent and the carrier alive,
//!   every node's view of every component settles on the origin's final
//!   class within an `O(log n)`-rounds allowance (eventual convergence of
//!   anti-entropy gossip).
//! * [`check_no_false_failstop`] — bounded stutter is never promoted to
//!   fail-stop: no tombstone exists anywhere for a component that did not
//!   truly exceed the paper's threshold `T`.
//! * [`check_monotone`] — per-node histories only move forward: arrival
//!   times non-decreasing, sequence numbers strictly increasing,
//!   tombstones terminal, and confidence decay monotone in age.
//! * [`check_plane_degraded`] — metamorphic: slowing the plane's own
//!   carrier must never *improve* a consumer's throughput.

use simcore::time::{SimDuration, SimTime};
use stutter::fault::HealthState;
use stutter::injector::SlowdownProfile;

use crate::gossip::PlaneRun;
use crate::view::StalenessConfig;

/// One oracle violation: which oracle fired and why.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the oracle that fired.
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

fn same_class(a: HealthState, b: HealthState) -> bool {
    matches!(
        (a, b),
        (HealthState::Healthy, HealthState::Healthy)
            | (HealthState::PerfFaulty { .. }, HealthState::PerfFaulty { .. })
            | (HealthState::Failed, HealthState::Failed)
    )
}

fn class_name(s: HealthState) -> &'static str {
    match s {
        HealthState::Healthy => "Healthy",
        HealthState::PerfFaulty { .. } => "PerfFaulty",
        HealthState::Failed => "Failed",
    }
}

/// The longest continuous zero-rate interval of a profile within the
/// horizon. A profile with an absolute failure inside the horizon outages
/// forever, reported as [`SimDuration::MAX`].
pub fn longest_outage(profile: &SlowdownProfile, horizon: SimDuration) -> SimDuration {
    let end = SimTime::ZERO + horizon;
    if profile.fail_at().is_some_and(|f| f <= end) {
        return SimDuration::MAX;
    }
    let segs = profile.segments();
    let mut longest = SimDuration::ZERO;
    let mut zero_start: Option<SimTime> = None;
    for (idx, &(start, m)) in segs.iter().enumerate() {
        if start >= end {
            break;
        }
        let seg_end = segs.get(idx + 1).map_or(end, |&(s, _)| s.min(end));
        if m <= 0.0 {
            let since = *zero_start.get_or_insert(start);
            longest = longest.max(seg_end.saturating_since(since));
        } else {
            zero_start = None;
        }
    }
    longest
}

/// Ceil(log2 n) for n ≥ 1.
fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

/// How long after quiescence the convergence oracle allows views to still
/// disagree: `2 · (ceil(log2 n) + 3)` gossip rounds (push-pull epidemic
/// dissemination plus generous slack for fanout collisions), one heartbeat
/// period, the registry persistence window, and any carrier outage the
/// caller knows about (`link_slack`, e.g. from [`longest_outage`] over the
/// link profiles).
pub fn convergence_allowance(run: &PlaneRun, link_slack: SimDuration) -> SimDuration {
    let rounds = 2 * (log2_ceil(run.nodes()) + 3);
    run.config.gossip_interval * rounds
        + run.config.refresh_interval
        + run.config.persistence
        + link_slack
}

/// The largest [`longest_outage`] across a spec's link timelines, or
/// `None` if some link is permanently dead within the horizon (in which
/// case convergence cannot be promised and the oracle should be skipped).
pub fn link_slack(
    profiles: &[Option<SlowdownProfile>],
    horizon: SimDuration,
) -> Option<SimDuration> {
    let mut slack = SimDuration::ZERO;
    for p in profiles.iter().flatten() {
        let outage = longest_outage(p, horizon);
        if outage == SimDuration::MAX {
            return None;
        }
        slack = slack.max(outage);
    }
    Some(slack)
}

/// Eventual convergence: for every component whose origin's exported class
/// was quiescent for at least `allowance` before the horizon, every node
/// must (a) hold an entry of that final class and (b) hold it at age at
/// most `refresh_interval + allowance`.
///
/// Callers must gate this on a carrier with no permanent link failures
/// (see [`link_slack`]); a partitioned plane legitimately diverges.
pub fn check_convergence(run: &PlaneRun, allowance: SimDuration) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (c, origin_view) in run.views.iter().enumerate() {
        let component = stutter::fault::ComponentId(c as u32);
        let publishes = origin_view.history(component);
        let Some(&(_, last)) = publishes.last() else { continue };
        // Quiescence check: when did the origin last *change class*?
        let settled_at = publishes
            .iter()
            .rev()
            .take_while(|(_, e)| same_class(e.state, last.state))
            .map(|&(at, _)| at)
            .last()
            .unwrap_or(SimTime::ZERO);
        if run.end.saturating_since(settled_at) < allowance {
            continue; // still in the grey zone — no promise yet
        }
        for (i, view) in run.views.iter().enumerate() {
            match view.entry_at(component, run.end) {
                None => violations.push(Violation {
                    oracle: "plane/convergence",
                    detail: format!("node {i} never heard of component {c}"),
                }),
                Some(e) => {
                    if !same_class(e.state, last.state) {
                        violations.push(Violation {
                            oracle: "plane/convergence",
                            detail: format!(
                                "node {i} sees component {c} as {} but origin settled on {}",
                                class_name(e.state),
                                class_name(last.state)
                            ),
                        });
                    }
                    let age = run.end.saturating_since(e.observed_at);
                    let bound = run.config.refresh_interval + allowance;
                    if !e.is_tombstone() && age > bound {
                        violations.push(Violation {
                            oracle: "plane/convergence",
                            detail: format!(
                                "node {i}'s entry for component {c} is {:.1}s old (bound {:.1}s)",
                                age.as_secs_f64(),
                                bound.as_secs_f64()
                            ),
                        });
                    }
                }
            }
        }
    }
    violations
}

/// No false fail-stop: a component that never truly exceeded the threshold
/// `T` must have no tombstone anywhere in the plane — regardless of how
/// badly the carrier stuttered. Holds unconditionally because only the
/// origin's own zero-run clock can mint a tombstone.
pub fn check_no_false_failstop(run: &PlaneRun) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (i, view) in run.views.iter().enumerate() {
        for component in view.components() {
            if run.truly_failed.get(component.0 as usize).copied().unwrap_or(false) {
                continue;
            }
            if view.history(component).iter().any(|(_, e)| e.is_tombstone()) {
                violations.push(Violation {
                    oracle: "plane/no-false-fail-stop",
                    detail: format!(
                        "node {i} holds a tombstone for component {component} that never failed"
                    ),
                });
            }
        }
    }
    violations
}

/// Monotone staleness: accepted histories only move forward (arrival times
/// non-decreasing, sequence numbers strictly increasing, nothing after a
/// tombstone), and the staleness confidence function is monotone
/// non-increasing in age.
pub fn check_monotone(run: &PlaneRun) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (i, view) in run.views.iter().enumerate() {
        for component in view.components() {
            let h = view.history(component);
            for w in h.windows(2) {
                let (at_a, a) = w[0];
                let (at_b, b) = w[1];
                if at_b < at_a {
                    violations.push(Violation {
                        oracle: "plane/monotone-staleness",
                        detail: format!(
                            "node {i} history for {component} goes backwards in arrival time"
                        ),
                    });
                }
                if b.seq <= a.seq {
                    violations.push(Violation {
                        oracle: "plane/monotone-staleness",
                        detail: format!(
                            "node {i} accepted seq {} after {} for {component}",
                            b.seq, a.seq
                        ),
                    });
                }
                if a.is_tombstone() {
                    violations.push(Violation {
                        oracle: "plane/monotone-staleness",
                        detail: format!(
                            "node {i} accepted an entry after a tombstone for {component}"
                        ),
                    });
                }
            }
        }
    }
    violations.extend(check_confidence_decay(run.config.staleness));
    violations
}

fn check_confidence_decay(staleness: StalenessConfig) -> Vec<Violation> {
    let ages: Vec<SimDuration> = (0..=8).map(|k| SimDuration::from_secs(k * 15)).collect();
    let mut violations = Vec::new();
    for w in ages.windows(2) {
        let (c0, c1) = (staleness.confidence_at(w[0]), staleness.confidence_at(w[1]));
        if c1 > c0 || !c0.is_finite() || !(0.0..=1.0).contains(&c0) {
            violations.push(Violation {
                oracle: "plane/monotone-staleness",
                detail: format!(
                    "confidence not monotone in [0,1]: {:.3} at {:?} vs {:.3} at {:?}",
                    c0, w[0], c1, w[1]
                ),
            });
        }
    }
    violations
}

/// Metamorphic plane-degraded check: a consumer driven by a *slower*
/// plane must not do better than the same consumer on the fresh plane
/// (beyond `tolerance`, a small fraction allowing for benign tie-breaks).
pub fn check_plane_degraded(
    fresh_throughput: f64,
    degraded_throughput: f64,
    tolerance: f64,
) -> Vec<Violation> {
    if degraded_throughput <= fresh_throughput * (1.0 + tolerance) {
        return Vec::new();
    }
    vec![Violation {
        oracle: "plane/degraded-never-helps",
        detail: format!(
            "degraded plane got {degraded_throughput:.0} u/s vs {fresh_throughput:.0} fresh"
        ),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip::{run_plane, PlaneConfig, PlaneSpec};
    use simcore::rng::Stream;

    fn drifting_spec(n: usize) -> PlaneSpec {
        let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), n, 10e6);
        spec.components[0].profile = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(60), 0.4),
        ]);
        spec
    }

    #[test]
    fn longest_outage_walks_segments() {
        let p = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(10), 0.0),
            (SimTime::from_secs(13), 0.0),
            (SimTime::from_secs(25), 1.0),
            (SimTime::from_secs(40), 0.0),
            (SimTime::from_secs(45), 1.0),
        ]);
        assert_eq!(longest_outage(&p, SimDuration::from_secs(600)), SimDuration::from_secs(15));
        // Truncated by the horizon.
        assert_eq!(longest_outage(&p, SimDuration::from_secs(20)), SimDuration::from_secs(10));
        // Absolute failure dominates everything.
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(5));
        assert_eq!(longest_outage(&dead, SimDuration::from_secs(600)), SimDuration::MAX);
        assert_eq!(
            longest_outage(&SlowdownProfile::nominal(), SimDuration::from_secs(600)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn quiescent_drift_converges_within_allowance() {
        for n in [3usize, 6, 10] {
            let spec = drifting_spec(n);
            let run = run_plane(&spec, &mut Stream::from_seed(n as u64));
            let slack = link_slack(&spec.link_profiles, spec.config.horizon).unwrap();
            let allowance = convergence_allowance(&run, slack);
            let v = check_convergence(&run, allowance);
            assert!(v.is_empty(), "n={n}: {:?}", v);
            assert!(check_no_false_failstop(&run).is_empty());
            assert!(check_monotone(&run).is_empty());
        }
    }

    #[test]
    fn convergence_oracle_fires_on_a_cooked_divergence() {
        let spec = drifting_spec(4);
        let mut run = run_plane(&spec, &mut Stream::from_seed(3));
        // Forge a node that never heard about component 0.
        run.views[2] = crate::view::StalenessView::new(Default::default(), spec.config.staleness);
        let allowance = convergence_allowance(&run, SimDuration::ZERO);
        let v = check_convergence(&run, allowance);
        assert!(v.iter().any(|v| v.detail.contains("never heard")), "{v:?}");
    }

    #[test]
    fn link_slack_reports_outages_and_refuses_dead_links() {
        let horizon = SimDuration::from_secs(600);
        let flaky = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(100), 0.0),
            (SimTime::from_secs(120), 1.0),
        ]);
        let profiles = vec![None, Some(flaky)];
        assert_eq!(link_slack(&profiles, horizon), Some(SimDuration::from_secs(20)));
        let dead = vec![Some(SlowdownProfile::nominal().with_failure_at(SimTime::ZERO))];
        assert_eq!(link_slack(&dead, horizon), None);
    }

    #[test]
    fn degraded_check_only_fires_when_slower_plane_wins() {
        assert!(check_plane_degraded(100.0, 90.0, 0.05).is_empty());
        assert!(check_plane_degraded(100.0, 104.0, 0.05).is_empty());
        assert!(!check_plane_degraded(100.0, 120.0, 0.05).is_empty());
    }
}
