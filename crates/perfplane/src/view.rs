//! Staleness-aware consumer views over gossiped performance state.
//!
//! A consumer never sees the plane's transport; it queries a
//! [`StalenessView`] and gets back *state + age + confidence*. The decay
//! rule is the plane's defence against the metastable-failure trap of
//! trusting health signals forever: a `PerfFaulty` or `Ok` entry older
//! than the staleness bound demotes to [`PlaneState::Unknown`], and
//! confidence decays exponentially with age so consumers can hedge before
//! the hard cutoff. Fail-stop tombstones never decay — a component that
//! absolutely failed stays failed (paper §3.1).

use simcore::time::{SimDuration, SimTime};
use stutter::fault::{ComponentId, HealthState};

use crate::entry::HealthEntry;

use std::collections::BTreeMap;

/// How a view translates entry age into trust.
#[derive(Clone, Copy, Debug)]
pub struct StalenessConfig {
    /// Entries older than this demote to [`PlaneState::Unknown`]
    /// (tombstones excepted).
    pub stale_after: SimDuration,
    /// Confidence halves every `half_life` of age.
    pub half_life: SimDuration,
}

impl Default for StalenessConfig {
    fn default() -> Self {
        StalenessConfig {
            stale_after: SimDuration::from_secs(60),
            half_life: SimDuration::from_secs(30),
        }
    }
}

impl StalenessConfig {
    /// The confidence assigned to an entry of the given age: `0.5^(age /
    /// half_life)`, monotone non-increasing in age, 1.0 at age zero.
    pub fn confidence_at(&self, age: SimDuration) -> f64 {
        let h = self.half_life.as_secs_f64();
        if h <= 0.0 {
            return if age == SimDuration::ZERO { 1.0 } else { 0.0 };
        }
        0.5f64.powf(age.as_secs_f64() / h)
    }
}

/// What a consumer knows about a component's health.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlaneState {
    /// A sufficiently fresh entry exists (or a tombstone, which is
    /// forever).
    Known(HealthState),
    /// No entry has arrived, or the freshest one aged out.
    Unknown,
}

/// One staleness-aware answer: state, how old the evidence is, and how
/// much to trust it.
#[derive(Clone, Copy, Debug)]
pub struct PlaneView {
    /// The (possibly demoted) state.
    pub state: PlaneState,
    /// Time since the underlying observation was made at its origin
    /// (propagation delay included). `SimDuration::MAX` when nothing has
    /// ever arrived.
    pub age: SimDuration,
    /// `0.5^(age/half_life)` for known entries, 0.0 for never-heard-of,
    /// 1.0 for tombstones.
    pub confidence: f64,
    /// The origin's observed rate, when a fresh entry is known.
    pub rate: Option<f64>,
}

impl PlaneView {
    fn unknown(age: SimDuration, confidence: f64) -> Self {
        PlaneView { state: PlaneState::Unknown, age, confidence, rate: None }
    }
}

/// One node's queryable history of accepted plane updates.
///
/// Built from a [`crate::entry::Store`] after a gossip run; `query` is a
/// pure function of `(component, now)`, so consumers can replay any
/// decision instant.
#[derive(Clone, Debug)]
pub struct StalenessView {
    histories: BTreeMap<ComponentId, Vec<(SimTime, HealthEntry)>>,
    staleness: StalenessConfig,
}

impl StalenessView {
    /// Wraps an accepted-update history under a staleness policy.
    pub fn new(
        histories: BTreeMap<ComponentId, Vec<(SimTime, HealthEntry)>>,
        staleness: StalenessConfig,
    ) -> Self {
        StalenessView { histories, staleness }
    }

    /// The staleness policy in force.
    pub fn staleness(&self) -> StalenessConfig {
        self.staleness
    }

    /// The raw freshest entry that had arrived by `now`, if any.
    pub fn entry_at(&self, component: ComponentId, now: SimTime) -> Option<&HealthEntry> {
        let h = self.histories.get(&component)?;
        h.iter().rev().find(|(arrival, _)| *arrival <= now).map(|(_, e)| e)
    }

    /// The full accepted-update history for a component.
    pub fn history(&self, component: ComponentId) -> &[(SimTime, HealthEntry)] {
        self.histories.get(&component).map_or(&[], Vec::as_slice)
    }

    /// Components this node has ever heard about.
    pub fn components(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.histories.keys().copied()
    }

    /// What this node believed about `component` at instant `now`.
    pub fn query(&self, component: ComponentId, now: SimTime) -> PlaneView {
        let Some(e) = self.entry_at(component, now) else {
            return PlaneView::unknown(SimDuration::MAX, 0.0);
        };
        let age = now.saturating_since(e.observed_at);
        if e.is_tombstone() {
            // Fail-stop is permanent: tombstones never decay.
            return PlaneView {
                state: PlaneState::Known(HealthState::Failed),
                age,
                confidence: 1.0,
                rate: Some(0.0),
            };
        }
        let confidence = self.staleness.confidence_at(age);
        if age > self.staleness.stale_after {
            return PlaneView::unknown(age, confidence);
        }
        PlaneView { state: PlaneState::Known(e.state), age, confidence, rate: Some(e.rate) }
    }

    /// The rate a consumer should plan with at `now`: the gossiped rate
    /// when fresh, 0.0 for a tombstone, `fallback` (typically the
    /// component's nominal spec rate) when unknown or aged out.
    pub fn estimated_rate(&self, component: ComponentId, now: SimTime, fallback: f64) -> f64 {
        match self.query(component, now) {
            PlaneView { state: PlaneState::Known(HealthState::Failed), .. } => 0.0,
            PlaneView { state: PlaneState::Known(_), rate: Some(r), .. } => r,
            _ => fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::NodeId;

    fn entry(seq: u64, state: HealthState, observed_at: SimTime) -> HealthEntry {
        HealthEntry {
            component: ComponentId(0),
            origin: NodeId(0),
            seq,
            state,
            rate: 7.0,
            observed_at,
        }
    }

    fn view(history: Vec<(SimTime, HealthEntry)>) -> StalenessView {
        let mut m = BTreeMap::new();
        m.insert(ComponentId(0), history);
        StalenessView::new(
            m,
            StalenessConfig {
                stale_after: SimDuration::from_secs(60),
                half_life: SimDuration::from_secs(30),
            },
        )
    }

    #[test]
    fn never_heard_of_is_unknown() {
        let v = view(Vec::new());
        let q = v.query(ComponentId(0), SimTime::from_secs(10));
        assert_eq!(q.state, PlaneState::Unknown);
        assert_eq!(q.confidence, 0.0);
        assert_eq!(v.estimated_rate(ComponentId(0), SimTime::from_secs(10), 42.0), 42.0);
    }

    #[test]
    fn fresh_entries_are_known_and_decay_monotonically() {
        let v = view(vec![(
            SimTime::from_secs(5),
            entry(1, HealthState::Healthy, SimTime::from_secs(4)),
        )]);
        let early = v.query(ComponentId(0), SimTime::from_secs(10));
        let late = v.query(ComponentId(0), SimTime::from_secs(40));
        assert!(matches!(early.state, PlaneState::Known(HealthState::Healthy)));
        // Age counts from the origin's observation, not local arrival.
        assert_eq!(early.age, SimDuration::from_secs(6));
        assert!(early.confidence > late.confidence, "confidence must decay with age");
        assert_eq!(v.estimated_rate(ComponentId(0), SimTime::from_secs(10), 42.0), 7.0);
    }

    #[test]
    fn stale_entries_demote_to_unknown() {
        let v = view(vec![(
            SimTime::from_secs(5),
            entry(1, HealthState::PerfFaulty { severity: 0.5 }, SimTime::from_secs(4)),
        )]);
        let q = v.query(ComponentId(0), SimTime::from_secs(100));
        assert_eq!(q.state, PlaneState::Unknown);
        assert!(q.confidence < 0.2, "96 s at a 30 s half-life");
        assert_eq!(v.estimated_rate(ComponentId(0), SimTime::from_secs(100), 42.0), 42.0);
    }

    #[test]
    fn tombstones_never_decay() {
        let v = view(vec![(
            SimTime::from_secs(5),
            entry(1, HealthState::Failed, SimTime::from_secs(4)),
        )]);
        let q = v.query(ComponentId(0), SimTime::from_secs(10_000));
        assert!(matches!(q.state, PlaneState::Known(HealthState::Failed)));
        assert_eq!(q.confidence, 1.0);
        assert_eq!(v.estimated_rate(ComponentId(0), SimTime::from_secs(10_000), 42.0), 0.0);
    }

    #[test]
    fn query_is_time_travel_safe() {
        // Two versions; a query between the arrivals sees only the first.
        let v = view(vec![
            (SimTime::from_secs(5), entry(1, HealthState::Healthy, SimTime::from_secs(4))),
            (
                SimTime::from_secs(20),
                entry(2, HealthState::PerfFaulty { severity: 0.3 }, SimTime::from_secs(18)),
            ),
        ]);
        let between = v.query(ComponentId(0), SimTime::from_secs(10));
        assert!(matches!(between.state, PlaneState::Known(HealthState::Healthy)));
        let after = v.query(ComponentId(0), SimTime::from_secs(21));
        assert!(matches!(after.state, PlaneState::Known(HealthState::PerfFaulty { .. })));
    }
}
