//! Push-pull anti-entropy dissemination of performance state.
//!
//! Every node locally watches one component (its own disk, NIC, or CPU —
//! the paper's "each component monitors itself" reading of §3.1) through
//! the same pipeline the single-process registry uses: raw rate samples,
//! EWMA smoothing, a peer-relative classification round (no a-priori spec
//! needed — [`stutter::detect::PeerRelativeDetector`] compares the node
//! against the rates the plane itself has gossiped), and a
//! [`stutter::registry::Registry`] persistence filter. Exported edges mint
//! new versioned entries; a heartbeat republish keeps ages bounded.
//!
//! Dissemination is classic push-pull gossip: every `gossip_interval` each
//! node pushes its full digest to `fanout` random peers over
//! [`netsim::mesh::Mesh`] links; a receiver merges what is fresher and
//! replies with what *it* knows that the sender does not. Because the
//! carrier is made of ordinary [`netsim::link::Link`]s, the plane itself
//! can stutter: slow links delay convergence, dead links partition it —
//! and the oracles in [`crate::oracle`] pin down exactly what consumers
//! may still assume.
//!
//! The absolute-failure rule is the paper's threshold `T`
//! ([`PlaneConfig::fail_threshold`]): only a component observed at zero
//! rate continuously for `T` is declared failed and tombstoned. A slow or
//! black-holed *link* can therefore never fabricate a fail-stop — the
//! no-false-fail-stop oracle holds by construction.

use simcore::rng::Stream;
use simcore::sim::{Scheduler, Simulation};
use simcore::stats::Ewma;
use simcore::time::{SimDuration, SimTime};
use stutter::detect::PeerRelativeDetector;
use stutter::fault::{ComponentId, HealthState};
use stutter::injector::SlowdownProfile;
use stutter::registry::Registry;

use netsim::mesh::Mesh;

use crate::entry::{HealthEntry, NodeId, Store};
use crate::oracle::longest_outage;
use crate::view::{StalenessConfig, StalenessView};

/// Tunables of one plane deployment.
#[derive(Clone, Debug)]
pub struct PlaneConfig {
    /// Peers each node pushes to per gossip round.
    pub fanout: usize,
    /// Time between gossip rounds.
    pub gossip_interval: SimDuration,
    /// Time between local rate observations.
    pub observe_interval: SimDuration,
    /// Heartbeat republish period: bounds entry age while healthy.
    pub refresh_interval: SimDuration,
    /// The paper's threshold `T`: a component at zero rate for this long
    /// is absolutely failed and tombstoned.
    pub fail_threshold: SimDuration,
    /// Registry persistence window for class-change exports.
    pub persistence: SimDuration,
    /// Peer-relative fault fraction (below `fraction · median` is faulty).
    pub peer_fraction: f64,
    /// EWMA smoothing factor for local observations.
    pub ewma_alpha: f64,
    /// Gossip carrier link rate, bytes/second.
    pub link_rate: f64,
    /// Gossip carrier propagation latency.
    pub link_latency: SimDuration,
    /// Serialised bytes per digest entry (plus a fixed 64-byte header).
    pub entry_bytes: u64,
    /// How long the plane runs.
    pub horizon: SimDuration,
    /// Staleness policy handed to consumer views.
    pub staleness: StalenessConfig,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            fanout: 2,
            gossip_interval: SimDuration::from_secs(2),
            observe_interval: SimDuration::from_secs(1),
            refresh_interval: SimDuration::from_secs(10),
            fail_threshold: SimDuration::from_secs(30),
            persistence: SimDuration::from_secs(5),
            peer_fraction: 0.75,
            ewma_alpha: 0.3,
            link_rate: 1e6,
            link_latency: SimDuration::from_millis(1),
            entry_bytes: 64,
            horizon: SimDuration::from_secs(600),
            staleness: StalenessConfig::default(),
        }
    }
}

/// One component under observation: node `i` watches component `i`.
#[derive(Clone, Debug)]
pub struct ObservedComponent {
    /// Nominal (spec) rate in units/second.
    pub nominal: f64,
    /// The injected truth the node samples.
    pub profile: SlowdownProfile,
}

/// A full plane deployment: config, observed truth, carrier timelines.
#[derive(Clone, Debug)]
pub struct PlaneSpec {
    /// Plane tunables.
    pub config: PlaneConfig,
    /// One observed component per node.
    pub components: Vec<ObservedComponent>,
    /// Optional fail-stutter timeline per directed link, indexed
    /// `from * n + to`.
    pub link_profiles: Vec<Option<SlowdownProfile>>,
}

impl PlaneSpec {
    /// A spec with `n` nodes all observing healthy components at
    /// `nominal`, over healthy links.
    pub fn homogeneous(config: PlaneConfig, n: usize, nominal: f64) -> Self {
        assert!(n >= 2, "a plane needs at least two nodes, got {n}");
        PlaneSpec {
            config,
            components: (0..n)
                .map(|_| ObservedComponent { nominal, profile: SlowdownProfile::nominal() })
                .collect(),
            link_profiles: vec![None; n * n],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.components.len()
    }

    /// Attaches a timeline to the directed gossip link `from → to`.
    pub fn set_link_profile(&mut self, from: usize, to: usize, profile: SlowdownProfile) {
        let n = self.nodes();
        assert!(from < n && to < n && from != to, "bad link ({from} -> {to})");
        let idx = from * n + to;
        self.link_profiles[idx] = Some(profile);
    }

    /// Gives **every** directed link the same timeline (the "the plane's
    /// own carrier stutters" scenario).
    pub fn set_all_link_profiles(&mut self, profile: &SlowdownProfile) {
        let n = self.nodes();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let idx = from * n + to;
                    self.link_profiles[idx] = Some(profile.clone());
                }
            }
        }
    }

    /// A copy of this spec with every link additionally slowed by
    /// `factor` — the degraded twin for the plane-degraded metamorphic
    /// oracle.
    pub fn degraded(&self, factor: f64) -> PlaneSpec {
        assert!(factor > 0.0 && factor <= 1.0, "degrade factor must be in (0,1], got {factor}");
        let slow = SlowdownProfile::from_breakpoints(vec![(SimTime::ZERO, factor)]);
        let n = self.nodes();
        let mut out = self.clone();
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let idx = from * n + to;
                let p = &mut out.link_profiles[idx];
                *p = Some(match p.take() {
                    Some(existing) => existing.compose(&slow),
                    None => slow.clone(),
                });
            }
        }
        out
    }
}

/// Transport and dissemination counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Push digests handed to the carrier.
    pub pushes_sent: u64,
    /// Push digests lost to permanently-dead links.
    pub pushes_dropped: u64,
    /// Pull replies handed to the carrier.
    pub replies_sent: u64,
    /// Digests delivered (pushes and replies).
    pub delivered: u64,
    /// Entries accepted by a merge anywhere.
    pub merges: u64,
    /// Entries minted by origins (edges, heartbeats, tombstones).
    pub local_publishes: u64,
    /// Fail-stop tombstones minted.
    pub tombstones: u64,
    /// Payload bytes accepted by the carrier.
    pub carrier_bytes: u64,
}

/// The outcome of one plane run: per-node staleness views plus metadata
/// the oracles need.
#[derive(Clone, Debug)]
pub struct PlaneRun {
    /// One queryable view per node, in node order.
    pub views: Vec<StalenessView>,
    /// Transport counters.
    pub stats: PlaneStats,
    /// Config echo (oracles derive the convergence allowance from it).
    pub config: PlaneConfig,
    /// Ground truth per component: did its profile actually fail-stop
    /// (zero rate for ≥ `fail_threshold`, or an absolute failure) within
    /// the horizon?
    pub truly_failed: Vec<bool>,
    /// End of the simulated window (`SimTime::ZERO + config.horizon`).
    pub end: SimTime,
}

impl PlaneRun {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.views.len()
    }
}

struct NodeState {
    store: Store,
    ewma: Ewma,
    registry: Registry,
    rng: Stream,
    zero_since: Option<SimTime>,
    next_seq: u64,
    tombstoned: bool,
}

struct SimState {
    cfg: PlaneConfig,
    components: Vec<ObservedComponent>,
    detector: PeerRelativeDetector,
    mesh: Mesh,
    nodes: Vec<NodeState>,
    stats: PlaneStats,
}

impl SimState {
    fn publish(&mut self, i: usize, now: SimTime, state: HealthState, rate: f64) {
        let node = &mut self.nodes[i];
        node.next_seq += 1;
        let entry = HealthEntry {
            component: ComponentId(i as u32),
            origin: NodeId(i as u32),
            seq: node.next_seq,
            state,
            rate,
            observed_at: now,
        };
        if node.store.merge(now, entry) {
            self.stats.local_publishes += 1;
            if entry.is_tombstone() {
                self.stats.tombstones += 1;
                node.tombstoned = true;
            }
        }
    }

    fn observe(&mut self, i: usize, now: SimTime) {
        if self.nodes[i].tombstoned {
            return;
        }
        let comp = &self.components[i];
        let raw = comp.nominal * comp.profile.multiplier_at(now);
        self.nodes[i].ewma.observe(raw);
        let smoothed = self.nodes[i].ewma.value_or(0.0);

        let verdict = if raw <= 0.0 {
            // Below the threshold `T` a silent device is still only
            // *suspect*; at `T` it is absolutely failed (paper §3.1).
            let since = *self.nodes[i].zero_since.get_or_insert(now);
            (now.saturating_since(since) >= self.cfg.fail_threshold).then_some(HealthState::Failed)
        } else {
            self.nodes[i].zero_since = None;
            (smoothed > 0.0).then(|| {
                // Peer-relative round: own smoothed rate first, then the
                // peer rates the plane itself has delivered so far.
                let mut rates = vec![smoothed];
                for e in self.nodes[i].store.snapshot() {
                    if e.component != ComponentId(i as u32) && !e.is_tombstone() && e.rate > 0.0 {
                        rates.push(e.rate);
                    }
                }
                self.detector.classify_round(&rates)[0]
            })
        };
        let Some(verdict) = verdict else { return };
        if let Some(n) = self.nodes[i].registry.report(ComponentId(i as u32), now, verdict) {
            let rate = if matches!(n.state, HealthState::Failed) { 0.0 } else { smoothed };
            self.publish(i, now, n.state, rate);
        }
    }

    fn heartbeat(&mut self, i: usize, now: SimTime) {
        if self.nodes[i].tombstoned || self.nodes[i].ewma.value().is_none() {
            return;
        }
        let state = self.nodes[i].registry.exported(ComponentId(i as u32));
        let smoothed = self.nodes[i].ewma.value_or(0.0);
        self.publish(i, now, state, smoothed);
    }

    fn pick_peers(&mut self, i: usize) -> Vec<usize> {
        let n = self.nodes.len();
        let k = self.cfg.fanout.min(n - 1);
        let mut peers = Vec::with_capacity(k);
        while peers.len() < k {
            let mut p = self.nodes[i].rng.next_below((n - 1) as u64) as usize;
            if p >= i {
                p += 1;
            }
            if !peers.contains(&p) {
                peers.push(p);
            }
        }
        peers
    }

    fn payload_bytes(&self, entries: usize) -> u64 {
        64 + self.cfg.entry_bytes * entries as u64
    }

    fn gossip_round(&mut self, i: usize, now: SimTime, ctx: &mut Scheduler<SimState>) {
        let digest = self.nodes[i].store.snapshot();
        if digest.is_empty() {
            return;
        }
        let bytes = self.payload_bytes(digest.len());
        for to in self.pick_peers(i) {
            self.stats.pushes_sent += 1;
            match self.mesh.send(i, to, now, bytes) {
                Some(d) => {
                    let payload = digest.clone();
                    ctx.at(d.arrive, move |s: &mut SimState, ctx| {
                        s.receive_push(i, to, payload, ctx);
                    });
                }
                None => self.stats.pushes_dropped += 1,
            }
        }
    }

    fn receive_push(
        &mut self,
        from: usize,
        to: usize,
        entries: Vec<HealthEntry>,
        ctx: &mut Scheduler<SimState>,
    ) {
        let now = ctx.now();
        self.stats.delivered += 1;
        // Pull half first, against the digest as sent: everything the
        // receiver holds that is fresher than the sender's view.
        let reply = self.nodes[to].store.fresher_than(&entries);
        for e in entries {
            if self.nodes[to].store.merge(now, e) {
                self.stats.merges += 1;
            }
        }
        if reply.is_empty() {
            return;
        }
        let bytes = self.payload_bytes(reply.len());
        self.stats.replies_sent += 1;
        if let Some(d) = self.mesh.send(to, from, now, bytes) {
            ctx.at(d.arrive, move |s: &mut SimState, ctx| {
                let now = ctx.now();
                s.stats.delivered += 1;
                for e in reply {
                    if s.nodes[from].store.merge(now, e) {
                        s.stats.merges += 1;
                    }
                }
            });
        }
    }
}

/// Ground truth: did the component's profile absolutely fail within the
/// horizon, under the threshold rule `T = fail_threshold`?
fn profile_fails(profile: &SlowdownProfile, threshold: SimDuration, horizon: SimDuration) -> bool {
    longest_outage(profile, horizon) >= threshold
}

/// Runs one plane deployment to its horizon and returns the per-node
/// views. Pure: the result is a function of `spec` and `rng` alone.
pub fn run_plane(spec: &PlaneSpec, rng: &mut Stream) -> PlaneRun {
    let n = spec.nodes();
    assert!(n >= 2, "a plane needs at least two nodes, got {n}");
    assert_eq!(spec.link_profiles.len(), n * n, "link profile matrix must be n*n");
    let cfg = spec.config.clone();
    assert!(cfg.fanout >= 1, "fanout must be at least 1");

    let mut mesh = Mesh::homogeneous(n, cfg.link_rate, cfg.link_latency);
    for from in 0..n {
        for to in 0..n {
            if from == to {
                continue; // the diagonal carries nothing
            }
            let idx = from * n + to;
            if let Some(p) = &spec.link_profiles[idx] {
                mesh.set_profile(from, to, p.clone());
            }
        }
    }

    let nodes = (0..n)
        .map(|i| NodeState {
            store: Store::new(),
            ewma: Ewma::new(cfg.ewma_alpha),
            registry: Registry::new(cfg.persistence),
            rng: rng.derive_index(i as u64),
            zero_since: None,
            next_seq: 0,
            tombstoned: false,
        })
        .collect();

    let truly_failed = spec
        .components
        .iter()
        .map(|c| profile_fails(&c.profile, cfg.fail_threshold, cfg.horizon))
        .collect();

    let state = SimState {
        cfg: cfg.clone(),
        components: spec.components.clone(),
        detector: PeerRelativeDetector::new(cfg.peer_fraction),
        mesh,
        nodes,
        stats: PlaneStats::default(),
    };

    let mut sim = Simulation::new(state);
    for i in 0..n {
        sim.schedule_periodic(cfg.observe_interval, move |s: &mut SimState, ctx| {
            s.observe(i, ctx.now());
            Some(s.cfg.observe_interval)
        });
        sim.schedule_periodic(cfg.refresh_interval, move |s: &mut SimState, ctx| {
            s.heartbeat(i, ctx.now());
            Some(s.cfg.refresh_interval)
        });
        sim.schedule_periodic(cfg.gossip_interval, move |s: &mut SimState, ctx| {
            s.gossip_round(i, ctx.now(), ctx);
            Some(s.cfg.gossip_interval)
        });
    }
    let end = SimTime::ZERO + cfg.horizon;
    sim.run_until(end);

    let mut state = sim.into_state();
    state.stats.carrier_bytes = state.mesh.bytes_sent();
    let stats = state.stats;
    let views = state
        .nodes
        .into_iter()
        .map(|node| StalenessView::new(node.store.into_history(), cfg.staleness))
        .collect();

    PlaneRun { views, stats, config: cfg, truly_failed, end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::PlaneState;

    fn drift_at(t: SimTime, factor: f64) -> SlowdownProfile {
        SlowdownProfile::from_breakpoints(vec![(SimTime::ZERO, 1.0), (t, factor)])
    }

    #[test]
    fn healthy_plane_reaches_all_ok_views() {
        let spec = PlaneSpec::homogeneous(PlaneConfig::default(), 4, 10e6);
        let run = run_plane(&spec, &mut Stream::from_seed(1));
        for (i, view) in run.views.iter().enumerate() {
            for c in 0..4u32 {
                let q = view.query(ComponentId(c), run.end);
                assert!(
                    matches!(q.state, PlaneState::Known(HealthState::Healthy)),
                    "node {i} sees component {c} as {:?}",
                    q.state
                );
            }
        }
        assert!(run.stats.merges > 0, "gossip must move entries");
        assert_eq!(run.stats.tombstones, 0);
    }

    #[test]
    fn drift_is_disseminated_to_every_node() {
        let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), 6, 10e6);
        spec.components[0].profile = drift_at(SimTime::from_secs(60), 0.3);
        let run = run_plane(&spec, &mut Stream::from_seed(2));
        for (i, view) in run.views.iter().enumerate() {
            let q = view.query(ComponentId(0), run.end);
            assert!(
                matches!(q.state, PlaneState::Known(HealthState::PerfFaulty { .. })),
                "node {i} sees the drifting disk as {:?}",
                q.state
            );
            let est = view.estimated_rate(ComponentId(0), run.end, 10e6);
            assert!(est < 4.5e6, "node {i} estimate {est} should track the 3 MB/s truth");
        }
    }

    #[test]
    fn true_fail_stop_tombstones_everywhere_and_is_permanent() {
        let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), 4, 10e6);
        spec.components[1].profile =
            SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(100));
        let run = run_plane(&spec, &mut Stream::from_seed(3));
        assert!(run.truly_failed[1]);
        assert!(run.stats.tombstones >= 1);
        for view in &run.views {
            let q = view.query(ComponentId(1), run.end);
            assert!(matches!(q.state, PlaneState::Known(HealthState::Failed)), "{:?}", q.state);
            assert_eq!(q.confidence, 1.0);
        }
    }

    #[test]
    fn short_blackout_never_tombstones() {
        // 10 s outage < the 30 s threshold T: suspect, never failed.
        let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), 4, 10e6);
        spec.components[2].profile = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(60), 0.0),
            (SimTime::from_secs(70), 1.0),
        ]);
        let run = run_plane(&spec, &mut Stream::from_seed(4));
        assert!(!run.truly_failed[2]);
        assert_eq!(run.stats.tombstones, 0);
        for view in &run.views {
            for (_, e) in view.history(ComponentId(2)) {
                assert!(!e.is_tombstone(), "false fail-stop from a bounded stutter");
            }
        }
    }

    #[test]
    fn dead_links_partition_but_do_not_corrupt() {
        // Node 3 is fully cut off from round one.
        let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), 4, 10e6);
        spec.components[0].profile = drift_at(SimTime::from_secs(30), 0.2);
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        for other in 0..3 {
            spec.set_link_profile(other, 3, dead.clone());
            spec.set_link_profile(3, other, dead.clone());
        }
        let run = run_plane(&spec, &mut Stream::from_seed(5));
        // The partitioned node never hears about the drift...
        let q = run.views[3].query(ComponentId(0), run.end);
        assert_eq!(q.state, PlaneState::Unknown);
        // ...but the connected majority still converges on it.
        for i in 0..3 {
            let q = run.views[i].query(ComponentId(0), run.end);
            assert!(matches!(q.state, PlaneState::Known(HealthState::PerfFaulty { .. })));
        }
        assert!(run.stats.pushes_dropped > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), 5, 10e6);
        spec.components[0].profile = drift_at(SimTime::from_secs(45), 0.5);
        let a = run_plane(&spec, &mut Stream::from_seed(9));
        let b = run_plane(&spec, &mut Stream::from_seed(9));
        assert_eq!(a.stats, b.stats);
        for (va, vb) in a.views.iter().zip(&b.views) {
            for c in 0..5u32 {
                assert_eq!(va.history(ComponentId(c)), vb.history(ComponentId(c)));
            }
        }
    }
}
