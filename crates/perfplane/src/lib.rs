//! # perfplane — the cluster-wide performance-state plane
//!
//! Paper §3.1: "if a component is persistently performance-faulty, it may
//! be useful for a system to export information about component
//! 'performance state', allowing agents within the system to readily learn
//! of and react to these performance-faulty constituents." Inside one
//! process that is [`stutter::registry::Registry`]; across a cluster the
//! state has to *travel*, over a network that is itself a fail-stutter
//! component, and consumers have to act on possibly-stale views.
//!
//! This crate is that missing distribution layer:
//!
//! * [`entry`] — versioned per-component [`stutter::fault::HealthState`]
//!   entries with monotone per-origin sequence numbers and fail-stop
//!   tombstones, plus the single-writer merge rule.
//! * [`gossip`] — a push-pull anti-entropy protocol with fanout `k`,
//!   running on [`simcore`] events and carrying digests over
//!   [`netsim::mesh::Mesh`] links, so the plane's own carrier can be
//!   slowed, black-holed, or partitioned by [`stutter`] injectors.
//! * [`view`] — the [`view::StalenessView`] consumers query: state + age +
//!   confidence, with a decay rule that demotes stale `PerfFaulty`/`Ok`
//!   entries toward [`view::PlaneState::Unknown`] instead of trusting them
//!   forever (tombstones never decay — fail-stop is permanent).
//! * [`oracle`] — eventual-convergence, no-false-fail-stop,
//!   monotone-staleness, and plane-degraded checks for the campaign
//!   harness.
//!
//! # Example
//!
//! ```
//! use perfplane::prelude::*;
//! use simcore::prelude::*;
//!
//! // Four nodes, each observing its own disk; disk 0 drifts to 40%.
//! let mut spec = PlaneSpec::homogeneous(PlaneConfig::default(), 4, 10e6);
//! spec.components[0].profile = SlowdownProfile::from_breakpoints(vec![
//!     (SimTime::ZERO, 1.0),
//!     (SimTime::from_secs(60), 0.4),
//! ]);
//! let run = run_plane(&spec, &mut Stream::from_seed(7));
//!
//! // Every node eventually hears about the drift through gossip alone.
//! let horizon = spec.config.horizon;
//! for view in &run.views {
//!     let v = view.query(ComponentId(0), SimTime::ZERO + horizon);
//!     assert!(matches!(v.state, PlaneState::Known(HealthState::PerfFaulty { .. })));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod gossip;
pub mod oracle;
pub mod view;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::entry::{HealthEntry, NodeId, Store};
    pub use crate::gossip::{
        run_plane, ObservedComponent, PlaneConfig, PlaneRun, PlaneSpec, PlaneStats,
    };
    pub use crate::view::{PlaneState, PlaneView, StalenessConfig, StalenessView};
    pub use stutter::fault::{ComponentId, HealthState};
    pub use stutter::injector::SlowdownProfile;
}
