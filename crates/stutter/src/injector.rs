//! Fault injection: generating performance-fault timelines.
//!
//! An [`Injector`] turns a phenomenon description into a
//! [`SlowdownProfile`]: a piecewise-constant multiplier `m(t) ∈ [0, 1]`
//! applied to a component's nominal speed, plus an optional permanent
//! fail-stop instant. The catalog below covers the classes documented in
//! paper §2:
//!
//! | Injector | §2 phenomena |
//! |---|---|
//! | [`Injector::StaticSlowdown`] | fault-masked caches, bad-block-heavy disks, aged file systems, slow cluster nodes |
//! | [`Injector::Blackouts`] | SCSI timeouts/bus resets, thermal recalibration, switch deadlock recovery |
//! | [`Injector::Stutter`] | generic erratic performance (Vesta variance, nondeterministic CPUs) |
//! | [`Injector::Episodes`] | CPU hogs, memory hogs, garbage collection |
//! | [`Injector::Wearout`] | erratic performance as an early indicator of impending failure (§3.3) |
//! | [`Injector::Compose`] | real components suffer several at once |
//!
//! Profiles are sampled against a deterministic [`Stream`], so a given seed
//! always produces the same fault timeline.

use simcore::dist::{Distribution, Exponential, LogNormal, Pareto, TwoPoint, Uniform, Weibull};
use simcore::resource::RateProfile;
use simcore::rng::Stream;
use simcore::time::{SimDuration, SimTime};

/// A distribution over durations, samplable without trait objects.
#[derive(Clone, Debug, PartialEq)]
pub enum DurationDist {
    /// Always the same duration.
    Const(SimDuration),
    /// Exponential with the given mean.
    Exp {
        /// Mean duration.
        mean: SimDuration,
    },
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: SimDuration,
        /// Exclusive upper bound.
        hi: SimDuration,
    },
    /// Log-normal with the given median and shape.
    LogNormal {
        /// Median duration.
        median: SimDuration,
        /// Shape (sigma of the underlying normal).
        sigma: f64,
    },
    /// Pareto with minimum duration and tail index.
    Pareto {
        /// Minimum duration.
        min: SimDuration,
        /// Tail index (smaller = heavier tail).
        alpha: f64,
    },
    /// Weibull with characteristic life `scale` and shape `k` — the
    /// classical lifetime model (k > 1 = wear-out).
    Weibull {
        /// Characteristic life.
        scale: SimDuration,
        /// Shape parameter.
        k: f64,
    },
}

impl DurationDist {
    /// Draws one duration.
    pub fn sample(&self, rng: &mut Stream) -> SimDuration {
        let secs = match *self {
            DurationDist::Const(d) => return d,
            DurationDist::Exp { mean } => Exponential::with_mean(mean.as_secs_f64()).sample(rng),
            DurationDist::Uniform { lo, hi } => {
                Uniform::new(lo.as_secs_f64(), hi.as_secs_f64()).sample(rng)
            }
            DurationDist::LogNormal { median, sigma } => {
                LogNormal::with_median(median.as_secs_f64(), sigma).sample(rng)
            }
            DurationDist::Pareto { min, alpha } => {
                Pareto::new(min.as_secs_f64(), alpha).sample(rng)
            }
            DurationDist::Weibull { scale, k } => Weibull::new(scale.as_secs_f64(), k).sample(rng),
        };
        SimDuration::from_secs_f64(secs.max(0.0))
    }

    /// The distribution mean (infinite Pareto means saturate).
    pub fn mean(&self) -> SimDuration {
        let secs = match *self {
            DurationDist::Const(d) => return d,
            DurationDist::Exp { mean } => mean.as_secs_f64(),
            DurationDist::Uniform { lo, hi } => (lo.as_secs_f64() + hi.as_secs_f64()) / 2.0,
            DurationDist::LogNormal { median, sigma } => {
                LogNormal::with_median(median.as_secs_f64(), sigma).mean()
            }
            DurationDist::Pareto { min, alpha } => Pareto::new(min.as_secs_f64(), alpha).mean(),
            DurationDist::Weibull { scale, k } => Weibull::new(scale.as_secs_f64(), k).mean(),
        };
        if secs.is_finite() {
            SimDuration::from_secs_f64(secs)
        } else {
            SimDuration::MAX
        }
    }
}

/// A distribution over slowdown multipliers in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub enum FactorDist {
    /// Always the same multiplier.
    Const(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// `a` with probability `p`, else `b` — the Vesta-style bimodal shape.
    TwoPoint {
        /// Probability of `a`.
        p: f64,
        /// Common-case multiplier.
        a: f64,
        /// Tail multiplier.
        b: f64,
    },
}

impl FactorDist {
    /// Draws one multiplier, clamped into `[0, 1]`.
    pub fn sample(&self, rng: &mut Stream) -> f64 {
        let x = match *self {
            FactorDist::Const(v) => v,
            FactorDist::Uniform { lo, hi } => Uniform::new(lo, hi).sample(rng),
            FactorDist::TwoPoint { p, a, b } => TwoPoint { p, a, b }.sample(rng),
        };
        x.clamp(0.0, 1.0)
    }
}

/// A component's performance timeline: a piecewise-constant speed multiplier
/// plus an optional permanent fail-stop instant.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowdownProfile {
    // (segment start, multiplier); first entry at time zero, starts sorted.
    segments: Vec<(SimTime, f64)>,
    fail_at: Option<SimTime>,
}

impl SlowdownProfile {
    /// A profile that always runs at full speed.
    pub fn nominal() -> Self {
        SlowdownProfile { segments: vec![(SimTime::ZERO, 1.0)], fail_at: None }
    }

    /// Builds a profile from raw `(start, multiplier)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if empty, unsorted, not starting at zero, or if a multiplier
    /// is outside `[0, 1]`.
    pub fn from_breakpoints(segments: Vec<(SimTime, f64)>) -> Self {
        assert!(!segments.is_empty(), "profile needs at least one segment");
        assert_eq!(segments[0].0, SimTime::ZERO, "first segment must start at zero");
        for w in segments.windows(2) {
            assert!(w[0].0 < w[1].0, "breakpoints must be strictly increasing");
        }
        for &(_, m) in &segments {
            assert!((0.0..=1.0).contains(&m), "multiplier {m} out of [0,1]");
        }
        SlowdownProfile { segments, fail_at: None }
    }

    /// Marks the component as permanently failed from `t` on.
    pub fn with_failure_at(mut self, t: SimTime) -> Self {
        self.fail_at = Some(match self.fail_at {
            Some(existing) => existing.min(t),
            None => t,
        });
        self
    }

    /// The permanent fail-stop instant, if any.
    pub fn fail_at(&self) -> Option<SimTime> {
        self.fail_at
    }

    /// True if the component has absolutely failed by `t`.
    pub fn failed_at(&self, t: SimTime) -> bool {
        self.fail_at.is_some_and(|f| t >= f)
    }

    /// The speed multiplier at `t` (0 once failed).
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        if self.failed_at(t) {
            return 0.0;
        }
        let idx = self.segments.partition_point(|&(s, _)| s <= t);
        // fslint: allow(panic-path) — the first segment starts at SimTime::ZERO <= t, so partition_point >= 1
        self.segments[idx - 1].1
    }

    /// The raw segments (excluding the failure cut-off).
    pub fn segments(&self) -> &[(SimTime, f64)] {
        &self.segments
    }

    /// The earliest instant at or after `t` with a positive multiplier
    /// (i.e. when a blacked-out component next makes progress), or `None`
    /// if it never runs again.
    pub fn next_active(&self, t: SimTime) -> Option<SimTime> {
        if self.failed_at(t) {
            return None;
        }
        if self.multiplier_at(t) > 0.0 {
            return Some(t);
        }
        let idx = self.segments.partition_point(|&(s, _)| s <= t);
        for &(start, m) in &self.segments[idx..] {
            if self.failed_at(start) {
                return None;
            }
            if m > 0.0 {
                return Some(start);
            }
        }
        None
    }

    /// Converts to an absolute [`RateProfile`] for a component whose
    /// nominal speed is `nominal` units/second. A permanent failure becomes
    /// a zero-rate tail.
    pub fn to_rate_profile(&self, nominal: f64) -> RateProfile {
        let mut bps: Vec<(SimTime, f64)> = Vec::new();
        for &(start, m) in &self.segments {
            if let Some(f) = self.fail_at {
                if start >= f {
                    break;
                }
            }
            bps.push((start, nominal * m));
        }
        if let Some(f) = self.fail_at {
            match bps.last() {
                Some(&(last, _)) if last == f => {
                    let i = bps.len() - 1;
                    bps[i].1 = 0.0;
                }
                _ => bps.push((f, 0.0)),
            }
        }
        RateProfile::from_breakpoints(bps)
    }

    /// Pointwise product of two profiles (a component subject to both).
    pub fn compose(&self, other: &SlowdownProfile) -> SlowdownProfile {
        let mut times: Vec<SimTime> = self
            .segments
            .iter()
            .map(|&(t, _)| t)
            .chain(other.segments.iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();
        let segments = times
            .into_iter()
            .map(|t| (t, self.raw_multiplier_at(t) * other.raw_multiplier_at(t)))
            .collect();
        let fail_at = match (self.fail_at, other.fail_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        SlowdownProfile { segments, fail_at }
    }

    fn raw_multiplier_at(&self, t: SimTime) -> f64 {
        let idx = self.segments.partition_point(|&(s, _)| s <= t);
        // fslint: allow(panic-path) — the first segment starts at SimTime::ZERO <= t, so partition_point >= 1
        self.segments[idx - 1].1
    }

    /// The time-average multiplier over `[ZERO, horizon]` (failure counts
    /// as zero speed).
    pub fn mean_multiplier(&self, horizon: SimDuration) -> f64 {
        let end = SimTime::ZERO + horizon;
        let mut total = 0.0;
        let mut cursor = SimTime::ZERO;
        for i in 0..self.segments.len() {
            let seg_start = self.segments[i].0;
            if seg_start >= end {
                break;
            }
            let seg_end = self.segments.get(i + 1).map_or(end, |&(s, _)| s.min(end));
            let mut a = seg_start.max(cursor);
            let mut m = self.segments[i].1;
            // Split the segment at the failure instant if it falls inside.
            if let Some(f) = self.fail_at {
                if f <= a {
                    m = 0.0;
                } else if f < seg_end {
                    total += m * (f - a).as_secs_f64();
                    a = f;
                    m = 0.0;
                }
            }
            total += m * (seg_end - a).as_secs_f64();
            cursor = seg_end;
        }
        total / horizon.as_secs_f64()
    }
}

/// A generator of [`SlowdownProfile`]s for one phenomenon class.
///
/// # Examples
///
/// ```
/// use simcore::prelude::*;
/// use stutter::prelude::*;
///
/// // GC-like pauses: full stops of ~2 s every ~30 s.
/// let inj = Injector::Blackouts {
///     interarrival: DurationDist::Exp { mean: SimDuration::from_secs(30) },
///     duration: DurationDist::Const(SimDuration::from_secs(2)),
/// };
/// let profile = inj.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(7));
/// let mean = profile.mean_multiplier(SimDuration::from_secs(3600));
/// assert!(mean > 0.8 && mean < 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Injector {
    /// No fault: always nominal.
    NoFault,
    /// A fixed, permanent slowdown (e.g. a chip with half its cache masked
    /// out, a disk with many remapped blocks, an aged file system).
    StaticSlowdown {
        /// Permanent speed multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Recurring complete stalls: the component periodically delivers
    /// nothing (SCSI bus reset, thermal recalibration, deadlock recovery).
    Blackouts {
        /// Time between the end of one blackout and the start of the next.
        interarrival: DurationDist,
        /// Blackout length.
        duration: DurationDist,
    },
    /// Erratic performance: at random intervals the component's speed is
    /// redrawn from a factor distribution.
    Stutter {
        /// How long each speed level persists.
        hold: DurationDist,
        /// Distribution of speed levels.
        factor: FactorDist,
    },
    /// Interference episodes: normally nominal, but during an episode the
    /// component runs at `factor` (hog processes, garbage collection).
    Episodes {
        /// Gap between episodes.
        interarrival: DurationDist,
        /// Episode length.
        duration: DurationDist,
        /// Speed multiplier during an episode, in `[0, 1)`.
        factor: f64,
    },
    /// Progressive wear-out: nominal until `onset`, then linear decline to
    /// `floor` over `ramp`, then (optionally) permanent failure — erratic
    /// performance as an early indicator of absolute failure (§3.3).
    Wearout {
        /// When degradation begins.
        onset: SimTime,
        /// How long the decline takes.
        ramp: SimDuration,
        /// The multiplier reached at the end of the decline.
        floor: f64,
        /// Whether the component fail-stops at the end of the ramp plus
        /// this grace period.
        fail_after: Option<SimDuration>,
    },
    /// Several phenomena at once; profiles multiply.
    Compose(Vec<Injector>),
}

impl Injector {
    /// Generates a timeline covering `[0, horizon]`.
    pub fn timeline(&self, horizon: SimDuration, rng: &mut Stream) -> SlowdownProfile {
        let end = SimTime::ZERO + horizon;
        match self {
            Injector::NoFault => SlowdownProfile::nominal(),
            Injector::StaticSlowdown { factor } => {
                assert!(*factor > 0.0 && *factor <= 1.0, "factor {factor} out of (0,1]");
                SlowdownProfile::from_breakpoints(vec![(SimTime::ZERO, *factor)])
            }
            Injector::Blackouts { interarrival, duration } => {
                let mut bps = vec![(SimTime::ZERO, 1.0)];
                let mut t = SimTime::ZERO;
                loop {
                    let gap = interarrival.sample(rng).max(SimDuration::from_nanos(1));
                    t += gap;
                    if t >= end {
                        break;
                    }
                    let d = duration.sample(rng).max(SimDuration::from_nanos(1));
                    bps.push((t, 0.0));
                    t += d;
                    bps.push((t, 1.0));
                    if t >= end {
                        break;
                    }
                }
                SlowdownProfile::from_breakpoints(bps)
            }
            Injector::Stutter { hold, factor } => {
                let mut bps = vec![(SimTime::ZERO, factor.sample(rng))];
                let mut t = SimTime::ZERO;
                loop {
                    t += hold.sample(rng).max(SimDuration::from_nanos(1));
                    if t >= end {
                        break;
                    }
                    bps.push((t, factor.sample(rng)));
                }
                SlowdownProfile::from_breakpoints(bps)
            }
            Injector::Episodes { interarrival, duration, factor } => {
                assert!((0.0..1.0).contains(factor), "episode factor {factor} out of [0,1)");
                let mut bps = vec![(SimTime::ZERO, 1.0)];
                let mut t = SimTime::ZERO;
                loop {
                    t += interarrival.sample(rng).max(SimDuration::from_nanos(1));
                    if t >= end {
                        break;
                    }
                    let d = duration.sample(rng).max(SimDuration::from_nanos(1));
                    bps.push((t, *factor));
                    t += d;
                    bps.push((t, 1.0));
                    if t >= end {
                        break;
                    }
                }
                SlowdownProfile::from_breakpoints(bps)
            }
            Injector::Wearout { onset, ramp, floor, fail_after } => {
                assert!((0.0..=1.0).contains(floor), "floor {floor} out of [0,1]");
                let mut bps: Vec<(SimTime, f64)> = vec![(SimTime::ZERO, 1.0)];
                // Piecewise-linear decline approximated in 16 steps. Clamp
                // the onset to 1 ns so the first step never collides with
                // the mandatory segment at time zero.
                const STEPS: u64 = 16;
                let onset = (*onset).max(SimTime::from_nanos(1));
                for i in 0..STEPS {
                    let frac = (i + 1) as f64 / STEPS as f64;
                    let t = onset + ramp.mul_f64((i as f64) / STEPS as f64);
                    let m = 1.0 + frac * (floor - 1.0);
                    match bps.last_mut() {
                        // A ramp shorter than the step resolution collapses
                        // steps onto one instant; keep the deepest level.
                        Some(last) if last.0 >= t => last.1 = last.1.min(m),
                        _ => bps.push((t, m)),
                    }
                }
                let ramp_end = onset + *ramp;
                let mut profile = SlowdownProfile::from_breakpoints(bps);
                if let Some(grace) = fail_after {
                    profile = profile.with_failure_at(ramp_end + *grace);
                }
                profile
            }
            Injector::Compose(parts) => {
                let mut acc = SlowdownProfile::nominal();
                for (i, p) in parts.iter().enumerate() {
                    let mut sub = rng.derive(&format!("compose-{i}"));
                    acc = acc.compose(&p.timeline(horizon, &mut sub));
                }
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Stream {
        Stream::from_seed(42)
    }

    const HOUR: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn nominal_profile_is_identity() {
        let p = SlowdownProfile::nominal();
        assert_eq!(p.multiplier_at(SimTime::from_secs(123)), 1.0);
        assert!((p.mean_multiplier(HOUR) - 1.0).abs() < 1e-12);
        assert_eq!(p.fail_at(), None);
    }

    #[test]
    fn static_slowdown_is_constant() {
        let p = Injector::StaticSlowdown { factor: 0.7 }.timeline(HOUR, &mut rng());
        assert_eq!(p.multiplier_at(SimTime::ZERO), 0.7);
        assert_eq!(p.multiplier_at(SimTime::from_secs(1800)), 0.7);
        assert!((p.mean_multiplier(HOUR) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn blackouts_drop_mean_multiplier() {
        // 1 s blackout every ~10 s → ~0.9 duty cycle.
        let inj = Injector::Blackouts {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(10) },
            duration: DurationDist::Const(SimDuration::from_secs(1)),
        };
        let p = inj.timeline(HOUR, &mut rng());
        let mean = p.mean_multiplier(HOUR);
        assert!((0.85..0.95).contains(&mean), "mean {mean}");
        // Multipliers only take the values 0 and 1.
        for &(_, m) in p.segments() {
            assert!(m == 0.0 || m == 1.0);
        }
    }

    #[test]
    fn stutter_redraws_levels() {
        let inj = Injector::Stutter {
            hold: DurationDist::Const(SimDuration::from_secs(60)),
            factor: FactorDist::TwoPoint { p: 0.8, a: 1.0, b: 0.2 },
        };
        let p = inj.timeline(HOUR, &mut rng());
        assert_eq!(p.segments().len(), 60);
        let mean = p.mean_multiplier(HOUR);
        assert!((0.7..0.95).contains(&mean), "mean {mean}");
    }

    #[test]
    fn episodes_alternate_factor_and_nominal() {
        let inj = Injector::Episodes {
            interarrival: DurationDist::Const(SimDuration::from_secs(100)),
            duration: DurationDist::Const(SimDuration::from_secs(50)),
            factor: 0.5,
        };
        let p = inj.timeline(SimDuration::from_secs(300), &mut rng());
        // t=100..150 is an episode.
        assert_eq!(p.multiplier_at(SimTime::from_secs(99)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(120)), 0.5);
        assert_eq!(p.multiplier_at(SimTime::from_secs(160)), 1.0);
    }

    #[test]
    fn wearout_declines_then_fails() {
        let inj = Injector::Wearout {
            onset: SimTime::from_secs(1000),
            ramp: SimDuration::from_secs(1000),
            floor: 0.2,
            fail_after: Some(SimDuration::from_secs(500)),
        };
        let p = inj.timeline(HOUR, &mut rng());
        assert_eq!(p.multiplier_at(SimTime::from_secs(500)), 1.0);
        let mid = p.multiplier_at(SimTime::from_secs(1500));
        assert!(mid < 1.0 && mid > 0.2, "mid-ramp multiplier {mid}");
        assert!((p.multiplier_at(SimTime::from_secs(2100)) - 0.2).abs() < 1e-9);
        assert_eq!(p.fail_at(), Some(SimTime::from_secs(2500)));
        assert_eq!(p.multiplier_at(SimTime::from_secs(2600)), 0.0);
    }

    #[test]
    fn next_active_skips_blackouts() {
        let p = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(10), 0.0),
            (SimTime::from_secs(20), 1.0),
        ]);
        assert_eq!(p.next_active(SimTime::from_secs(5)), Some(SimTime::from_secs(5)));
        assert_eq!(p.next_active(SimTime::from_secs(15)), Some(SimTime::from_secs(20)));
        let failed = p.clone().with_failure_at(SimTime::from_secs(12));
        assert_eq!(failed.next_active(SimTime::from_secs(15)), None);
    }

    #[test]
    fn compose_multiplies() {
        let a = SlowdownProfile::from_breakpoints(vec![(SimTime::ZERO, 0.5)]);
        let b = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(10), 0.5),
        ]);
        let c = a.compose(&b);
        assert_eq!(c.multiplier_at(SimTime::from_secs(5)), 0.5);
        assert_eq!(c.multiplier_at(SimTime::from_secs(15)), 0.25);
    }

    #[test]
    fn compose_keeps_earliest_failure() {
        let a = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(100));
        let b = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(50));
        assert_eq!(a.compose(&b).fail_at(), Some(SimTime::from_secs(50)));
    }

    #[test]
    fn compose_injector_is_deterministic() {
        let inj = Injector::Compose(vec![
            Injector::StaticSlowdown { factor: 0.9 },
            Injector::Blackouts {
                interarrival: DurationDist::Exp { mean: SimDuration::from_secs(30) },
                duration: DurationDist::Const(SimDuration::from_secs(2)),
            },
        ]);
        let p1 = inj.timeline(HOUR, &mut rng());
        let p2 = inj.timeline(HOUR, &mut rng());
        assert_eq!(p1, p2);
        assert!(p1.mean_multiplier(HOUR) < 0.9 + 1e-12);
    }

    #[test]
    fn to_rate_profile_scales_and_cuts() {
        let p = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(10), 0.5),
        ])
        .with_failure_at(SimTime::from_secs(20));
        let r = p.to_rate_profile(10.0);
        assert_eq!(r.rate_at(SimTime::from_secs(5)), 10.0);
        assert_eq!(r.rate_at(SimTime::from_secs(15)), 5.0);
        assert_eq!(r.rate_at(SimTime::from_secs(25)), 0.0);
    }

    #[test]
    fn mean_multiplier_accounts_for_failure() {
        let p = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(1800));
        let mean = p.mean_multiplier(HOUR);
        assert!((mean - 0.5).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn duration_dist_means() {
        assert_eq!(
            DurationDist::Const(SimDuration::from_secs(5)).mean(),
            SimDuration::from_secs(5)
        );
        assert_eq!(
            DurationDist::Exp { mean: SimDuration::from_secs(5) }.mean(),
            SimDuration::from_secs(5)
        );
        let m =
            DurationDist::Uniform { lo: SimDuration::from_secs(2), hi: SimDuration::from_secs(4) }
                .mean();
        assert_eq!(m, SimDuration::from_secs(3));
        // Heavy Pareto saturates.
        assert_eq!(
            DurationDist::Pareto { min: SimDuration::from_secs(1), alpha: 0.5 }.mean(),
            SimDuration::MAX
        );
    }

    #[test]
    fn duration_dist_samples_are_positive() {
        let mut r = rng();
        for d in [
            DurationDist::Exp { mean: SimDuration::from_secs(1) },
            DurationDist::LogNormal { median: SimDuration::from_secs(1), sigma: 1.0 },
            DurationDist::Pareto { min: SimDuration::from_secs(1), alpha: 1.5 },
            DurationDist::Weibull { scale: SimDuration::from_secs(1), k: 2.5 },
        ] {
            for _ in 0..100 {
                assert!(d.sample(&mut r) >= SimDuration::ZERO);
            }
        }
    }
}
