//! Failure prediction from performance-fault history.
//!
//! Paper §3.3: "reliability may also be enhanced through the detection of
//! performance anomalies, as erratic performance may be an early indicator
//! of impending failure." [`FailurePredictor`] watches a component's
//! delivered performance fraction over a sliding window and raises a
//! prediction when the level is low and the trend is downward — the
//! signature of the wear-out injector, as opposed to a steady-but-slow part
//! (which is merely performance-faulty) or a transient hog episode.

use std::collections::VecDeque;

use simcore::time::{SimDuration, SimTime};

/// Tunable prediction policy.
#[derive(Clone, Copy, Debug)]
pub struct PredictorConfig {
    /// Sliding window length.
    pub window: SimDuration,
    /// Minimum samples in the window before predicting.
    pub min_samples: usize,
    /// Predict only when the latest smoothed fraction is below this level.
    pub level_threshold: f64,
    /// Predict only when the fraction declines at least this much per
    /// window-length (e.g. 0.1 = losing 10% of nominal speed per window).
    pub slope_threshold: f64,
    /// Predict only after this many consecutive observations below
    /// `level_threshold` — short transient dips must not fire.
    pub consecutive_below: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            window: SimDuration::from_secs(600),
            min_samples: 8,
            level_threshold: 0.9,
            slope_threshold: 0.05,
            consecutive_below: 4,
        }
    }
}

/// An emitted failure prediction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// When the prediction was raised.
    pub at: SimTime,
    /// The delivered fraction at prediction time.
    pub level: f64,
    /// The estimated decline per window-length.
    pub decline_per_window: f64,
}

/// A fitted capacity trend over the current window — the
/// subscriber-facing view of the predictor's internal estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trend {
    /// Time of the newest observation in the window.
    pub at: SimTime,
    /// Fitted delivered-fraction level at that time.
    pub level: f64,
    /// Estimated decline per window-length (positive = deteriorating).
    pub decline_per_window: f64,
}

/// Watches one component's delivered-performance fraction and predicts
/// impending absolute failure.
#[derive(Clone, Debug)]
pub struct FailurePredictor {
    config: PredictorConfig,
    samples: VecDeque<(SimTime, f64)>,
    below_streak: usize,
    fired: Option<Prediction>,
}

impl FailurePredictor {
    /// Creates a predictor with the given policy.
    pub fn new(config: PredictorConfig) -> Self {
        assert!(config.min_samples >= 2, "need at least two samples to fit a trend");
        FailurePredictor { config, samples: VecDeque::new(), below_streak: 0, fired: None }
    }

    /// Feeds a `(time, delivered fraction)` observation.
    ///
    /// Returns the prediction if this observation triggers one. A predictor
    /// fires at most once; later observations are still recorded so
    /// [`lead_time`](Self::lead_time) can be queried.
    pub fn observe(&mut self, at: SimTime, fraction: f64) -> Option<Prediction> {
        let fraction = fraction.clamp(0.0, 1.0);
        self.samples.push_back((at, fraction));
        if fraction < self.config.level_threshold {
            self.below_streak += 1;
        } else {
            self.below_streak = 0;
        }
        let cutoff =
            SimTime::from_nanos(at.as_nanos().saturating_sub(self.config.window.as_nanos()));
        while let Some(&(t, _)) = self.samples.front() {
            if t < cutoff && self.samples.len() > self.config.min_samples {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        if self.fired.is_some() || self.samples.len() < self.config.min_samples {
            return None;
        }

        let (level, slope_per_sec) = self.fit();
        let decline = -slope_per_sec * self.config.window.as_secs_f64();
        if self.below_streak >= self.config.consecutive_below
            && level < self.config.level_threshold
            && decline >= self.config.slope_threshold
        {
            let p = Prediction { at, level, decline_per_window: decline };
            self.fired = Some(p);
            return Some(p);
        }
        None
    }

    /// Least-squares fit over the window: returns (latest fitted level,
    /// slope in fraction/second).
    fn fit(&self) -> (f64, f64) {
        // fit() only runs with samples.len() >= min_samples >= 2, but the
        // path is injector-reachable, so guard instead of expecting.
        let Some(&(t0, _)) = self.samples.front() else {
            return (1.0, 0.0);
        };
        let n = self.samples.len() as f64;
        let xs: Vec<f64> = self.samples.iter().map(|&(t, _)| (t - t0).as_secs_f64()).collect();
        let ys: Vec<f64> = self.samples.iter().map(|&(_, y)| y).collect();
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let latest_x = xs.last().copied().unwrap_or(0.0);
        let level = mean_y + slope * (latest_x - mean_x);
        (level, slope)
    }

    /// The current least-squares trend over the window — the public hook
    /// for trend-threshold subscribers such as early load shedders
    /// (ROADMAP: "prediction as the load-shedding trigger").
    ///
    /// Unlike [`observe`](Self::observe)'s one-shot [`Prediction`], this
    /// is a continuous view: it reports the fitted level and decline on
    /// every call once `min_samples` observations are buffered (and
    /// `None` before that), regardless of whether a prediction fired.
    pub fn trend(&self) -> Option<Trend> {
        if self.samples.len() < self.config.min_samples {
            return None;
        }
        let &(at, _) = self.samples.back()?;
        let (level, slope_per_sec) = self.fit();
        let decline = -slope_per_sec * self.config.window.as_secs_f64();
        Some(Trend { at, level, decline_per_window: decline })
    }

    /// True while the current trend is at or below `level` **and**
    /// declining at least `decline_per_window` — the arming condition
    /// for trend subscribers. This re-evaluates on every call, so a
    /// subscriber disarms again once the component recovers (the
    /// one-shot prediction never un-fires).
    pub fn trend_crossed(&self, level: f64, decline_per_window: f64) -> bool {
        match self.trend() {
            Some(t) => t.level <= level && t.decline_per_window >= decline_per_window,
            None => false,
        }
    }

    /// The prediction, if one has fired.
    pub fn prediction(&self) -> Option<Prediction> {
        self.fired
    }

    /// Warning lead time relative to an actual failure instant, or `None`
    /// if no prediction fired or it fired after the failure.
    pub fn lead_time(&self, failure_at: SimTime) -> Option<SimDuration> {
        let p = self.fired?;
        if p.at < failure_at {
            Some(failure_at - p.at)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PredictorConfig {
        PredictorConfig {
            window: SimDuration::from_secs(100),
            min_samples: 5,
            level_threshold: 0.9,
            slope_threshold: 0.05,
            consecutive_below: 4,
        }
    }

    #[test]
    fn steady_healthy_component_never_fires() {
        let mut p = FailurePredictor::new(config());
        for i in 0..100 {
            assert_eq!(p.observe(SimTime::from_secs(i * 10), 1.0), None);
        }
        assert_eq!(p.prediction(), None);
    }

    #[test]
    fn steady_slow_component_never_fires() {
        // Performance-faulty but stable: no failure signature.
        let mut p = FailurePredictor::new(config());
        for i in 0..100 {
            assert_eq!(p.observe(SimTime::from_secs(i * 10), 0.5), None);
        }
        assert_eq!(p.prediction(), None);
    }

    #[test]
    fn declining_component_fires_before_reaching_zero() {
        let mut p = FailurePredictor::new(config());
        let mut fired_at = None;
        for i in 0..100u64 {
            // Lose 1% of nominal every 10 s: hits zero at t=1000 s.
            let frac = 1.0 - i as f64 * 0.01;
            if let Some(pred) = p.observe(SimTime::from_secs(i * 10), frac.max(0.0)) {
                fired_at = Some(pred.at);
                break;
            }
        }
        let at = fired_at.expect("must fire on a clear decline");
        assert!(at < SimTime::from_secs(900), "fired too late: {at}");
        assert!(
            p.lead_time(SimTime::from_secs(1000)).expect("fired before failure")
                >= SimDuration::from_secs(100)
        );
    }

    #[test]
    fn fires_at_most_once() {
        let mut p = FailurePredictor::new(config());
        let mut fires = 0;
        for i in 0..200u64 {
            let frac = (1.0 - i as f64 * 0.01).max(0.0);
            if p.observe(SimTime::from_secs(i * 10), frac).is_some() {
                fires += 1;
            }
        }
        assert_eq!(fires, 1);
    }

    #[test]
    fn transient_dip_does_not_fire() {
        let mut p = FailurePredictor::new(config());
        for i in 0..50u64 {
            // A 3-sample dip to 0.85 inside a healthy run. The level briefly
            // drops but the windowed trend stays flat.
            let frac = if (20..23).contains(&i) { 0.85 } else { 1.0 };
            assert_eq!(p.observe(SimTime::from_secs(i * 10), frac), None, "sample {i}");
        }
    }

    #[test]
    fn trend_hook_none_until_min_samples_then_tracks_decline() {
        let mut p = FailurePredictor::new(config());
        for i in 0..4u64 {
            p.observe(SimTime::from_secs(i * 10), 1.0 - i as f64 * 0.01);
            assert_eq!(p.trend(), None, "sample {i}: below min_samples");
        }
        for i in 4..40u64 {
            p.observe(SimTime::from_secs(i * 10), 1.0 - i as f64 * 0.01);
            let t = p.trend().expect("window full");
            assert_eq!(t.at, SimTime::from_secs(i * 10));
            assert!(t.decline_per_window > 0.0, "decline must be positive on a decaying series");
        }
    }

    #[test]
    fn trend_crossing_arms_no_later_than_prediction() {
        // A subscriber shedding on the same thresholds the predictor uses
        // must arm no later than the one-shot prediction fires.
        let mut p = FailurePredictor::new(config());
        let mut armed_at = None;
        let mut fired_at = None;
        for i in 0..100u64 {
            let frac = (1.0 - i as f64 * 0.01).max(0.0);
            let pred = p.observe(SimTime::from_secs(i * 10), frac);
            if armed_at.is_none() && p.trend_crossed(0.9, 0.05) {
                armed_at = Some(i);
            }
            if let Some(pr) = pred {
                fired_at = Some(pr.at);
                break;
            }
        }
        let armed = armed_at.expect("trend must cross on a clear decline");
        let fired = fired_at.expect("prediction must fire on a clear decline");
        assert!(SimTime::from_secs(armed * 10) <= fired, "armed {armed} after fire {fired}");
    }

    #[test]
    fn trend_disarms_when_component_recovers() {
        let mut p = FailurePredictor::new(config());
        for i in 0..30u64 {
            p.observe(SimTime::from_secs(i * 10), (1.0 - i as f64 * 0.02).max(0.0));
        }
        assert!(p.trend_crossed(0.9, 0.05), "must be armed mid-decline");
        for i in 30..60u64 {
            p.observe(SimTime::from_secs(i * 10), 1.0);
        }
        assert!(!p.trend_crossed(0.9, 0.05), "must disarm after recovery");
    }

    #[test]
    fn lead_time_none_if_fired_after_failure() {
        let mut p = FailurePredictor::new(config());
        for i in 0..100u64 {
            let frac = (1.0 - i as f64 * 0.01).max(0.0);
            p.observe(SimTime::from_secs(i * 10), frac);
        }
        assert_eq!(p.lead_time(SimTime::from_secs(1)), None);
    }
}
