//! Performance specifications.
//!
//! Paper §3.1: "the fail-stutter model should present the system designer
//! with a trade-off. At one extreme, a model of component performance could
//! be as simple as possible: 'this disk delivers bandwidth at 10 MB/s.'
//! However, the simpler the model, the more likely performance faults
//! occur." A [`PerfSpec`] captures that trade-off as three fidelities; the
//! higher the fidelity, the fewer observations count as faults.

use crate::fault::HealthState;

/// A performance specification for one component, in abstract units/second.
#[derive(Clone, Debug, PartialEq)]
pub enum PerfSpec {
    /// Lowest fidelity: a single nominal rate. Anything below
    /// `nominal · tolerance` is a performance fault.
    Constant {
        /// The advertised rate.
        nominal: f64,
        /// Fraction of nominal below which an observation is faulty
        /// (e.g. 0.9 flags anything slower than 90% of spec).
        tolerance: f64,
    },
    /// Medium fidelity: a mean rate plus an allowed coefficient of
    /// variation. An observation is faulty when it falls more than
    /// `k_sigma` standard deviations below the mean.
    Distribution {
        /// Mean rate.
        mean: f64,
        /// Allowed coefficient of variation (std dev / mean).
        cv: f64,
        /// How many sigmas below the mean is still acceptable.
        k_sigma: f64,
    },
    /// Highest fidelity: an explicit acceptable band, such as a zoned disk
    /// whose sequential bandwidth legitimately spans outer-to-inner zones.
    Envelope {
        /// Smallest in-spec rate.
        min: f64,
        /// Largest expected rate (used for normalisation, not faulting).
        max: f64,
    },
}

impl PerfSpec {
    /// A constant-rate spec with the conventional 90% tolerance.
    pub fn constant(nominal: f64) -> Self {
        assert!(nominal > 0.0, "nominal rate must be positive, got {nominal}");
        PerfSpec::Constant { nominal, tolerance: 0.9 }
    }

    /// A constant-rate spec with an explicit tolerance fraction.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not positive or `tolerance` outside `(0, 1]`.
    pub fn constant_with_tolerance(nominal: f64, tolerance: f64) -> Self {
        assert!(nominal > 0.0, "nominal rate must be positive, got {nominal}");
        assert!(tolerance > 0.0 && tolerance <= 1.0, "tolerance must be in (0,1], got {tolerance}");
        PerfSpec::Constant { nominal, tolerance }
    }

    /// A distributional spec.
    ///
    /// # Panics
    ///
    /// Panics on non-positive mean, negative cv, or non-positive k-sigma.
    pub fn distribution(mean: f64, cv: f64, k_sigma: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        assert!(cv >= 0.0, "cv must be non-negative, got {cv}");
        assert!(k_sigma > 0.0, "k_sigma must be positive, got {k_sigma}");
        PerfSpec::Distribution { mean, cv, k_sigma }
    }

    /// An envelope spec over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if bounds are out of order or `min` not positive.
    pub fn envelope(min: f64, max: f64) -> Self {
        assert!(min > 0.0 && min <= max, "invalid envelope [{min}, {max}]");
        PerfSpec::Envelope { min, max }
    }

    /// The rate the designer plans around: nominal, mean, or envelope max.
    pub fn expected_rate(&self) -> f64 {
        match *self {
            PerfSpec::Constant { nominal, .. } => nominal,
            PerfSpec::Distribution { mean, .. } => mean,
            PerfSpec::Envelope { max, .. } => max,
        }
    }

    /// The slowest rate still considered in-spec.
    pub fn fault_floor(&self) -> f64 {
        match *self {
            PerfSpec::Constant { nominal, tolerance } => nominal * tolerance,
            PerfSpec::Distribution { mean, cv, k_sigma } => (mean - k_sigma * cv * mean).max(0.0),
            PerfSpec::Envelope { min, .. } => min,
        }
    }

    /// Classifies an observed rate against the spec.
    ///
    /// Returns [`HealthState::Healthy`] when in spec, otherwise
    /// [`HealthState::PerfFaulty`] with severity = observed / expected
    /// (clamped into `(0,1)`); an exactly-zero rate is [`HealthState::Failed`].
    pub fn classify(&self, observed_rate: f64) -> HealthState {
        if observed_rate <= 0.0 {
            return HealthState::Failed;
        }
        if observed_rate >= self.fault_floor() {
            return HealthState::Healthy;
        }
        let severity = (observed_rate / self.expected_rate()).clamp(f64::MIN_POSITIVE, 0.999_999);
        HealthState::PerfFaulty { severity }
    }

    /// True if an observation is within specification.
    pub fn is_within(&self, observed_rate: f64) -> bool {
        matches!(self.classify(observed_rate), HealthState::Healthy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_spec_floor_and_classify() {
        let s = PerfSpec::constant(10.0);
        assert_eq!(s.expected_rate(), 10.0);
        assert!((s.fault_floor() - 9.0).abs() < 1e-12);
        assert_eq!(s.classify(9.5), HealthState::Healthy);
        match s.classify(5.0) {
            HealthState::PerfFaulty { severity } => assert!((severity - 0.5).abs() < 1e-9),
            other => panic!("expected perf fault, got {other:?}"),
        }
        assert_eq!(s.classify(0.0), HealthState::Failed);
    }

    #[test]
    fn distribution_spec_uses_sigma_band() {
        // mean 10, cv 0.1 → sd 1; 2-sigma floor = 8.
        let s = PerfSpec::distribution(10.0, 0.1, 2.0);
        assert!((s.fault_floor() - 8.0).abs() < 1e-12);
        assert!(s.is_within(8.5));
        assert!(!s.is_within(7.9));
    }

    #[test]
    fn distribution_floor_clamps_at_zero() {
        let s = PerfSpec::distribution(10.0, 1.0, 3.0);
        assert_eq!(s.fault_floor(), 0.0);
        // Everything positive is in spec under such a loose model.
        assert!(s.is_within(0.001));
    }

    #[test]
    fn envelope_spec_accepts_band() {
        let s = PerfSpec::envelope(5.0, 10.0);
        assert!(s.is_within(5.0));
        assert!(s.is_within(10.0));
        assert!(!s.is_within(4.9));
        assert_eq!(s.expected_rate(), 10.0);
    }

    #[test]
    fn higher_fidelity_flags_fewer_faults() {
        // The paper's fidelity trade-off: an observation of 6 units/s from a
        // component that legitimately ranges 5..10.
        let naive = PerfSpec::constant(10.0);
        let faithful = PerfSpec::envelope(5.0, 10.0);
        assert!(!naive.is_within(6.0));
        assert!(faithful.is_within(6.0));
    }

    #[test]
    fn severity_reflects_deficit() {
        let s = PerfSpec::constant(100.0);
        match s.classify(25.0) {
            HealthState::PerfFaulty { severity } => assert!((severity - 0.25).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn envelope_rejects_inverted_bounds() {
        let _ = PerfSpec::envelope(10.0, 5.0);
    }
}
