//! # stutter — the fail-stutter fault model
//!
//! This crate implements the contribution of *"Fail-Stutter Fault
//! Tolerance"* (Arpaci-Dusseau & Arpaci-Dusseau, HotOS VIII, 2001): a fault
//! model between fail-stop (too optimistic: components either work
//! perfectly or stop detectably) and Byzantine (too general to design
//! against). Under fail-stutter, a component may *also* be
//! **performance-faulty**: correct, but slower than its performance
//! specification.
//!
//! The pieces, mapped to the paper's §3.1:
//!
//! * [`fault`] — the taxonomy: correctness vs performance faults, and the
//!   three-valued [`fault::HealthState`].
//! * [`spec`] — performance specifications at three fidelities; the
//!   designer's trade-off between simple specs and frequent "faults".
//! * [`injector`] — generators for every performance-fault phenomenon class
//!   surveyed in the paper's §2 (fault masking, blackouts, erratic stutter,
//!   interference episodes, wear-out), composable and deterministic.
//! * [`detect`] — online detectors, including the paper's threshold rule
//!   `T` that separates "very slow" from "absolutely failed".
//! * [`registry`] — the notification rule: only *persistent* performance
//!   faults are exported as component "performance state".
//! * [`predict`] — erratic performance as an early indicator of impending
//!   absolute failure (§3.3 reliability claim).
//!
//! # Examples
//!
//! ```
//! use simcore::prelude::*;
//! use stutter::prelude::*;
//!
//! // A disk specified at 10 MB/s that develops a persistent 50% stutter.
//! let spec = PerfSpec::constant(10.0);
//! let injector = Injector::StaticSlowdown { factor: 0.5 };
//! let mut rng = Stream::from_seed(1).derive("disk");
//! let profile = injector.timeline(SimDuration::from_secs(3600), &mut rng);
//!
//! let mut detector = EwmaDetector::new(spec, 0.3);
//! let mut registry = Registry::new(SimDuration::from_secs(30));
//! let mut published = None;
//! for s in 0..120 {
//!     let now = SimTime::from_secs(s);
//!     let observed = 10.0 * profile.multiplier_at(now);
//!     let verdict = detector.observe(observed);
//!     if let Some(n) = registry.report(ComponentId(0), now, verdict) {
//!         published = Some(n);
//!     }
//! }
//! let n = published.expect("persistent stutter must be exported");
//! assert!(matches!(n.state, HealthState::PerfFaulty { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod detect;
pub mod events;
pub mod fault;
pub mod injector;
pub mod monitor;
pub mod oracle;
pub mod predict;
pub mod registry;
pub mod spec;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::detect::{EwmaDetector, PeerRelativeDetector, ThresholdDetector};
    pub use crate::events::{events_from_profile, fail_stop, perf_fault, profile_from_events};
    pub use crate::fault::{ComponentId, FaultEvent, FaultKind, HealthState};
    pub use crate::injector::{DurationDist, FactorDist, Injector, SlowdownProfile};
    pub use crate::monitor::{fit_spec, Monitor, MonitorEvent, SpecFidelity};
    pub use crate::oracle::{check_export_agreement, predict_export, ExportPrediction};
    pub use crate::predict::{FailurePredictor, Prediction, PredictorConfig, Trend};
    pub use crate::registry::{Notification, Registry};
    pub use crate::spec::PerfSpec;
}
