//! Monitoring glue: wiring specs, detectors, the registry, and the
//! predictor around a component.
//!
//! [`Monitor`] is the per-component pipeline a fail-stutter system runs:
//! feed it rate observations, and it keeps a smoothed verdict, reports to
//! the shared [`Registry`], and watches for the wear-out signature. It is
//! the piece the paper's §3.1 sketches as "allowing agents within the
//! system to readily learn of and react to these performance-faulty
//! constituents".
//!
//! [`fit_spec`] addresses the other §3.1 question — where do
//! performance specifications come from? — by fitting each spec fidelity
//! to a calibration sample (e.g. gauged at installation).

use crate::detect::EwmaDetector;
use crate::fault::{ComponentId, HealthState};
use crate::predict::{FailurePredictor, Prediction, PredictorConfig};
use crate::registry::{Notification, Registry};
use crate::spec::PerfSpec;
use simcore::time::SimTime;

/// What a single observation produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorEvent {
    /// The smoothed verdict after this observation.
    pub verdict: HealthState,
    /// A registry export, if this observation caused one.
    pub exported: Option<Notification>,
    /// A failure prediction, if this observation raised one.
    pub prediction: Option<Prediction>,
}

/// The full monitoring pipeline for one component.
#[derive(Clone, Debug)]
pub struct Monitor {
    id: ComponentId,
    detector: EwmaDetector,
    predictor: FailurePredictor,
    expected_rate: f64,
    observations: u64,
}

impl Monitor {
    /// Creates a monitor judging `id` against `spec`, smoothing with
    /// `alpha`, predicting with `predictor_config`.
    pub fn new(
        id: ComponentId,
        spec: PerfSpec,
        alpha: f64,
        predictor_config: PredictorConfig,
    ) -> Self {
        let expected_rate = spec.expected_rate();
        Monitor {
            id,
            detector: EwmaDetector::new(spec, alpha),
            predictor: FailurePredictor::new(predictor_config),
            expected_rate,
            observations: 0,
        }
    }

    /// The component being monitored.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Number of observations so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Feeds one observed rate at `now`, reporting to `registry`.
    pub fn observe(&mut self, now: SimTime, rate: f64, registry: &mut Registry) -> MonitorEvent {
        self.observations += 1;
        let verdict = if rate <= 0.0 { HealthState::Failed } else { self.detector.observe(rate) };
        let exported = registry.report(self.id, now, verdict);
        let prediction = self.predictor.observe(now, rate / self.expected_rate);
        MonitorEvent { verdict, exported, prediction }
    }

    /// The current smoothed verdict.
    pub fn verdict(&self) -> HealthState {
        self.detector.state()
    }

    /// The failure prediction, if one has fired.
    pub fn prediction(&self) -> Option<Prediction> {
        self.predictor.prediction()
    }
}

/// Fits a [`PerfSpec`] of the requested fidelity to calibration samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecFidelity {
    /// `Constant`: the sample mean with a tolerance band.
    Constant,
    /// `Distribution`: sample mean and coefficient of variation.
    Distribution,
    /// `Envelope`: the sample min–max band.
    Envelope,
}

/// Fits a spec from observed rates.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-positive rate (calibrate
/// against a working component).
pub fn fit_spec(samples: &[f64], fidelity: SpecFidelity) -> PerfSpec {
    assert!(!samples.is_empty(), "cannot fit a spec to no data");
    assert!(samples.iter().all(|&s| s > 0.0), "calibration samples must be positive");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    match fidelity {
        SpecFidelity::Constant => PerfSpec::constant(mean),
        SpecFidelity::Distribution => {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            // Guard against a zero-variance calibration run.
            PerfSpec::distribution(mean, cv.max(0.01), 3.0)
        }
        SpecFidelity::Envelope => {
            let min = samples.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
            let max = samples.iter().copied().max_by(f64::total_cmp).unwrap_or(f64::NEG_INFINITY);
            PerfSpec::envelope(min, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::{Injector, SlowdownProfile};
    use simcore::rng::Stream;
    use simcore::time::SimDuration;

    fn predictor_config() -> PredictorConfig {
        PredictorConfig {
            window: SimDuration::from_secs(300),
            min_samples: 6,
            level_threshold: 0.9,
            slope_threshold: 0.05,
            consecutive_below: 4,
        }
    }

    #[test]
    fn monitor_exports_persistent_faults_only() {
        let mut registry = Registry::new(SimDuration::from_secs(30));
        let mut m = Monitor::new(ComponentId(1), PerfSpec::constant(10.0), 0.5, predictor_config());
        // A brief dip...
        let mut exported = 0;
        for s in 0..10u64 {
            let rate = if s == 3 { 2.0 } else { 10.0 };
            if m.observe(SimTime::from_secs(s), rate, &mut registry).exported.is_some() {
                exported += 1;
            }
        }
        assert_eq!(exported, 0, "transient dip must not export");
        // ...then a persistent slowdown.
        for s in 10..120u64 {
            if m.observe(SimTime::from_secs(s), 3.0, &mut registry).exported.is_some() {
                exported += 1;
            }
        }
        assert_eq!(exported, 1, "persistent fault exports exactly once");
        assert!(matches!(registry.exported(ComponentId(1)), HealthState::PerfFaulty { .. }));
    }

    #[test]
    fn monitor_detects_absolute_failure_immediately() {
        let mut registry = Registry::new(SimDuration::from_secs(30));
        let mut m = Monitor::new(ComponentId(2), PerfSpec::constant(10.0), 0.5, predictor_config());
        m.observe(SimTime::ZERO, 10.0, &mut registry);
        let e = m.observe(SimTime::from_secs(1), 0.0, &mut registry);
        assert_eq!(e.verdict, HealthState::Failed);
        assert!(e.exported.is_some(), "fail-stop bypasses the persistence filter");
    }

    #[test]
    fn monitor_predicts_wearout() {
        let inj = Injector::Wearout {
            onset: SimTime::from_secs(300),
            ramp: SimDuration::from_secs(600),
            floor: 0.2,
            fail_after: Some(SimDuration::from_secs(300)),
        };
        let profile = inj.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
        let fail_at = profile.fail_at().expect("fails");
        let mut registry = Registry::new(SimDuration::from_secs(60));
        let mut m = Monitor::new(ComponentId(3), PerfSpec::constant(10.0), 0.3, predictor_config());
        let mut t = SimTime::ZERO;
        let mut fired = None;
        while t < fail_at {
            let e = m.observe(t, 10.0 * profile.multiplier_at(t), &mut registry);
            if let Some(p) = e.prediction {
                fired = Some(p);
            }
            t += SimDuration::from_secs(15);
        }
        let p = fired.expect("wearout must be predicted");
        assert!(p.at < fail_at);
        assert_eq!(m.prediction(), Some(p));
    }

    #[test]
    fn healthy_component_stays_quiet() {
        let profile = SlowdownProfile::nominal();
        let mut registry = Registry::new(SimDuration::from_secs(30));
        let mut m = Monitor::new(ComponentId(4), PerfSpec::constant(10.0), 0.3, predictor_config());
        for s in 0..600u64 {
            let t = SimTime::from_secs(s);
            let e = m.observe(t, 10.0 * profile.multiplier_at(t), &mut registry);
            assert_eq!(e.verdict, HealthState::Healthy);
            assert!(e.exported.is_none());
            assert!(e.prediction.is_none());
        }
        assert_eq!(m.observations(), 600);
    }

    #[test]
    fn fit_spec_constant_and_envelope() {
        let samples = vec![9.0, 10.0, 11.0, 10.0];
        let c = fit_spec(&samples, SpecFidelity::Constant);
        assert!((c.expected_rate() - 10.0).abs() < 1e-9);
        let e = fit_spec(&samples, SpecFidelity::Envelope);
        assert!(e.is_within(9.0));
        assert!(!e.is_within(8.9));
    }

    #[test]
    fn fit_spec_distribution_tracks_cv() {
        // Noisy calibration → wide band; quiet calibration → tight band.
        let noisy = vec![5.0, 15.0, 5.0, 15.0];
        let quiet = vec![9.9, 10.1, 9.9, 10.1];
        let sn = fit_spec(&noisy, SpecFidelity::Distribution);
        let sq = fit_spec(&quiet, SpecFidelity::Distribution);
        assert!(sn.fault_floor() < sq.fault_floor());
        assert!(sq.is_within(9.8));
    }

    #[test]
    fn fitted_constant_spec_is_strictest() {
        // The paper's trade-off, via fitting: the naive constant spec has
        // the highest fault floor on a spread-out calibration — it will
        // flag behaviour the richer specs accept.
        let samples = vec![6.0, 8.0, 10.0, 12.0];
        let c = fit_spec(&samples, SpecFidelity::Constant);
        let d = fit_spec(&samples, SpecFidelity::Distribution);
        let e = fit_spec(&samples, SpecFidelity::Envelope);
        assert!(c.fault_floor() >= e.fault_floor() - 1e-9);
        assert!(c.fault_floor() >= d.fault_floor() - 1e-9);
        // Both fitted rich specs accept the calibration minimum; the
        // constant spec rejects it.
        assert!(e.is_within(6.0));
        assert!(d.is_within(6.0));
        assert!(!c.is_within(6.0));
    }

    #[test]
    #[should_panic]
    fn fit_spec_rejects_empty() {
        let _ = fit_spec(&[], SpecFidelity::Constant);
    }
}
