//! Online detection of performance and correctness faults.
//!
//! Paper §3.1 raises two detection problems this module solves:
//!
//! 1. **The threshold rule.** "If the disk request takes longer than `T`
//!    seconds to service, consider it absolutely failed. Performance faults
//!    fill in the rest of the regime when the device is working." —
//!    [`ThresholdDetector`] implements exactly this split.
//! 2. **Ongoing classification.** A component should be judged against its
//!    [`PerfSpec`] using smoothed observations ([`EwmaDetector`]) or against
//!    its peers when no trustworthy spec exists ([`PeerRelativeDetector`] —
//!    the approach a parallel program actually has available, since "a
//!    performance failure from the perspective of one component may not
//!    manifest itself to others").

use crate::fault::HealthState;
use crate::spec::PerfSpec;
use simcore::stats::Ewma;
use simcore::time::SimDuration;

/// Classifies individual request latencies using the paper's threshold `T`.
///
/// A request slower than `T` marks the component absolutely failed; a
/// request slower than `degraded` (but under `T`) marks it
/// performance-faulty; anything else is healthy.
#[derive(Clone, Debug)]
pub struct ThresholdDetector {
    degraded: SimDuration,
    failed: SimDuration,
    state: HealthState,
    observations: u64,
}

impl ThresholdDetector {
    /// Creates a detector with a degraded threshold and the absolute
    /// threshold `T = failed`.
    ///
    /// # Panics
    ///
    /// Panics unless `degraded < failed`.
    pub fn new(degraded: SimDuration, failed: SimDuration) -> Self {
        assert!(degraded < failed, "degraded threshold must be below the failure threshold");
        ThresholdDetector { degraded, failed, state: HealthState::Healthy, observations: 0 }
    }

    /// Feeds one request latency and returns the updated health state.
    ///
    /// Failure is sticky: once a latency crosses `T` the component stays
    /// failed (fail-stop components do not come back).
    pub fn observe(&mut self, latency: SimDuration) -> HealthState {
        self.observations += 1;
        if matches!(self.state, HealthState::Failed) {
            return self.state;
        }
        self.state = if latency >= self.failed {
            HealthState::Failed
        } else if latency >= self.degraded {
            let severity =
                (self.degraded.as_secs_f64() / latency.as_secs_f64()).clamp(0.000_001, 0.999_999);
            HealthState::PerfFaulty { severity }
        } else {
            HealthState::Healthy
        };
        self.state
    }

    /// The current health verdict.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Number of latencies observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// Classifies a component by comparing its smoothed observed rate against a
/// [`PerfSpec`].
#[derive(Clone, Debug)]
pub struct EwmaDetector {
    spec: PerfSpec,
    ewma: Ewma,
}

impl EwmaDetector {
    /// Creates a detector judging against `spec`, smoothing with `alpha`.
    pub fn new(spec: PerfSpec, alpha: f64) -> Self {
        EwmaDetector { spec, ewma: Ewma::new(alpha) }
    }

    /// Feeds one observed rate and returns the updated health state.
    pub fn observe(&mut self, rate: f64) -> HealthState {
        let smoothed = self.ewma.observe(rate);
        self.spec.classify(smoothed)
    }

    /// The current smoothed rate, if any observation has been made.
    pub fn smoothed_rate(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// The current verdict (healthy before any observation).
    pub fn state(&self) -> HealthState {
        match self.ewma.value() {
            None => HealthState::Healthy,
            Some(rate) => self.spec.classify(rate),
        }
    }

    /// The specification being enforced.
    pub fn spec(&self) -> &PerfSpec {
        &self.spec
    }
}

/// Flags components that under-perform relative to their peers.
///
/// Feed one rate per component per round; a component is performance-faulty
/// when its rate falls below `fraction` of the round's median. This needs no
/// a-priori spec, making it usable in exactly the situations the paper's
/// survey describes (identical parts behaving differently).
#[derive(Clone, Debug)]
pub struct PeerRelativeDetector {
    fraction: f64,
}

impl PeerRelativeDetector {
    /// Creates a detector flagging rates below `fraction · median(peers)`.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1], got {fraction}");
        PeerRelativeDetector { fraction }
    }

    /// Classifies every component given this round's per-component rates.
    ///
    /// Returns one [`HealthState`] per input, in order. Zero rates are
    /// classified failed. With fewer than three components the median is
    /// too fragile, so everything non-zero is reported healthy.
    pub fn classify_round(&self, rates: &[f64]) -> Vec<HealthState> {
        let mut sorted: Vec<f64> = rates.iter().copied().filter(|r| *r > 0.0).collect();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median = if sorted.len() >= 3 { sorted[mid] } else { 0.0 };
        rates
            .iter()
            .map(|&r| {
                if r <= 0.0 {
                    HealthState::Failed
                } else if median > 0.0 && r < self.fraction * median {
                    HealthState::PerfFaulty {
                        severity: (r / median).clamp(f64::MIN_POSITIVE, 0.999_999),
                    }
                } else {
                    HealthState::Healthy
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_detector_three_regimes() {
        let mut d = ThresholdDetector::new(SimDuration::from_millis(50), SimDuration::from_secs(5));
        assert_eq!(d.observe(SimDuration::from_millis(10)), HealthState::Healthy);
        match d.observe(SimDuration::from_millis(100)) {
            HealthState::PerfFaulty { severity } => assert!((severity - 0.5).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
        assert_eq!(d.observe(SimDuration::from_secs(6)), HealthState::Failed);
        assert_eq!(d.observations(), 3);
    }

    #[test]
    fn threshold_failure_is_sticky() {
        let mut d = ThresholdDetector::new(SimDuration::from_millis(50), SimDuration::from_secs(1));
        d.observe(SimDuration::from_secs(2));
        assert_eq!(d.observe(SimDuration::from_millis(1)), HealthState::Failed);
        assert_eq!(d.state(), HealthState::Failed);
    }

    #[test]
    fn ewma_detector_smooths_transients() {
        // Spec 10 u/s with 90% floor; heavy smoothing.
        let mut d = EwmaDetector::new(PerfSpec::constant(10.0), 0.1);
        for _ in 0..10 {
            d.observe(10.0);
        }
        // One bad sample must not flag the component...
        assert_eq!(d.observe(2.0), HealthState::Healthy);
        // ...but a persistent slowdown must.
        let mut state = d.state();
        for _ in 0..50 {
            state = d.observe(2.0);
        }
        assert!(matches!(state, HealthState::PerfFaulty { .. }), "{state:?}");
    }

    #[test]
    fn ewma_detector_initial_state_healthy() {
        let d = EwmaDetector::new(PerfSpec::constant(10.0), 0.5);
        assert_eq!(d.state(), HealthState::Healthy);
        assert_eq!(d.smoothed_rate(), None);
        assert_eq!(*d.spec(), PerfSpec::constant(10.0));
    }

    #[test]
    fn peer_relative_flags_the_straggler() {
        let d = PeerRelativeDetector::new(0.8);
        let states = d.classify_round(&[10.0, 10.1, 9.9, 10.0, 5.0]);
        assert!(states[..4].iter().all(|s| matches!(s, HealthState::Healthy)));
        assert!(matches!(states[4], HealthState::PerfFaulty { .. }));
    }

    #[test]
    fn peer_relative_zero_rate_is_failed() {
        let d = PeerRelativeDetector::new(0.8);
        let states = d.classify_round(&[10.0, 0.0, 10.0, 10.0]);
        assert_eq!(states[1], HealthState::Failed);
    }

    #[test]
    fn peer_relative_small_groups_stay_healthy() {
        let d = PeerRelativeDetector::new(0.8);
        let states = d.classify_round(&[10.0, 1.0]);
        assert!(states.iter().all(|s| matches!(s, HealthState::Healthy)));
    }

    #[test]
    fn peer_relative_empty_round_is_empty() {
        let d = PeerRelativeDetector::new(0.8);
        assert!(d.classify_round(&[]).is_empty());
    }

    #[test]
    fn peer_relative_all_equal_rates_are_healthy() {
        let d = PeerRelativeDetector::new(1.0);
        // Even at the tightest fraction, equal peers are all healthy: the
        // faulty test is strict (`r < fraction · median`).
        for n in [3usize, 4, 9] {
            let states = d.classify_round(&vec![7.5; n]);
            assert_eq!(states.len(), n);
            assert!(states.iter().all(|s| matches!(s, HealthState::Healthy)), "n={n}");
        }
    }

    #[test]
    fn peer_relative_single_peer_never_faulty() {
        let d = PeerRelativeDetector::new(0.8);
        // One live component has no peers to be judged against: healthy
        // however slow, failed only at zero.
        assert_eq!(d.classify_round(&[0.001]), vec![HealthState::Healthy]);
        assert_eq!(d.classify_round(&[0.0]), vec![HealthState::Failed]);
    }

    #[test]
    fn peer_relative_dead_peers_do_not_skew_the_median() {
        let d = PeerRelativeDetector::new(0.8);
        // Three dead components must not drag the median to zero and mask
        // the live straggler.
        let states = d.classify_round(&[10.0, 10.0, 10.0, 5.0, 0.0, 0.0, 0.0]);
        assert!(matches!(states[3], HealthState::PerfFaulty { .. }), "{states:?}");
        assert!(states[4..].iter().all(|s| matches!(s, HealthState::Failed)));
    }

    #[test]
    fn peer_relative_verdicts_are_nan_free_and_severities_bounded() {
        let d = PeerRelativeDetector::new(0.8);
        // Extreme but finite inputs: tiny, huge, and zero rates mixed.
        let rates = [f64::MIN_POSITIVE, 1e300, 10.0, 10.0, 10.0, 0.0, 1e-12];
        for s in d.classify_round(&rates) {
            if let HealthState::PerfFaulty { severity } = s {
                assert!(severity.is_finite());
                assert!((f64::MIN_POSITIVE..1.0).contains(&severity), "severity {severity}");
            }
        }
    }

    #[test]
    fn peer_relative_median_robust_to_one_outlier() {
        let d = PeerRelativeDetector::new(0.5);
        // One absurdly fast peer must not drag everyone into faultiness.
        let states = d.classify_round(&[10.0, 10.0, 10.0, 1000.0]);
        assert!(states[..3].iter().all(|s| matches!(s, HealthState::Healthy)));
    }
}
