//! Predicts what the detector/registry pipeline *must* do on a timeline.
//!
//! The campaign harness runs a real [`crate::detect::EwmaDetector`] feeding
//! a real [`crate::registry::Registry`] over an injected
//! [`crate::injector::SlowdownProfile`], then checks the observed behaviour
//! against a prediction computed here directly from the sampled timeline.
//! The prediction is deliberately three-valued: the notification rule has a
//! grey zone (short dips, smoothing lag, hysteresis) where both exporting
//! and staying silent are acceptable, and the oracle only constrains the
//! runs that fall outside it.
//!
//! Soundness contract for [`predict_export`], given observations sampled on
//! the *same grid* the detector sees:
//!
//! * `MustStaySilent` — every sampled multiplier is at or above the spec
//!   tolerance. An EWMA is a convex combination of its observations, so the
//!   smoothed rate can never fall below the fault floor and the registry
//!   never hears a faulty verdict.
//! * `MustExport` — some window of `settle + persistence + 1` consecutive
//!   samples sits at or below `tolerance − margin`. The caller must choose
//!   `settle` and `margin` so the detector's smoothing provably converges
//!   inside the window: for an EWMA with factor `alpha`,
//!   `(1 − alpha)^settle · max_multiplier ≤ margin` suffices. After the
//!   settle prefix the verdict is pinned faulty for more than the
//!   registry's persistence window, so a notification is mandatory.
//! * `Unconstrained` — anything else; the run is not judged.

use crate::injector::SlowdownProfile;
use simcore::time::{SimDuration, SimTime};

/// What the notification pipeline is required to do for one timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportPrediction {
    /// A persistent fault is present; the registry must publish it.
    MustExport,
    /// The component never leaves spec; any notification is a false alarm.
    MustStaySilent,
    /// Grey zone (transient dips, settle-length windows): not judged.
    Unconstrained,
}

/// A failed oracle check: which oracle, and what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable identifier of the oracle that fired.
    pub oracle: &'static str,
    /// Human-readable account of expected vs measured.
    pub detail: String,
}

/// Samples `profile.multiplier_at` every `step` over `[0, horizon]` — the
/// exact observation grid a 1-per-`step` monitor sees (a failed component
/// samples as multiplier 0).
pub fn sample_multipliers(
    profile: &SlowdownProfile,
    step: SimDuration,
    horizon: SimDuration,
) -> Vec<f64> {
    assert!(step > SimDuration::ZERO, "sampling step must be positive");
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + horizon;
    while t <= end {
        out.push(profile.multiplier_at(t));
        t += step;
    }
    out
}

/// Classifies a sampled timeline against the notification rule.
///
/// `tolerance` is the spec's in-spec multiplier floor (a
/// [`crate::spec::PerfSpec::Constant`] with tolerance `τ` flags observed
/// rates below `τ · nominal`). `persistence_samples` is the registry window
/// expressed in samples, `settle_samples` the smoothing-convergence
/// allowance, `margin` the depth below tolerance a dip must reach before we
/// insist the detector sees it. See the module docs for the soundness
/// contract.
pub fn predict_export(
    samples: &[f64],
    tolerance: f64,
    persistence_samples: usize,
    settle_samples: usize,
    margin: f64,
) -> ExportPrediction {
    assert!(margin > 0.0, "margin must be positive");
    if samples.iter().all(|&m| m >= tolerance) {
        return ExportPrediction::MustStaySilent;
    }
    let deep = tolerance - margin;
    let needed = settle_samples + persistence_samples + 1;
    let mut run = 0usize;
    for &m in samples {
        if m <= deep {
            run += 1;
            if run >= needed {
                return ExportPrediction::MustExport;
            }
        } else {
            run = 0;
        }
    }
    ExportPrediction::Unconstrained
}

/// Checks a real pipeline run against the prediction.
///
/// `published_faulty` is whether the registry published any performance-
/// fault or failure notification for the component during the run.
pub fn check_export_agreement(
    prediction: ExportPrediction,
    published_faulty: bool,
) -> Result<(), Violation> {
    match prediction {
        ExportPrediction::MustExport if !published_faulty => Err(Violation {
            oracle: "stutter/must-export",
            detail: "persistent fault in timeline but registry published nothing".to_string(),
        }),
        ExportPrediction::MustStaySilent if published_faulty => Err(Violation {
            oracle: "stutter/must-stay-silent",
            detail: "in-spec timeline but registry published a fault".to_string(),
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::EwmaDetector;
    use crate::fault::{ComponentId, HealthState};
    use crate::injector::Injector;
    use crate::registry::Registry;
    use crate::spec::PerfSpec;
    use simcore::rng::Stream;

    const STEP: SimDuration = SimDuration::from_secs(1);
    const HORIZON: SimDuration = SimDuration::from_secs(600);

    fn run_pipeline(profile: &SlowdownProfile, nominal: f64, tolerance: f64) -> bool {
        let spec = PerfSpec::constant_with_tolerance(nominal, tolerance);
        let mut det = EwmaDetector::new(spec, 0.3);
        let mut reg = Registry::new(SimDuration::from_secs(30));
        for (k, m) in sample_multipliers(profile, STEP, HORIZON).iter().enumerate() {
            let verdict = det.observe(nominal * m);
            reg.report(ComponentId(0), SimTime::from_secs(k as u64), verdict);
        }
        reg.notifications().iter().any(|n| !matches!(n.state, HealthState::Healthy))
    }

    fn predict(profile: &SlowdownProfile, tolerance: f64) -> ExportPrediction {
        let samples = sample_multipliers(profile, STEP, HORIZON);
        // alpha = 0.3, settle = 40 → 0.7^40 ≈ 6e-7 ≪ margin.
        predict_export(&samples, tolerance, 31, 40, 0.05)
    }

    #[test]
    fn constant_slowdown_must_export_and_does() {
        let profile =
            Injector::StaticSlowdown { factor: 0.5 }.timeline(HORIZON, &mut Stream::from_seed(3));
        assert_eq!(predict(&profile, 0.9), ExportPrediction::MustExport);
        assert!(run_pipeline(&profile, 10.0, 0.9));
        check_export_agreement(ExportPrediction::MustExport, true).unwrap();
    }

    #[test]
    fn healthy_timeline_must_stay_silent_and_does() {
        let profile = Injector::NoFault.timeline(HORIZON, &mut Stream::from_seed(4));
        assert_eq!(predict(&profile, 0.9), ExportPrediction::MustStaySilent);
        assert!(!run_pipeline(&profile, 10.0, 0.9));
        check_export_agreement(ExportPrediction::MustStaySilent, false).unwrap();
    }

    #[test]
    fn shallow_slowdown_is_unconstrained() {
        // Below tolerance but inside the margin: too shallow to insist on.
        let profile =
            Injector::StaticSlowdown { factor: 0.87 }.timeline(HORIZON, &mut Stream::from_seed(5));
        assert_eq!(predict(&profile, 0.9), ExportPrediction::Unconstrained);
    }

    #[test]
    fn disagreements_are_violations() {
        assert!(check_export_agreement(ExportPrediction::MustExport, false).is_err());
        assert!(check_export_agreement(ExportPrediction::MustStaySilent, true).is_err());
        assert!(check_export_agreement(ExportPrediction::Unconstrained, true).is_ok());
        assert!(check_export_agreement(ExportPrediction::Unconstrained, false).is_ok());
    }
}
