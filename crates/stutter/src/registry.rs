//! The performance-state registry: the paper's notification rule.
//!
//! Paper §3.1: "we do not believe that other components need be informed of
//! all performance failures when they occur ... However, if a component is
//! persistently performance-faulty, it may be useful for a system to export
//! information about component 'performance state', allowing agents within
//! the system to readily learn of and react to these performance-faulty
//! constituents."
//!
//! [`Registry`] implements that rule: verdicts are reported locally on
//! every observation, but a component's exported state only changes after
//! the verdict has *persisted* for a configurable window. Transient
//! stutters therefore generate no notifications, while long-lived ones are
//! published exactly once per state change.

use std::collections::BTreeMap;

use crate::fault::{ComponentId, HealthState};
use simcore::time::{SimDuration, SimTime};

/// A published state-change notification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Notification {
    /// The component whose exported state changed.
    pub component: ComponentId,
    /// When the change was published.
    pub at: SimTime,
    /// The newly exported state.
    pub state: HealthState,
}

#[derive(Clone, Debug)]
struct Entry {
    exported: HealthState,
    // The verdict we are waiting to confirm, and since when it has held.
    candidate: HealthState,
    candidate_since: SimTime,
}

/// Tracks per-component verdicts and exports only persistent ones.
#[derive(Clone, Debug)]
pub struct Registry {
    persistence: SimDuration,
    entries: BTreeMap<ComponentId, Entry>,
    log: Vec<Notification>,
    suppressed: u64,
}

impl Registry {
    /// Creates a registry that exports a verdict only after it has held
    /// continuously for `persistence`.
    pub fn new(persistence: SimDuration) -> Self {
        Registry { persistence, entries: BTreeMap::new(), log: Vec::new(), suppressed: 0 }
    }

    fn same_class(a: HealthState, b: HealthState) -> bool {
        a.badness() == b.badness()
    }

    /// Reports a local verdict for `component` at time `now`.
    ///
    /// Returns `Some(notification)` if this report caused the exported
    /// state to change (i.e. the verdict class has persisted long enough),
    /// `None` otherwise. Correctness failures are exported immediately —
    /// fail-stop detection must not be delayed by the stutter filter.
    pub fn report(
        &mut self,
        component: ComponentId,
        now: SimTime,
        verdict: HealthState,
    ) -> Option<Notification> {
        let entry = self.entries.entry(component).or_insert(Entry {
            exported: HealthState::Healthy,
            candidate: HealthState::Healthy,
            candidate_since: now,
        });

        // A standing candidate that differs from the exported state and has
        // already outlived the persistence window is published the moment a
        // report of yet another class ends it — not silently discarded.
        // With sparse reporting a recovery to Ok could otherwise hold for
        // hours and never export: faulty verdicts before and after it would
        // fold the exported state straight back to faulty.
        let mut deferred = None;
        if !Self::same_class(entry.candidate, entry.exported)
            && !Self::same_class(verdict, entry.candidate)
            && now - entry.candidate_since >= self.persistence
        {
            entry.exported = entry.candidate;
            let n = Notification { component, at: now, state: entry.exported };
            self.log.push(n);
            deferred = Some(n);
        }

        if !Self::same_class(verdict, entry.candidate) {
            entry.candidate = verdict;
            entry.candidate_since = now;
        } else {
            // Keep the freshest severity for an unchanged class.
            entry.candidate = verdict;
        }

        if Self::same_class(entry.exported, entry.candidate) {
            // Refresh exported severity silently; no notification.
            entry.exported = entry.candidate;
            return deferred;
        }

        let held = now - entry.candidate_since;
        let publish = matches!(verdict, HealthState::Failed) || held >= self.persistence;
        if publish {
            entry.exported = entry.candidate;
            let n = Notification { component, at: now, state: entry.exported };
            self.log.push(n);
            Some(n)
        } else {
            self.suppressed += 1;
            deferred
        }
    }

    /// The exported state of a component (healthy if never reported).
    pub fn exported(&self, component: ComponentId) -> HealthState {
        self.entries.get(&component).map_or(HealthState::Healthy, |e| e.exported)
    }

    /// All components whose exported state is performance-faulty or failed.
    pub fn faulty_components(&self) -> Vec<(ComponentId, HealthState)> {
        self.entries
            .iter()
            .filter(|(_, e)| !matches!(e.exported, HealthState::Healthy))
            .map(|(&id, e)| (id, e.exported))
            .collect()
    }

    /// Every notification published, in order.
    pub fn notifications(&self) -> &[Notification] {
        &self.log
    }

    /// How many reports were swallowed by the persistence filter.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ComponentId = ComponentId(1);

    fn registry() -> Registry {
        Registry::new(SimDuration::from_secs(10))
    }

    fn perf(severity: f64) -> HealthState {
        HealthState::PerfFaulty { severity }
    }

    #[test]
    fn transient_stutter_is_suppressed() {
        let mut r = registry();
        assert_eq!(r.report(C, SimTime::from_secs(0), perf(0.5)), None);
        assert_eq!(r.report(C, SimTime::from_secs(5), HealthState::Healthy), None);
        assert_eq!(r.exported(C), HealthState::Healthy);
        assert_eq!(r.suppressed(), 1);
        assert!(r.notifications().is_empty());
    }

    #[test]
    fn persistent_stutter_is_published_once() {
        let mut r = registry();
        r.report(C, SimTime::from_secs(0), perf(0.5));
        r.report(C, SimTime::from_secs(5), perf(0.5));
        let n = r.report(C, SimTime::from_secs(10), perf(0.4));
        assert!(n.is_some(), "persisted 10 s, must publish");
        assert_eq!(r.exported(C), perf(0.4));
        // Further reports of the same class are silent severity refreshes.
        assert_eq!(r.report(C, SimTime::from_secs(11), perf(0.3)), None);
        assert_eq!(r.exported(C), perf(0.3));
        assert_eq!(r.notifications().len(), 1);
    }

    #[test]
    fn recovery_also_requires_persistence() {
        let mut r = registry();
        r.report(C, SimTime::from_secs(0), perf(0.5));
        r.report(C, SimTime::from_secs(10), perf(0.5));
        assert!(!matches!(r.exported(C), HealthState::Healthy));
        // A single healthy sample must not flip the exported state back.
        assert_eq!(r.report(C, SimTime::from_secs(11), HealthState::Healthy), None);
        assert!(!matches!(r.exported(C), HealthState::Healthy));
        // Ten healthy seconds do.
        let n = r.report(C, SimTime::from_secs(21), HealthState::Healthy);
        assert!(n.is_some());
        assert_eq!(r.exported(C), HealthState::Healthy);
    }

    #[test]
    fn failure_bypasses_persistence() {
        let mut r = registry();
        let n = r.report(C, SimTime::from_secs(1), HealthState::Failed);
        assert_eq!(
            n,
            Some(Notification {
                component: C,
                at: SimTime::from_secs(1),
                state: HealthState::Failed
            })
        );
        assert_eq!(r.exported(C), HealthState::Failed);
    }

    #[test]
    fn candidate_reset_on_class_change() {
        let mut r = registry();
        r.report(C, SimTime::from_secs(0), perf(0.5));
        r.report(C, SimTime::from_secs(8), HealthState::Healthy);
        // Faulty again: the 8 s of fault history must not carry over.
        r.report(C, SimTime::from_secs(9), perf(0.5));
        assert_eq!(r.report(C, SimTime::from_secs(17), perf(0.5)), None);
        assert!(r.report(C, SimTime::from_secs(19), perf(0.5)).is_some());
    }

    #[test]
    fn sparse_reports_still_publish_both_edges() {
        // Fault confirmed, then a recovery witnessed by a *single* report
        // that holds far past the window before the next faulty verdict:
        // the recovery must still export, as a pair of notifications.
        let mut r = registry();
        r.report(C, SimTime::from_secs(0), perf(0.5));
        assert!(r.report(C, SimTime::from_secs(10), perf(0.5)).is_some());
        assert_eq!(r.report(C, SimTime::from_secs(11), HealthState::Healthy), None);
        // 89 healthy seconds later the fault returns. Before the fix this
        // silently folded exported straight back to PerfFaulty and the
        // recovery interval was never published.
        let n = r.report(C, SimTime::from_secs(100), perf(0.5));
        assert_eq!(
            n,
            Some(Notification {
                component: C,
                at: SimTime::from_secs(100),
                state: HealthState::Healthy
            }),
            "the out-lived recovery candidate must publish"
        );
        assert_eq!(r.exported(C), HealthState::Healthy, "new fault not yet persistent");
        // And the returning fault publishes once it persists in turn.
        assert!(r.report(C, SimTime::from_secs(110), perf(0.5)).is_some());
        let classes: Vec<_> = r.notifications().iter().map(|n| n.state.badness()).collect();
        assert_eq!(classes.len(), 3, "fault, recovery, fault again: {classes:?}");
    }

    #[test]
    fn deferred_recovery_with_failed_verdict_logs_both() {
        let mut r = registry();
        r.report(C, SimTime::from_secs(0), perf(0.5));
        r.report(C, SimTime::from_secs(10), perf(0.5));
        r.report(C, SimTime::from_secs(11), HealthState::Healthy);
        // The component dies outright after a long silent recovery: the
        // failure returns (it bypasses persistence) and the recovery edge
        // is still logged before it.
        let n = r.report(C, SimTime::from_secs(60), HealthState::Failed);
        assert_eq!(n.map(|n| n.state), Some(HealthState::Failed));
        let states: Vec<_> = r.notifications().iter().map(|n| n.state).collect();
        assert!(
            matches!(states[states.len() - 2], HealthState::Healthy),
            "recovery logged before the failure: {states:?}"
        );
    }

    #[test]
    fn faulty_components_lists_exported_only() {
        let mut r = registry();
        let a = ComponentId(1);
        let b = ComponentId(2);
        r.report(a, SimTime::from_secs(0), perf(0.5));
        r.report(a, SimTime::from_secs(10), perf(0.5));
        r.report(b, SimTime::from_secs(0), perf(0.5)); // transient
        let faulty = r.faulty_components();
        assert_eq!(faulty.len(), 1);
        assert_eq!(faulty[0].0, a);
    }
}
