//! Bridging fault events and timelines.
//!
//! Experiment drivers sometimes want to specify faults as an explicit list
//! of [`FaultEvent`]s ("pair 3 stutters at 40% from t=100 for 60 s; disk 7
//! fail-stops at t=500") rather than as stochastic injectors.
//! [`profile_from_events`] compiles such a list into a
//! [`SlowdownProfile`]; [`events_from_profile`] recovers the event view of
//! a timeline for logging and assertions.

use crate::fault::{ComponentId, FaultEvent, FaultKind};
use crate::injector::SlowdownProfile;
use simcore::time::{SimDuration, SimTime};

/// Compiles a list of fault events for one component into a timeline.
///
/// Overlapping performance faults multiply (a component under two
/// independent 50% faults runs at 25%). A correctness fault makes the
/// profile fail at the earliest such event's start; its duration is
/// ignored (fail-stop components do not come back).
pub fn profile_from_events(events: &[FaultEvent]) -> SlowdownProfile {
    let mut profile = SlowdownProfile::nominal();
    for e in events {
        match e.kind {
            FaultKind::Correctness => {
                profile = profile.with_failure_at(e.at);
            }
            FaultKind::Performance { severity } => {
                let mut bps: Vec<(SimTime, f64)> = vec![(SimTime::ZERO, 1.0)];
                if e.at > SimTime::ZERO {
                    bps.push((e.at, severity));
                } else {
                    bps[0].1 = severity;
                }
                if let Some(d) = e.duration {
                    let end = e.at + d;
                    if end > e.at {
                        bps.push((end, 1.0));
                    }
                }
                profile = profile.compose(&SlowdownProfile::from_breakpoints(bps));
            }
        }
    }
    profile
}

/// Recovers the event view of a timeline: one performance-fault event per
/// sub-nominal segment (with the segment's multiplier as severity) and a
/// correctness event at the failure instant, if any.
pub fn events_from_profile(component: ComponentId, profile: &SlowdownProfile) -> Vec<FaultEvent> {
    let mut events = Vec::new();
    let segments = profile.segments();
    for (i, &(start, m)) in segments.iter().enumerate() {
        if let Some(f) = profile.fail_at() {
            if start >= f {
                break;
            }
        }
        if m >= 1.0 {
            continue;
        }
        // The segment ends at the next breakpoint, the failure instant, or
        // never.
        let natural_end = segments.get(i + 1).map(|&(t, _)| t);
        let end = match (natural_end, profile.fail_at()) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (Some(n), None) => Some(n),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        };
        let duration = end.map(|e| e - start);
        let kind = if m > 0.0 {
            FaultKind::Performance { severity: m }
        } else {
            // A zero-rate segment with an end is a blackout: model it as a
            // performance fault of (near-)zero severity for reporting.
            FaultKind::Performance { severity: f64::MIN_POSITIVE }
        };
        events.push(FaultEvent { component, at: start, duration, kind });
    }
    if let Some(f) = profile.fail_at() {
        events.push(FaultEvent { component, at: f, duration: None, kind: FaultKind::Correctness });
    }
    events
}

/// Convenience constructor: a performance fault on `component`.
pub fn perf_fault(
    component: ComponentId,
    at: SimTime,
    duration: Option<SimDuration>,
    severity: f64,
) -> FaultEvent {
    FaultEvent { component, at, duration, kind: FaultKind::performance(severity) }
}

/// Convenience constructor: a fail-stop on `component`.
pub fn fail_stop(component: ComponentId, at: SimTime) -> FaultEvent {
    FaultEvent { component, at, duration: None, kind: FaultKind::Correctness }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ComponentId = ComponentId(0);

    #[test]
    fn single_bounded_fault_round_trips() {
        let events =
            vec![perf_fault(C, SimTime::from_secs(100), Some(SimDuration::from_secs(60)), 0.4)];
        let p = profile_from_events(&events);
        assert_eq!(p.multiplier_at(SimTime::from_secs(50)), 1.0);
        assert_eq!(p.multiplier_at(SimTime::from_secs(130)), 0.4);
        assert_eq!(p.multiplier_at(SimTime::from_secs(161)), 1.0);

        let back = events_from_profile(C, &p);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].at, SimTime::from_secs(100));
        assert_eq!(back[0].duration, Some(SimDuration::from_secs(60)));
        assert!(
            matches!(back[0].kind, FaultKind::Performance { severity } if (severity - 0.4).abs() < 1e-12)
        );
    }

    #[test]
    fn overlapping_faults_multiply() {
        let events = vec![
            perf_fault(C, SimTime::from_secs(0), None, 0.5),
            perf_fault(C, SimTime::from_secs(10), Some(SimDuration::from_secs(10)), 0.5),
        ];
        let p = profile_from_events(&events);
        assert_eq!(p.multiplier_at(SimTime::from_secs(5)), 0.5);
        assert_eq!(p.multiplier_at(SimTime::from_secs(15)), 0.25);
        assert_eq!(p.multiplier_at(SimTime::from_secs(25)), 0.5);
    }

    #[test]
    fn correctness_fault_cuts_the_timeline() {
        let events = vec![
            perf_fault(C, SimTime::from_secs(10), None, 0.6),
            fail_stop(C, SimTime::from_secs(100)),
        ];
        let p = profile_from_events(&events);
        assert_eq!(p.fail_at(), Some(SimTime::from_secs(100)));
        assert_eq!(p.multiplier_at(SimTime::from_secs(200)), 0.0);

        let back = events_from_profile(C, &p);
        assert!(matches!(back.last().expect("events").kind, FaultKind::Correctness));
        // The open-ended performance fault is truncated at the failure.
        let pf = &back[0];
        assert_eq!(pf.duration, Some(SimDuration::from_secs(90)));
    }

    #[test]
    fn fault_active_at_zero_applies_immediately() {
        let events = vec![perf_fault(C, SimTime::ZERO, None, 0.3)];
        let p = profile_from_events(&events);
        assert_eq!(p.multiplier_at(SimTime::ZERO), 0.3);
    }

    #[test]
    fn empty_event_list_is_nominal() {
        let p = profile_from_events(&[]);
        assert_eq!(p, SlowdownProfile::nominal());
        assert!(events_from_profile(C, &p).is_empty());
    }

    #[test]
    fn earliest_correctness_fault_wins() {
        let events =
            vec![fail_stop(C, SimTime::from_secs(200)), fail_stop(C, SimTime::from_secs(100))];
        let p = profile_from_events(&events);
        assert_eq!(p.fail_at(), Some(SimTime::from_secs(100)));
    }
}
