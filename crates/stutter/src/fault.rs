//! The fail-stutter fault taxonomy.
//!
//! The model's central move (paper §3.1) is to split component misbehaviour
//! into two classes:
//!
//! * **Correctness faults** — the component's behaviour is no longer
//!   consistent with its specification; under fail-stop it halts in a
//!   detectable way.
//! * **Performance faults** — the component still produces correct results,
//!   but at less than its *performance specification*.
//!
//! A component is therefore in one of three [`HealthState`]s, not two. The
//! in-between state is the whole point: "there is much to be gained by
//! utilizing performance-faulty components" (§3.1).

use core::fmt;
use simcore::time::{SimDuration, SimTime};

/// Identifies a component within a system (disk, link, node, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The kind of fault a component exhibits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: the component has stopped and other components can detect
    /// that it stopped.
    Correctness,
    /// Fail-stutter: the component works correctly but delivers only
    /// `severity` (in `(0, 1)`) of its specified performance.
    Performance {
        /// Fraction of specified performance actually delivered.
        severity: f64,
    },
}

impl FaultKind {
    /// Creates a performance fault delivering `severity` of spec.
    ///
    /// # Panics
    ///
    /// Panics if `severity` is not within `(0.0, 1.0)` — zero delivered
    /// performance is indistinguishable from a stop and must be modelled as
    /// [`FaultKind::Correctness`].
    pub fn performance(severity: f64) -> Self {
        assert!(
            severity > 0.0 && severity < 1.0,
            "performance-fault severity must be in (0,1), got {severity}"
        );
        FaultKind::Performance { severity }
    }

    /// True for correctness (fail-stop) faults.
    pub fn is_correctness(&self) -> bool {
        matches!(self, FaultKind::Correctness)
    }
}

/// A fault occurrence on a component's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// The component affected.
    pub component: ComponentId,
    /// When the fault begins.
    pub at: SimTime,
    /// How long it lasts; `None` means permanent.
    pub duration: Option<SimDuration>,
    /// What kind of fault it is.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// When the fault ends, or `SimTime::MAX` if permanent.
    pub fn end(&self) -> SimTime {
        match self.duration {
            Some(d) => self.at + d,
            None => SimTime::MAX,
        }
    }

    /// True if the fault is in force at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.at && t < self.end()
    }
}

/// The observed health of a component under the fail-stutter model.
///
/// Ordered by decreasing health: `Healthy < PerfFaulty < Failed` compares by
/// *badness*, which lets callers write `state >= HealthState::PerfFaulty`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HealthState {
    /// Performing within specification.
    Healthy,
    /// Correct but under-performing; `severity` is the delivered fraction
    /// of specified performance (lower is worse).
    PerfFaulty {
        /// Delivered fraction of specified performance.
        severity: f64,
    },
    /// Absolutely (correctness) failed.
    Failed,
}

impl HealthState {
    /// True unless the component has absolutely failed.
    pub fn is_usable(&self) -> bool {
        !matches!(self, HealthState::Failed)
    }

    /// The delivered fraction of specified performance: 1 for healthy,
    /// the severity for performance-faulty, and 0 for failed.
    pub fn delivered_fraction(&self) -> f64 {
        match *self {
            HealthState::Healthy => 1.0,
            HealthState::PerfFaulty { severity } => severity,
            HealthState::Failed => 0.0,
        }
    }

    /// Badness rank used for ordering comparisons (0 = healthy).
    pub fn badness(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::PerfFaulty { .. } => 1,
            HealthState::Failed => 2,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::PerfFaulty { severity } => {
                write!(f, "perf-faulty({:.0}% of spec)", severity * 100.0)
            }
            HealthState::Failed => write!(f, "failed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_severity_validated() {
        let f = FaultKind::performance(0.5);
        assert_eq!(f, FaultKind::Performance { severity: 0.5 });
        assert!(!f.is_correctness());
        assert!(FaultKind::Correctness.is_correctness());
    }

    #[test]
    #[should_panic]
    fn zero_severity_rejected() {
        let _ = FaultKind::performance(0.0);
    }

    #[test]
    #[should_panic]
    fn full_severity_rejected() {
        let _ = FaultKind::performance(1.0);
    }

    #[test]
    fn fault_event_activity_window() {
        let e = FaultEvent {
            component: ComponentId(1),
            at: SimTime::from_secs(10),
            duration: Some(SimDuration::from_secs(5)),
            kind: FaultKind::Correctness,
        };
        assert!(!e.active_at(SimTime::from_secs(9)));
        assert!(e.active_at(SimTime::from_secs(10)));
        assert!(e.active_at(SimTime::from_secs(14)));
        assert!(!e.active_at(SimTime::from_secs(15)));
        assert_eq!(e.end(), SimTime::from_secs(15));
    }

    #[test]
    fn permanent_fault_never_ends() {
        let e = FaultEvent {
            component: ComponentId(0),
            at: SimTime::ZERO,
            duration: None,
            kind: FaultKind::Correctness,
        };
        assert_eq!(e.end(), SimTime::MAX);
        assert!(e.active_at(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn health_state_fractions() {
        assert_eq!(HealthState::Healthy.delivered_fraction(), 1.0);
        assert_eq!(HealthState::PerfFaulty { severity: 0.3 }.delivered_fraction(), 0.3);
        assert_eq!(HealthState::Failed.delivered_fraction(), 0.0);
        assert!(HealthState::Healthy.is_usable());
        assert!(HealthState::PerfFaulty { severity: 0.3 }.is_usable());
        assert!(!HealthState::Failed.is_usable());
    }

    #[test]
    fn badness_orders_states() {
        assert!(
            HealthState::Healthy.badness() < HealthState::PerfFaulty { severity: 0.9 }.badness()
        );
        assert!(
            HealthState::PerfFaulty { severity: 0.1 }.badness() < HealthState::Failed.badness()
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            HealthState::PerfFaulty { severity: 0.25 }.to_string(),
            "perf-faulty(25% of spec)"
        );
        assert_eq!(ComponentId(7).to_string(), "c7");
    }
}
