//! The §2 survey as a ready-made injector catalog.
//!
//! Every phenomenon the paper documents, pre-calibrated to the cited
//! magnitude, as a named constructor. Experiments, examples and downstream
//! users get the paper's fault universe off the shelf:
//!
//! ```
//! use simcore::prelude::*;
//! use stutter::catalog;
//!
//! let inj = catalog::thermal_recalibration();
//! let profile = inj.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
//! assert!(profile.mean_multiplier(SimDuration::from_secs(3600)) > 0.9);
//! ```

use simcore::time::{SimDuration, SimTime};

use crate::injector::{DurationDist, FactorDist, Injector};

/// §2.1.1 — a fault-masked processor: a permanent fraction of nominal
/// performance (the Viking study measured spreads up to 40%).
pub fn fault_masked_cpu() -> Injector {
    Injector::StaticSlowdown { factor: 0.7 }
}

/// §2.1.2 — a remap-heavy disk: the 5.0-vs-5.5 MB/s Hawk, ~9% tax.
pub fn remap_heavy_disk() -> Injector {
    Injector::StaticSlowdown { factor: 0.91 }
}

/// §2.1.2 — thermal recalibration: short random off-line periods
/// (Bolosky et al.'s video server).
pub fn thermal_recalibration() -> Injector {
    Injector::Blackouts {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(60) },
        duration: DurationDist::Uniform {
            lo: SimDuration::from_millis(500),
            hi: SimDuration::from_millis(1500),
        },
    }
}

/// §2.1.2 — SCSI bus resets: ~2 per day, 2 s stalls (Talagala &
/// Patterson).
pub fn scsi_bus_resets() -> Injector {
    Injector::Blackouts {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(43_200) },
        duration: DurationDist::Const(SimDuration::from_secs(2)),
    }
}

/// §2.1.2 — Vesta-style run-to-run variance: mostly near peak, a tail at
/// 15–20% of peak.
pub fn vesta_variance() -> Injector {
    Injector::Stutter {
        hold: DurationDist::Exp { mean: SimDuration::from_secs(30) },
        factor: FactorDist::TwoPoint { p: 0.85, a: 1.0, b: 0.17 },
    }
}

/// §2.1.3 — deadlock-recovery halts: two-second full stops at Myrinet-like
/// frequency under pathological pacing.
pub fn deadlock_recovery_halts() -> Injector {
    Injector::Blackouts {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(120) },
        duration: DurationDist::Const(SimDuration::from_secs(2)),
    }
}

/// §2.2.1 — untimely garbage collection: ~2 s pauses every ~10 s under
/// allocation pressure (Gribble et al.'s DDS).
pub fn gc_pauses() -> Injector {
    Injector::Blackouts {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(10) },
        duration: DurationDist::Const(SimDuration::from_secs(2)),
    }
}

/// §2.2.1 — an aged file system: roughly half of fresh sequential
/// bandwidth.
pub fn aged_file_system() -> Injector {
    Injector::StaticSlowdown { factor: 0.5 }
}

/// §2.2.2 — a CPU hog sharing the node: 50% during episodes (the NOW-Sort
/// disturbance).
pub fn cpu_hog_episodes() -> Injector {
    Injector::Episodes {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(120) },
        duration: DurationDist::Exp { mean: SimDuration::from_secs(60) },
        factor: 0.5,
    }
}

/// §2.2.2 — a memory hog: near-total collapse while the hog's resident set
/// evicts everyone (Brown & Mowry's up-to-40×).
pub fn memory_hog_episodes() -> Injector {
    Injector::Episodes {
        interarrival: DurationDist::Exp { mean: SimDuration::from_secs(300) },
        duration: DurationDist::Exp { mean: SimDuration::from_secs(30) },
        factor: 0.025,
    }
}

/// §3.3 — wear-out: healthy for `onset`, an erratic decline over `ramp`,
/// then fail-stop — the early-warning signature.
pub fn wearout(onset: SimTime, ramp: SimDuration) -> Injector {
    Injector::Wearout { onset, ramp, floor: 0.25, fail_after: Some(SimDuration::from_secs(600)) }
}

/// The whole §2 catalog with labels, for tours and stress tests.
pub fn all() -> Vec<(&'static str, Injector)> {
    vec![
        ("fault-masked CPU (2.1.1)", fault_masked_cpu()),
        ("remap-heavy disk (2.1.2)", remap_heavy_disk()),
        ("thermal recalibration (2.1.2)", thermal_recalibration()),
        ("SCSI bus resets (2.1.2)", scsi_bus_resets()),
        ("Vesta variance (2.1.2)", vesta_variance()),
        ("deadlock recovery halts (2.1.3)", deadlock_recovery_halts()),
        ("GC pauses (2.2.1)", gc_pauses()),
        ("aged file system (2.2.1)", aged_file_system()),
        ("CPU hog episodes (2.2.2)", cpu_hog_episodes()),
        ("memory hog episodes (2.2.2)", memory_hog_episodes()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;

    const HOUR: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn every_entry_generates_a_valid_timeline() {
        let rng = Stream::from_seed(1);
        for (name, inj) in all() {
            let p = inj.timeline(HOUR, &mut rng.derive(name));
            let mean = p.mean_multiplier(HOUR);
            assert!((0.0..=1.0).contains(&mean), "{name}: mean {mean}");
            assert!(p.fail_at().is_none(), "{name}: catalog entries do not fail-stop");
        }
    }

    #[test]
    fn calibrations_land_in_their_bands() {
        let rng = Stream::from_seed(2);
        let mean = |inj: Injector, label: &str| {
            inj.timeline(HOUR, &mut rng.derive(label)).mean_multiplier(HOUR)
        };
        // Static taxes are exact.
        assert!((mean(remap_heavy_disk(), "rh") - 0.91).abs() < 1e-9);
        assert!((mean(fault_masked_cpu(), "fm") - 0.7).abs() < 1e-9);
        // Recalibration costs a couple of percent.
        let recal = mean(thermal_recalibration(), "tr");
        assert!((0.92..1.0).contains(&recal), "{recal}");
        // GC pauses cost ~1/6 of the time.
        let gc = mean(gc_pauses(), "gc");
        assert!((0.70..0.92).contains(&gc), "{gc}");
        // SCSI resets are negligible over an hour but present over months.
        let resets = mean(scsi_bus_resets(), "br");
        assert!(resets > 0.99, "{resets}");
    }

    #[test]
    fn wearout_entry_fails() {
        let inj = wearout(SimTime::from_secs(600), SimDuration::from_secs(600));
        let p = inj.timeline(HOUR, &mut Stream::from_seed(3));
        assert_eq!(p.fail_at(), Some(SimTime::from_secs(1800)));
    }

    #[test]
    fn labels_are_unique() {
        let entries = all();
        let mut names: Vec<&str> = entries.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len());
    }
}
