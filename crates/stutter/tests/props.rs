//! Property tests for the §3.1 detection rules: the threshold rule `T`
//! separating "very slow" from "absolutely failed", and the persistence
//! filter that keeps transient stutters out of the exported state.

use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};
use stutter::prelude::*;

const C: ComponentId = ComponentId(0);

proptest! {
    /// The threshold rule: any request at or beyond `T` marks the
    /// component absolutely failed, and failure is sticky forever after.
    #[test]
    fn beyond_threshold_always_eventually_failed(
        pre_ms in proptest::collection::vec(1u64..5_000, 0..32),
        overshoot_ms in 0u64..10_000,
        post_ms in proptest::collection::vec(1u64..5_000, 0..32),
    ) {
        let degraded = SimDuration::from_millis(100);
        let t = SimDuration::from_millis(5_000);
        let mut det = ThresholdDetector::new(degraded, t);
        for &ms in &pre_ms {
            let s = det.observe(SimDuration::from_millis(ms));
            prop_assert!(!matches!(s, HealthState::Failed));
        }
        det.observe(t + SimDuration::from_millis(overshoot_ms));
        prop_assert!(matches!(det.state(), HealthState::Failed));
        for &ms in &post_ms {
            let s = det.observe(SimDuration::from_millis(ms));
            prop_assert!(matches!(s, HealthState::Failed));
        }
    }

    /// Below `T` the rule never claims absolute failure, however slow the
    /// requests get — that regime is performance faults by definition.
    #[test]
    fn under_threshold_is_performance_faulty_at_worst(
        lat_ms in proptest::collection::vec(1u64..5_000, 1..64)
    ) {
        let degraded = SimDuration::from_millis(100);
        let t = SimDuration::from_millis(5_000);
        let mut det = ThresholdDetector::new(degraded, t);
        for &ms in &lat_ms {
            let lat = SimDuration::from_millis(ms);
            match det.observe(lat) {
                HealthState::Failed => prop_assert!(false, "failed below T at {ms} ms"),
                HealthState::PerfFaulty { .. } => prop_assert!(lat >= degraded),
                HealthState::Healthy => prop_assert!(lat < degraded),
            }
        }
    }

    /// A component persistently below its performance spec is always
    /// eventually exported, whatever the persistence window.
    #[test]
    fn persistent_slowdown_is_always_exported(
        frac in 0.05f64..0.85,
        persistence_s in 1u64..120,
        extra_s in 0u64..60,
    ) {
        let nominal = 10.0;
        // Spec tolerance 0.9: rates below 0.9 · nominal are out of spec,
        // and `frac < 0.85` keeps the input strictly below the floor.
        let spec = PerfSpec::constant_with_tolerance(nominal, 0.9);
        let mut det = EwmaDetector::new(spec, 0.3);
        let mut reg = Registry::new(SimDuration::from_secs(persistence_s));
        let mut published = 0usize;
        for s in 0..=(persistence_s + extra_s) {
            let v = det.observe(nominal * frac);
            if reg.report(C, SimTime::from_secs(s), v).is_some() {
                published += 1;
            }
        }
        prop_assert_eq!(published, 1, "one state change must publish exactly once");
        prop_assert!(!matches!(reg.exported(C), HealthState::Healthy));
    }

    /// Transient stutters strictly shorter than the persistence window are
    /// never exported, no matter how many of them occur.
    #[test]
    fn transient_stutters_never_exported(
        bursts in proptest::collection::vec((1u64..10, 1u64..20), 1..12),
        persistence_s in 10u64..60,
    ) {
        // alpha = 1 disables smoothing so verdicts track the input exactly;
        // every faulty burst is at most 9 samples = 8 s, below the window.
        let mut det = EwmaDetector::new(PerfSpec::constant(10.0), 1.0);
        let mut reg = Registry::new(SimDuration::from_secs(persistence_s));
        let mut now = 0u64;
        for &(faulty_len, healthy_len) in &bursts {
            for _ in 0..faulty_len {
                let v = det.observe(5.0);
                prop_assert!(reg.report(C, SimTime::from_secs(now), v).is_none());
                now += 1;
            }
            for _ in 0..healthy_len {
                let v = det.observe(10.0);
                prop_assert!(reg.report(C, SimTime::from_secs(now), v).is_none());
                now += 1;
            }
        }
        prop_assert_eq!(reg.notifications().len(), 0);
        prop_assert!(matches!(reg.exported(C), HealthState::Healthy));
        prop_assert!(reg.suppressed() > 0);
    }

    /// A persistent fault followed by a persistent recovery always exports
    /// as a publish/retract *pair*: first the fault, then Ok — regardless
    /// of the sampling cadence on each side of the edge.
    #[test]
    fn fault_then_recovery_publishes_a_pair(
        persistence_s in 1u64..60,
        fault_gap_s in 1u64..30,
        recovery_gap_s in 1u64..30,
        slack_s in 0u64..50,
    ) {
        let persistence = SimDuration::from_secs(persistence_s);
        let mut reg = Registry::new(persistence);
        let faulty = HealthState::PerfFaulty { severity: 0.5 };
        // Fault phase: sparse reports every `fault_gap_s` until well past
        // the window; recovery phase likewise.
        let fault_end = persistence_s + slack_s + fault_gap_s;
        let mut now = 0;
        while now <= fault_end {
            reg.report(C, SimTime::from_secs(now), faulty);
            now += fault_gap_s;
        }
        let recovery_end = now + persistence_s + slack_s + recovery_gap_s;
        while now <= recovery_end {
            reg.report(C, SimTime::from_secs(now), HealthState::Healthy);
            now += recovery_gap_s;
        }
        // One more faulty verdict long after: even if no healthy report
        // landed past the window, the deferred rule must have retracted.
        reg.report(C, SimTime::from_secs(now + 1), faulty);

        let classes: Vec<u8> =
            reg.notifications().iter().map(|n| n.state.badness()).collect();
        prop_assert!(classes.len() >= 2, "expected publish + retract, got {classes:?}");
        prop_assert_eq!(classes[0], faulty.badness());
        prop_assert_eq!(classes[1], HealthState::Healthy.badness());
    }

    /// Notification classes always alternate: a publish is never followed
    /// by another publish of the same class without a retract in between.
    #[test]
    fn notification_classes_always_alternate(
        verdicts in proptest::collection::vec((0u8..2, 1u64..40), 1..64),
        persistence_s in 0u64..30,
    ) {
        let mut reg = Registry::new(SimDuration::from_secs(persistence_s));
        let mut now = 0u64;
        for &(class, hold_s) in &verdicts {
            let v = if class == 0 {
                HealthState::Healthy
            } else {
                HealthState::PerfFaulty { severity: 0.4 }
            };
            reg.report(C, SimTime::from_secs(now), v);
            now += hold_s;
        }
        for pair in reg.notifications().windows(2) {
            prop_assert_ne!(
                pair[0].state.badness(),
                pair[1].state.badness(),
                "adjacent notifications with the same class"
            );
        }
    }

    /// Hysteresis: on constant-rate input the pipeline publishes at most
    /// one notification — the exported state never oscillates.
    #[test]
    fn constant_input_never_oscillates(
        rate in 0.01f64..15.0,
        alpha_pct in 1u32..101,
        persistence_s in 0u64..60,
        horizon_s in 61u64..400,
    ) {
        let mut det = EwmaDetector::new(PerfSpec::constant(10.0), f64::from(alpha_pct) / 100.0);
        let mut reg = Registry::new(SimDuration::from_secs(persistence_s));
        let mut published = 0usize;
        for s in 0..horizon_s {
            let v = det.observe(rate);
            if reg.report(C, SimTime::from_secs(s), v).is_some() {
                published += 1;
            }
        }
        prop_assert!(published <= 1, "{published} notifications on constant input");
    }
}
