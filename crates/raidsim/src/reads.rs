//! RAID-1 read scheduling under fail-stutter.
//!
//! Writes must hit both replicas, but a read needs only one — so the read
//! path is where replica selection policy shows the fail-stop/fail-stutter
//! divide most cleanly:
//!
//! * [`ReadPolicy::Primary`] — always read replica A unless it has
//!   *failed* (fail-stop thinking: a slow primary is "working", so it
//!   keeps taking reads).
//! * [`ReadPolicy::Alternate`] — round-robin across live replicas
//!   (oblivious load spreading).
//! * [`ReadPolicy::FastestReplica`] — route each read to the replica with
//!   the better current rate (fail-stutter thinking).
//!
//! The same trichotomy as §3.2's write scenarios, on the read side.

use simcore::time::{SimDuration, SimTime};

use crate::controller::RaidError;
use crate::vdisk::MirrorPair;

/// How reads pick a replica within a mirror pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Always the first replica while it has not absolutely failed.
    Primary,
    /// Round-robin over replicas that have not absolutely failed.
    Alternate,
    /// The replica with the higher current delivered rate.
    FastestReplica,
}

/// Outcome of a read batch against one pair.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadOutcome {
    /// When the batch finished.
    pub elapsed: SimDuration,
    /// Aggregate read throughput, bytes/second.
    pub throughput: f64,
    /// Bytes served by each replica `(a, b)`.
    pub per_replica: (u64, u64),
}

/// Reads `requests` requests of `request_bytes` each from `pair`,
/// back-to-back starting at `start`, selecting replicas per `policy`.
///
/// Each replica serves its queue serially at its own (time-varying) rate;
/// the two replicas serve concurrently, so alternating policies can
/// overlap service.
pub fn read_workload(
    pair: &MirrorPair,
    policy: ReadPolicy,
    requests: u64,
    request_bytes: u64,
    start: SimTime,
    horizon: SimDuration,
) -> Result<ReadOutcome, RaidError> {
    assert!(requests > 0 && request_bytes > 0, "degenerate read batch");
    let profiles = [
        pair.a.profile().to_rate_profile(pair.a.nominal()),
        pair.b.profile().to_rate_profile(pair.b.nominal()),
    ];
    let mut next_free = [start, start];
    let mut served = [0u64, 0u64];
    let mut finish = start;
    let mut rr = 0usize;

    for _ in 0..requests {
        let a_dead = pair.a.failed_at(next_free[0]);
        let b_dead = pair.b.failed_at(next_free[1]);
        if a_dead && b_dead {
            return Err(RaidError::NoUsablePairs);
        }
        let replica = match policy {
            ReadPolicy::Primary => usize::from(a_dead),
            ReadPolicy::Alternate => {
                let pick = if a_dead {
                    1
                } else if b_dead {
                    0
                } else {
                    rr
                };
                rr = (pick + 1) % 2;
                pick
            }
            ReadPolicy::FastestReplica => {
                // Judge by projected completion on each live replica.
                let mut best = None;
                for (i, dead) in [(0, a_dead), (1, b_dead)] {
                    if dead {
                        continue;
                    }
                    if let Some(dt) =
                        profiles[i].time_to_transfer(next_free[i], request_bytes as f64)
                    {
                        let done = next_free[i] + dt;
                        if best.is_none_or(|(b, _)| done < b) {
                            best = Some((done, i));
                        }
                    }
                }
                match best {
                    Some((_, i)) => i,
                    None => return Err(RaidError::NoUsablePairs),
                }
            }
        };
        // If the chosen replica can never complete (it fail-stops before
        // finishing), fail over to the other one.
        let dt = match profiles[replica].time_to_transfer(next_free[replica], request_bytes as f64)
        {
            Some(dt) => dt,
            None => {
                let other = 1 - replica;
                match profiles[other].time_to_transfer(next_free[other], request_bytes as f64) {
                    Some(dt) => {
                        let replica = other;
                        next_free[replica] += dt;
                        served[replica] += request_bytes;
                        finish = finish.max(next_free[replica]);
                        continue;
                    }
                    None => return Err(RaidError::NoUsablePairs),
                }
            }
        };
        next_free[replica] += dt;
        served[replica] += request_bytes;
        finish = finish.max(next_free[replica]);
        if finish > start + horizon {
            return Err(RaidError::NoUsablePairs);
        }
    }

    let elapsed = finish - start;
    let total = (requests * request_bytes) as f64;
    Ok(ReadOutcome {
        elapsed,
        throughput: total / elapsed.as_secs_f64().max(1e-12),
        per_replica: (served[0], served[1]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdisk::VDisk;
    use simcore::rng::Stream;
    use stutter::injector::{Injector, SlowdownProfile};

    const MB: f64 = 1e6;
    const HOUR: SimDuration = SimDuration::from_secs(3600);

    fn slow_primary_pair(factor: f64) -> MirrorPair {
        let slow = Injector::StaticSlowdown { factor }.timeline(HOUR, &mut Stream::from_seed(1));
        MirrorPair::new(VDisk::new(10.0 * MB).with_profile(slow), VDisk::new(10.0 * MB))
    }

    #[test]
    fn healthy_pair_alternate_doubles_read_bandwidth() {
        let pair = MirrorPair::healthy(10.0 * MB);
        let primary = read_workload(&pair, ReadPolicy::Primary, 100, 1 << 20, SimTime::ZERO, HOUR)
            .expect("alive");
        let alternate =
            read_workload(&pair, ReadPolicy::Alternate, 100, 1 << 20, SimTime::ZERO, HOUR)
                .expect("alive");
        assert!((primary.throughput / (10.0 * MB) - 1.0).abs() < 0.05);
        assert!((alternate.throughput / (20.0 * MB) - 1.0).abs() < 0.05);
        assert_eq!(alternate.per_replica.0, alternate.per_replica.1);
    }

    #[test]
    fn slow_primary_gates_primary_policy_only() {
        let pair = slow_primary_pair(0.2);
        let primary = read_workload(&pair, ReadPolicy::Primary, 50, 1 << 20, SimTime::ZERO, HOUR)
            .expect("alive");
        let fastest =
            read_workload(&pair, ReadPolicy::FastestReplica, 50, 1 << 20, SimTime::ZERO, HOUR)
                .expect("alive");
        // Primary reads at 2 MB/s; fastest-replica approaches 12 MB/s
        // (10 from the healthy replica + 2 from the slow one in parallel).
        assert!((primary.throughput / (2.0 * MB) - 1.0).abs() < 0.05, "{}", primary.throughput);
        assert!(fastest.throughput > 10.0 * MB, "{}", fastest.throughput);
        // The slow replica served some, but much less.
        assert!(fastest.per_replica.0 < fastest.per_replica.1 / 2);
    }

    #[test]
    fn alternate_policy_tracks_the_slow_replica() {
        // Oblivious round-robin: each replica gets half the requests, so
        // the batch finishes when the slow replica finishes its half.
        let pair = slow_primary_pair(0.2);
        let alt = read_workload(&pair, ReadPolicy::Alternate, 100, 1 << 20, SimTime::ZERO, HOUR)
            .expect("alive");
        // 50 MB on a 2 MB/s replica = 26.2 s; total 104.9 MB → ~4 MB/s.
        assert!(alt.throughput < 5.0 * MB, "{}", alt.throughput);
        let fastest =
            read_workload(&pair, ReadPolicy::FastestReplica, 100, 1 << 20, SimTime::ZERO, HOUR)
                .expect("alive");
        assert!(fastest.throughput > 2.0 * alt.throughput);
    }

    #[test]
    fn primary_fails_over_on_absolute_failure() {
        let dying = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(2));
        let pair =
            MirrorPair::new(VDisk::new(10.0 * MB).with_profile(dying), VDisk::new(10.0 * MB));
        let out = read_workload(&pair, ReadPolicy::Primary, 100, 1 << 20, SimTime::ZERO, HOUR)
            .expect("survivor carries reads");
        assert!(out.per_replica.0 > 0, "primary served before dying");
        assert!(out.per_replica.1 > out.per_replica.0, "survivor served the rest");
    }

    #[test]
    fn double_failure_errors() {
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        let pair = MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(dead.clone()),
            VDisk::new(10.0 * MB).with_profile(dead),
        );
        for policy in [ReadPolicy::Primary, ReadPolicy::Alternate, ReadPolicy::FastestReplica] {
            let r = read_workload(&pair, policy, 10, 4_096, SimTime::ZERO, HOUR);
            assert_eq!(r, Err(RaidError::NoUsablePairs), "{policy:?}");
        }
    }

    #[test]
    fn fastest_replica_adapts_to_a_mid_batch_stutter() {
        // Replica A collapses to 10% at t = 5 s.
        let drift = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(5), 0.1),
        ]);
        let pair =
            MirrorPair::new(VDisk::new(10.0 * MB).with_profile(drift), VDisk::new(10.0 * MB));
        let out =
            read_workload(&pair, ReadPolicy::FastestReplica, 200, 1 << 20, SimTime::ZERO, HOUR)
                .expect("alive");
        // Most bytes end up on the healthy replica.
        assert!(out.per_replica.1 > out.per_replica.0);
        // Throughput stays above the healthy replica's solo rate.
        assert!(out.throughput > 9.5 * MB, "{}", out.throughput);
    }
}
