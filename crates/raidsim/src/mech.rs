//! The §3.2 controllers over mechanical disks.
//!
//! The fluid controllers in [`crate::controller`] reason in bandwidths,
//! which matches the paper's closed forms exactly. This module runs the
//! *same three designs* over [`blockdev::disk::Disk`] instances — seeks,
//! rotation, zones, remapped blocks, recalibrations and all — showing that
//! the model's conclusions survive contact with a mechanical substrate.
//!
//! A mechanical mirror pair writes each chunk to both replicas and
//! completes when the slower one finishes (RAID-1 semantics); a replica
//! that has fail-stopped is skipped (degraded writes to the survivor);
//! both replicas dead halts the pair.

use blockdev::disk::{Disk, DiskError};
use simcore::time::{SimDuration, SimTime};

use crate::controller::{RaidError, Workload};

/// A mirror pair of mechanical disks.
#[derive(Clone, Debug)]
pub struct MechPair {
    /// First replica.
    pub a: Disk,
    /// Second replica.
    pub b: Disk,
    // Next LBA to allocate on this pair (chunks are laid out sequentially).
    next_lba: u64,
}

impl MechPair {
    /// Creates a pair.
    pub fn new(a: Disk, b: Disk) -> Self {
        MechPair { a, b, next_lba: 0 }
    }

    /// Writes `nblocks` at this pair's next sequential position, arriving
    /// at `now`; returns the completion time (both replicas done).
    fn write_chunk(&mut self, now: SimTime, nblocks: u64) -> Result<SimTime, RaidError> {
        let lba = self.next_lba;
        let ra = self.a.write(now, lba, nblocks);
        let rb = self.b.write(now, lba, nblocks);
        let done = match (ra, rb) {
            (Ok(ga), Ok(gb)) => ga.finish.max(gb.finish),
            (Ok(ga), Err(DiskError::Failed)) => ga.finish,
            (Err(DiskError::Failed), Ok(gb)) => gb.finish,
            _ => return Err(RaidError::NoUsablePairs),
        };
        self.next_lba = lba + nblocks;
        Ok(done)
    }

    /// The earliest instant this pair could accept a new chunk.
    fn next_free(&self) -> SimTime {
        self.a.next_free().max(self.b.next_free())
    }

    /// True once both replicas have fail-stopped.
    pub fn failed_at(&self, t: SimTime) -> bool {
        self.a.failed_at(t) && self.b.failed_at(t)
    }
}

/// The outcome of a mechanical array write.
#[derive(Clone, Debug, PartialEq)]
pub struct MechOutcome {
    /// Completion time of the whole write.
    pub elapsed: SimDuration,
    /// Aggregate throughput, bytes/second.
    pub throughput: f64,
    /// Blocks written to each pair.
    pub per_pair_blocks: Vec<u64>,
}

/// A RAID-10 array of mechanical mirror pairs.
#[derive(Clone, Debug)]
pub struct MechRaid10 {
    pairs: Vec<MechPair>,
}

impl MechRaid10 {
    /// Creates the array.
    pub fn new(pairs: Vec<MechPair>) -> Self {
        assert!(!pairs.is_empty(), "an array needs at least one pair");
        MechRaid10 { pairs }
    }

    /// Number of pairs.
    pub fn n(&self) -> usize {
        self.pairs.len()
    }

    /// Scenario 1 on metal: equal static striping in `chunk_blocks`-block
    /// stripes. Consumes the array (disks hold queue state).
    pub fn write_static(
        mut self,
        w: Workload,
        start: SimTime,
        chunk_blocks: u64,
    ) -> Result<MechOutcome, RaidError> {
        let mut per_pair = vec![0u64; self.pairs.len()];
        let mut finish = start;
        let mut issued = 0u64;
        let mut i = 0usize;
        let bs = w.block_bytes / 512;
        assert!(bs > 0, "block size below a sector");
        while issued < w.blocks {
            let len = chunk_blocks.min(w.blocks - issued);
            // Static striping ignores queue depth: round-robin placement.
            let done = self.pairs[i].write_chunk(start, len * bs)?;
            per_pair[i] += len;
            finish = finish.max(done);
            issued += len;
            i = (i + 1) % self.pairs.len();
        }
        Ok(outcome(w, start, finish, per_pair))
    }

    /// Scenario 3 on metal: each chunk goes to the pair that frees up
    /// first (pull-style adaptive striping).
    pub fn write_adaptive(
        mut self,
        w: Workload,
        start: SimTime,
        chunk_blocks: u64,
    ) -> Result<MechOutcome, RaidError> {
        let mut per_pair = vec![0u64; self.pairs.len()];
        let mut finish = start;
        let mut issued = 0u64;
        let bs = w.block_bytes / 512;
        assert!(bs > 0, "block size below a sector");
        let mut dead = vec![false; self.pairs.len()];
        while issued < w.blocks {
            let len = chunk_blocks.min(w.blocks - issued);
            // Pull: the pair whose queue drains earliest takes the chunk.
            let Some(i) = (0..self.pairs.len())
                .filter(|&i| !dead[i])
                .min_by_key(|&i| self.pairs[i].next_free())
            else {
                return Err(RaidError::NoUsablePairs);
            };
            match self.pairs[i].write_chunk(start, len * bs) {
                Ok(done) => {
                    per_pair[i] += len;
                    finish = finish.max(done);
                    issued += len;
                }
                Err(_) => {
                    dead[i] = true;
                }
            }
        }
        Ok(outcome(w, start, finish, per_pair))
    }
}

fn outcome(w: Workload, start: SimTime, finish: SimTime, per_pair: Vec<u64>) -> MechOutcome {
    let elapsed = finish - start;
    MechOutcome {
        elapsed,
        throughput: w.total_bytes() as f64 / elapsed.as_secs_f64().max(1e-12),
        per_pair_blocks: per_pair,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::geometry::Geometry;
    use simcore::rng::Stream;
    use stutter::injector::Injector;

    fn pair(seed: u64, slow_factor: Option<f64>) -> MechPair {
        let root = Stream::from_seed(seed);
        let mut a = Disk::new(Geometry::barracuda_7200(), root.derive("mech.a"));
        let b = Disk::new(Geometry::barracuda_7200(), root.derive("mech.b"));
        if let Some(f) = slow_factor {
            let p = Injector::StaticSlowdown { factor: f }
                .timeline(SimDuration::from_secs(100_000), &mut root.derive("mech.inj"));
            a = a.with_profile(p);
        }
        MechPair::new(a, b)
    }

    /// 512 MB in 64 KB blocks.
    fn workload() -> Workload {
        Workload::new(8_192, 65_536)
    }

    #[test]
    fn healthy_metal_array_balances() {
        let array = MechRaid10::new((0..4).map(|i| pair(i, None)).collect());
        let out = array.write_static(workload(), SimTime::ZERO, 64).expect("alive");
        // Four pairs streaming at ~40 MB/s each (outer zone).
        assert!(out.throughput > 120e6, "{}", out.throughput);
        let max = *out.per_pair_blocks.iter().max().expect("pairs");
        let min = *out.per_pair_blocks.iter().min().expect("pairs");
        assert!(max - min <= 64, "balanced: {:?}", out.per_pair_blocks);
    }

    #[test]
    fn slow_replica_gates_static_but_not_adaptive_on_metal() {
        // The §3.2 shape on a mechanical substrate.
        let build = || {
            MechRaid10::new(
                (0..4).map(|i| pair(i, if i == 0 { Some(0.5) } else { None })).collect(),
            )
        };
        let s1 = build().write_static(workload(), SimTime::ZERO, 64).expect("alive");
        let s3 = build().write_adaptive(workload(), SimTime::ZERO, 64).expect("alive");
        // Static tracks the slow pair; adaptive recovers most of the gap.
        assert!(s3.throughput > 1.4 * s1.throughput, "s1 {} s3 {}", s1.throughput, s3.throughput);
        // And the slow pair received fewer blocks under adaptation.
        assert!(s3.per_pair_blocks[0] < s3.per_pair_blocks[1], "{:?}", s3.per_pair_blocks);
    }

    #[test]
    fn single_replica_failure_degrades_not_halts() {
        let root = Stream::from_seed(9);
        let dying =
            stutter::injector::SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(1));
        let a = Disk::new(Geometry::barracuda_7200(), root.derive("mech.a")).with_profile(dying);
        let b = Disk::new(Geometry::barracuda_7200(), root.derive("mech.b"));
        let mut pairs = vec![MechPair::new(a, b)];
        pairs.push(pair(1, None));
        let array = MechRaid10::new(pairs);
        let out = array.write_static(workload(), SimTime::ZERO, 64).expect("degraded");
        assert_eq!(out.per_pair_blocks.iter().sum::<u64>(), workload().blocks);
    }

    #[test]
    fn whole_pair_failure_halts_static_survives_adaptive() {
        let root = Stream::from_seed(11);
        let dead = stutter::injector::SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        let a =
            Disk::new(Geometry::barracuda_7200(), root.derive("mech.a")).with_profile(dead.clone());
        let b = Disk::new(Geometry::barracuda_7200(), root.derive("mech.b")).with_profile(dead);
        let build = |broken: MechPair| MechRaid10::new(vec![broken, pair(2, None), pair(3, None)]);
        let broken = MechPair::new(a, b);
        let s1 = build(broken.clone()).write_static(workload(), SimTime::ZERO, 64);
        assert!(s1.is_err());
        let s3 = build(broken).write_adaptive(workload(), SimTime::ZERO, 64).expect("survivors");
        assert_eq!(s3.per_pair_blocks[0], 0);
        assert_eq!(s3.per_pair_blocks.iter().sum::<u64>(), workload().blocks);
    }

    #[test]
    fn remap_heavy_replica_taxes_the_pair() {
        let root = Stream::from_seed(13);
        let a = Disk::new(Geometry::barracuda_7200(), root.derive("mech.a"))
            .with_random_defects(20_000);
        let b = Disk::new(Geometry::barracuda_7200(), root.derive("mech.b"));
        let mut dirty_pairs = vec![MechPair::new(a, b)];
        dirty_pairs.push(pair(5, None));
        let dirty = MechRaid10::new(dirty_pairs)
            .write_adaptive(workload(), SimTime::ZERO, 64)
            .expect("alive");
        // The remap-heavy pair did less of the work.
        assert!(dirty.per_pair_blocks[0] < dirty.per_pair_blocks[1], "{:?}", dirty.per_pair_blocks);
    }
}
