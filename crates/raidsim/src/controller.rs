//! The three §3.2 controller designs.
//!
//! The paper's example: write `D` data blocks in parallel to `2·N` disks
//! arranged as `N` RAID-1 mirror pairs with RAID-0 striping across pairs.
//!
//! * **Scenario 1** ([`Raid10::write_static`]): fail-stop thinking only.
//!   Every pair receives `D/N` blocks; one slow pair gates the array
//!   (`N·b` throughput).
//! * **Scenario 2** ([`Raid10::write_proportional`]): static performance
//!   faults acknowledged. Rates are gauged once, blocks striped
//!   proportionally (`(N−1)·B + b`); drift after gauging re-creates the
//!   problem.
//! * **Scenario 3** ([`Raid10::write_adaptive`]): general performance
//!   faults. Pairs *pull* fixed-size chunks as they finish ("continually
//!   gauge performance and write blocks across mirror-pairs in proportion
//!   to their current rates"), at the cost of a block map recording where
//!   every block landed — the paper's bookkeeping trade-off.

use simcore::time::{SimDuration, SimTime};

use crate::vdisk::MirrorPair;

/// A write workload: `D` blocks of `block_bytes` each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Number of data blocks (the paper's `D`).
    pub blocks: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
}

impl Workload {
    /// Creates a workload.
    pub fn new(blocks: u64, block_bytes: u64) -> Self {
        assert!(blocks > 0 && block_bytes > 0, "degenerate workload");
        Workload { blocks, block_bytes }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.blocks * self.block_bytes
    }
}

/// One block-map entry: blocks `[start, start + len)` went to `pair`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapEntry {
    /// First logical block of the run.
    pub start: u64,
    /// Run length in blocks.
    pub len: u64,
    /// Index of the pair holding the run.
    pub pair: usize,
}

/// The outcome of a completed array operation (write or read).
#[derive(Clone, Debug)]
pub struct WriteOutcome {
    /// Time from issue to the last pair finishing.
    pub elapsed: SimDuration,
    /// Aggregate throughput in bytes/second.
    pub throughput: f64,
    /// Blocks assigned to each pair.
    pub per_pair_blocks: Vec<u64>,
    /// Where every block landed (adaptive controller only).
    pub block_map: Option<Vec<MapEntry>>,
}

/// Errors an array write can hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaidError {
    /// A mirror pair absolutely failed (both replicas) before completing
    /// its statically assigned work — the fail-stop design halts.
    PairFailed {
        /// Index of the failed pair.
        pair: usize,
    },
    /// Every pair has absolutely failed; no controller can proceed.
    NoUsablePairs,
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::PairFailed { pair } => write!(f, "mirror pair {pair} absolutely failed"),
            RaidError::NoUsablePairs => write!(f, "no usable mirror pairs remain"),
        }
    }
}

impl std::error::Error for RaidError {}

/// A RAID-10 array of `N` mirror pairs.
///
/// # Examples
///
/// ```
/// use raidsim::prelude::*;
/// use simcore::prelude::*;
///
/// let pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10e6)).collect();
/// let array = Raid10::new(pairs, SimDuration::from_secs(3600));
/// let out = array
///     .write_static(Workload::new(4_096, 65_536), SimTime::ZERO)
///     .expect("healthy array");
/// assert!((out.throughput / 40e6 - 1.0).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct Raid10 {
    pairs: Vec<MirrorPair>,
    horizon: SimDuration,
}

impl Raid10 {
    /// Creates an array. `horizon` bounds profile evaluation and must
    /// comfortably exceed any write's duration.
    pub fn new(pairs: Vec<MirrorPair>, horizon: SimDuration) -> Self {
        assert!(!pairs.is_empty(), "an array needs at least one pair");
        Raid10 { pairs, horizon }
    }

    /// Number of mirror pairs (the paper's `N`).
    pub fn n(&self) -> usize {
        self.pairs.len()
    }

    /// The pairs.
    pub fn pairs(&self) -> &[MirrorPair] {
        &self.pairs
    }

    fn outcome(
        &self,
        w: Workload,
        elapsed: SimDuration,
        per_pair_blocks: Vec<u64>,
        block_map: Option<Vec<MapEntry>>,
    ) -> WriteOutcome {
        let throughput = w.total_bytes() as f64 / elapsed.as_secs_f64().max(1e-12);
        WriteOutcome { elapsed, throughput, per_pair_blocks, block_map }
    }

    /// Scenario 1: equal static striping (fail-stop design).
    ///
    /// Blocks split evenly; the write completes when the slowest pair
    /// finishes. A pair that absolutely fails before finishing halts the
    /// operation with [`RaidError::PairFailed`].
    pub fn write_static(&self, w: Workload, start: SimTime) -> Result<WriteOutcome, RaidError> {
        let n = self.n() as u64;
        let per_pair: Vec<u64> =
            (0..n).map(|i| w.blocks / n + u64::from(i < w.blocks % n)).collect();
        self.run_static_assignment(w, start, per_pair)
    }

    /// Scenario 2: proportional static striping.
    ///
    /// Pair rates are gauged once at `gauge_at` (installation time) and
    /// blocks are assigned proportionally. Rates can drift arbitrarily
    /// afterwards; the assignment does not.
    pub fn write_proportional(
        &self,
        w: Workload,
        start: SimTime,
        gauge_at: SimTime,
    ) -> Result<WriteOutcome, RaidError> {
        let rates: Vec<f64> = self.pairs.iter().map(|p| p.write_rate_at(gauge_at)).collect();
        let total: f64 = rates.iter().sum();
        if total <= 0.0 {
            return Err(RaidError::NoUsablePairs);
        }
        // Largest-remainder apportionment so the assignment sums to D.
        let quotas: Vec<f64> = rates.iter().map(|r| w.blocks as f64 * r / total).collect();
        let mut per_pair: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
        let mut leftover = w.blocks - per_pair.iter().sum::<u64>();
        let mut order: Vec<usize> = (0..self.n()).collect();
        order.sort_by(|&i, &j| {
            let fi = quotas[i] - quotas[i].floor();
            let fj = quotas[j] - quotas[j].floor();
            fj.total_cmp(&fi)
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            per_pair[i] += 1;
            leftover -= 1;
        }
        self.run_static_assignment(w, start, per_pair)
    }

    fn run_static_assignment(
        &self,
        w: Workload,
        start: SimTime,
        per_pair: Vec<u64>,
    ) -> Result<WriteOutcome, RaidError> {
        let profiles: Vec<_> =
            self.pairs.iter().map(|p| p.write_rate_profile(self.horizon)).collect();
        self.run_assignment(w, start, per_pair, &profiles)
    }

    fn run_assignment(
        &self,
        w: Workload,
        start: SimTime,
        per_pair: Vec<u64>,
        profiles: &[simcore::resource::RateProfile],
    ) -> Result<WriteOutcome, RaidError> {
        debug_assert_eq!(per_pair.iter().sum::<u64>(), w.blocks);
        let mut elapsed = SimDuration::ZERO;
        for (i, &blocks) in per_pair.iter().enumerate() {
            if blocks == 0 {
                continue;
            }
            let bytes = (blocks * w.block_bytes) as f64;
            match profiles[i].time_to_transfer(start, bytes) {
                Some(t) => elapsed = elapsed.max(t),
                None => return Err(RaidError::PairFailed { pair: i }),
            }
        }
        Ok(self.outcome(w, elapsed, per_pair, None))
    }

    /// Reads `D` blocks striped equally across pairs (fail-stop design,
    /// read side). A healthy RAID-1 pair reads at the sum of its replicas'
    /// rates.
    pub fn read_static(&self, w: Workload, start: SimTime) -> Result<WriteOutcome, RaidError> {
        let n = self.n() as u64;
        let per_pair: Vec<u64> =
            (0..n).map(|i| w.blocks / n + u64::from(i < w.blocks % n)).collect();
        let profiles: Vec<_> =
            self.pairs.iter().map(|p| p.read_rate_profile(self.horizon)).collect();
        self.run_assignment(w, start, per_pair, &profiles)
    }

    /// Reads `D` blocks with adaptive chunk pulling (fail-stutter design,
    /// read side).
    pub fn read_adaptive(
        &self,
        w: Workload,
        start: SimTime,
        chunk_blocks: u64,
    ) -> Result<WriteOutcome, RaidError> {
        let profiles: Vec<_> =
            self.pairs.iter().map(|p| p.read_rate_profile(self.horizon)).collect();
        self.run_adaptive_over(w, start, chunk_blocks, &profiles)
    }

    /// Scenario 3: adaptive chunked striping with a block map.
    ///
    /// Work is cut into `chunk_blocks`-block chunks; each pair pulls a new
    /// chunk the moment it finishes its previous one. Pairs that
    /// absolutely fail simply stop pulling — their pending chunk is
    /// re-queued to the survivors (the write only fails if *every* pair is
    /// dead). The returned block map records where each chunk landed.
    pub fn write_adaptive(
        &self,
        w: Workload,
        start: SimTime,
        chunk_blocks: u64,
    ) -> Result<WriteOutcome, RaidError> {
        let profiles: Vec<_> =
            self.pairs.iter().map(|p| p.write_rate_profile(self.horizon)).collect();
        self.run_adaptive_over(w, start, chunk_blocks, &profiles)
    }

    /// Scenario 3bis: adaptive chunked striping steered by an external
    /// rate estimator instead of omniscient profiles.
    ///
    /// This is the distributed variant of scenario 3: the controller does
    /// not gauge the pairs itself — it plans with whatever a
    /// performance-state plane (or any other estimator) believes each
    /// pair's current write rate is. `estimate(pair, at)` returns the
    /// believed rate in bytes/second at decision time `at`; non-positive
    /// or non-finite estimates mark the pair unusable for that chunk.
    /// The planner schedules on **believed** completion times only: each
    /// pair's queue clock advances by `bytes / estimate`, never by the
    /// true service time it cannot observe. Actual completions still come
    /// from the pairs' *true* profiles, so a stale or wrong estimate
    /// mis-apportions real work — with a useless (uniform) estimator the
    /// plan degenerates to equal striping and the paper's `N·b`, and with
    /// a perfect one it recovers scenario 3. That gap is exactly what the
    /// plane's staleness oracles quantify. One hard signal bypasses the
    /// beliefs: a write to an absolutely failed pair errors out, so the
    /// pair is retired and its chunk re-queued (the write only fails if
    /// every pair is dead). When the estimator believes in *nobody*, the
    /// planner falls back to ack-clocking: it rotates chunks through the
    /// least-loaded live pair, advancing that pair's clock by the acked
    /// true service time.
    pub fn write_estimated(
        &self,
        w: Workload,
        start: SimTime,
        chunk_blocks: u64,
        estimate: &mut dyn FnMut(usize, SimTime) -> f64,
    ) -> Result<WriteOutcome, RaidError> {
        assert!(chunk_blocks > 0, "chunk size must be positive");
        let profiles: Vec<_> =
            self.pairs.iter().map(|p| p.write_rate_profile(self.horizon)).collect();
        // Believed busy-time per pair (seconds past `start`) vs the true
        // availability the planner never sees.
        let mut believed = vec![0.0f64; self.n()];
        let mut true_avail = vec![start; self.n()];
        let mut dead = vec![false; self.n()];
        let mut next_block = 0u64;
        let mut per_pair_blocks = vec![0u64; self.n()];
        let mut map: Vec<MapEntry> = Vec::new();
        let mut finish = start;

        while next_block < w.blocks {
            let chunk_len = chunk_blocks.min(w.blocks - next_block);
            let bytes = (chunk_len * w.block_bytes) as f64;
            let mut best: Option<(f64, usize)> = None;
            let mut fallback: Option<(f64, usize)> = None;
            for i in 0..self.n() {
                if dead[i] {
                    continue;
                }
                if fallback.is_none_or(|(b, _)| believed[i] < b) {
                    fallback = Some((believed[i], i));
                }
                let at = start + SimDuration::from_secs_f64(believed[i]);
                let est = estimate(i, at);
                if est > 0.0 && est.is_finite() {
                    let done = believed[i] + bytes / est;
                    if best.is_none_or(|(b, _)| done < b) {
                        best = Some((done, i));
                    }
                }
            }
            let (chosen, believed_dt) = match (best, fallback) {
                (Some((done, i)), _) => (i, done - believed[i]),
                (None, Some((_, i))) => (i, f64::NAN), // ack-clocked below
                (None, None) => return Err(RaidError::NoUsablePairs),
            };
            let i = chosen;
            match profiles[i].time_to_transfer(true_avail[i], bytes) {
                Some(dt) => {
                    true_avail[i] += dt;
                    finish = finish.max(true_avail[i]);
                    believed[i] +=
                        if believed_dt.is_finite() { believed_dt } else { dt.as_secs_f64() };
                    per_pair_blocks[i] += chunk_len;
                    map.push(MapEntry { start: next_block, len: chunk_len, pair: i });
                    next_block += chunk_len;
                }
                None => dead[i] = true, // write error: retire, re-queue the chunk
            }
        }
        map.sort_by_key(|e| (e.start, e.pair));
        Ok(self.outcome(w, finish - start, per_pair_blocks, Some(map)))
    }

    fn run_adaptive_over(
        &self,
        w: Workload,
        start: SimTime,
        chunk_blocks: u64,
        profiles: &[simcore::resource::RateProfile],
    ) -> Result<WriteOutcome, RaidError> {
        assert!(chunk_blocks > 0, "chunk size must be positive");
        // Each chunk goes to the pair that would *complete* it earliest —
        // equivalent to pairs pulling work in proportion to their current
        // rates, and free of the straggler tail a naive earliest-available
        // assignment leaves on the slowest pair.
        let mut avail = vec![start; self.n()];
        let mut dead = vec![false; self.n()];
        let mut next_block = 0u64;
        let mut per_pair_blocks = vec![0u64; self.n()];
        let mut map: Vec<MapEntry> = Vec::new();
        let mut finish = start;

        while next_block < w.blocks {
            let chunk_len = chunk_blocks.min(w.blocks - next_block);
            let bytes = (chunk_len * w.block_bytes) as f64;
            let mut best: Option<(SimTime, usize)> = None;
            for i in 0..self.n() {
                if dead[i] {
                    continue;
                }
                match profiles[i].time_to_transfer(avail[i], bytes) {
                    Some(dt) => {
                        let done = avail[i] + dt;
                        if best.is_none_or(|(b, _)| done < b) {
                            best = Some((done, i));
                        }
                    }
                    None => dead[i] = true,
                }
            }
            let Some((done, i)) = best else {
                return Err(RaidError::NoUsablePairs);
            };
            avail[i] = done;
            finish = finish.max(done);
            per_pair_blocks[i] += chunk_len;
            map.push(MapEntry { start: next_block, len: chunk_len, pair: i });
            next_block += chunk_len;
        }
        map.sort_by_key(|e| (e.start, e.pair));
        Ok(self.outcome(w, finish - start, per_pair_blocks, Some(map)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdisk::VDisk;
    use simcore::rng::Stream;
    use stutter::injector::{Injector, SlowdownProfile};

    const MB: f64 = 1e6;
    const HOUR: SimDuration = SimDuration::from_secs(3600);

    /// N pairs at B = 10 MB/s, with pair 0 slowed to `b_frac` of B.
    fn array_with_slow_pair(n: usize, b_frac: f64) -> Raid10 {
        let slow =
            Injector::StaticSlowdown { factor: b_frac }.timeline(HOUR, &mut Stream::from_seed(1));
        let mut pairs =
            vec![MirrorPair::new(VDisk::new(10.0 * MB).with_profile(slow), VDisk::new(10.0 * MB))];
        for _ in 1..n {
            pairs.push(MirrorPair::healthy(10.0 * MB));
        }
        Raid10::new(pairs, HOUR)
    }

    fn workload() -> Workload {
        // 4 GB in 64 KB blocks.
        Workload::new(65_536, 65_536)
    }

    #[test]
    fn scenario1_matches_n_times_b() {
        // One pair at b = 5 MB/s among N = 4: perceived throughput N·b.
        let array = array_with_slow_pair(4, 0.5);
        let out = array.write_static(workload(), SimTime::ZERO).expect("alive");
        let predicted = 4.0 * 5.0 * MB;
        assert!(
            (out.throughput / predicted - 1.0).abs() < 0.01,
            "got {} want {predicted}",
            out.throughput
        );
    }

    #[test]
    fn scenario2_matches_n_minus_one_b_plus_b() {
        let array = array_with_slow_pair(4, 0.5);
        let out =
            array.write_proportional(workload(), SimTime::ZERO, SimTime::ZERO).expect("alive");
        let predicted = 3.0 * 10.0 * MB + 5.0 * MB;
        assert!(
            (out.throughput / predicted - 1.0).abs() < 0.01,
            "got {} want {predicted}",
            out.throughput
        );
        // The slow pair received proportionally fewer blocks.
        assert!(out.per_pair_blocks[0] < out.per_pair_blocks[1]);
    }

    #[test]
    fn scenario3_matches_available_bandwidth() {
        let array = array_with_slow_pair(4, 0.5);
        let out = array.write_adaptive(workload(), SimTime::ZERO, 64).expect("alive");
        let available = 3.0 * 10.0 * MB + 5.0 * MB;
        assert!(out.throughput > 0.97 * available, "got {} of {available}", out.throughput);
        // Bookkeeping: the block map covers every block exactly once.
        let map = out.block_map.as_ref().expect("adaptive keeps a map");
        let mut covered = 0;
        for (i, e) in map.iter().enumerate() {
            assert_eq!(e.start, covered, "entry {i} not contiguous");
            covered += e.len;
        }
        assert_eq!(covered, workload().blocks);
    }

    #[test]
    fn drift_after_gauging_defeats_scenario2_but_not_scenario3() {
        // All pairs healthy at gauge time; pair 2 collapses to 20% right
        // after the write begins.
        let drift = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(1), 0.2),
        ]);
        let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10.0 * MB)).collect();
        pairs[2] =
            MirrorPair::new(VDisk::new(10.0 * MB).with_profile(drift), VDisk::new(10.0 * MB));
        let array = Raid10::new(pairs, HOUR);
        let w = workload();
        let s2 = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("alive");
        let s3 = array.write_adaptive(w, SimTime::ZERO, 64).expect("alive");
        // Scenario 2 gauged equal rates, so it degenerates to scenario 1:
        // ~4·2 = 8 MB/s. Scenario 3 keeps ~32 MB/s.
        assert!(s2.throughput < 12.0 * MB, "s2 {}", s2.throughput);
        assert!(s3.throughput > 28.0 * MB, "s3 {}", s3.throughput);
    }

    #[test]
    fn static_design_halts_on_pair_failure() {
        let dead_a = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(5));
        let dead_b = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(6));
        let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10.0 * MB)).collect();
        pairs[1] = MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(dead_a),
            VDisk::new(10.0 * MB).with_profile(dead_b),
        );
        let array = Raid10::new(pairs, HOUR);
        let err = array.write_static(workload(), SimTime::ZERO).unwrap_err();
        assert_eq!(err, RaidError::PairFailed { pair: 1 });
    }

    #[test]
    fn adaptive_design_survives_pair_failure() {
        let dead_a = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(5));
        let dead_b = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(6));
        let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10.0 * MB)).collect();
        pairs[1] = MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(dead_a),
            VDisk::new(10.0 * MB).with_profile(dead_b),
        );
        let array = Raid10::new(pairs, HOUR);
        let out = array.write_adaptive(workload(), SimTime::ZERO, 64).expect("survives");
        // All blocks landed, none on the dead pair after its death beyond
        // what it completed.
        assert_eq!(out.per_pair_blocks.iter().sum::<u64>(), workload().blocks);
        // Throughput approaches the three survivors' 30 MB/s.
        assert!(out.throughput > 25.0 * MB, "{}", out.throughput);
    }

    #[test]
    fn single_disk_failure_in_a_pair_is_transparent() {
        let dying = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(3));
        let mut pairs: Vec<MirrorPair> = (0..2).map(|_| MirrorPair::healthy(10.0 * MB)).collect();
        pairs[0] =
            MirrorPair::new(VDisk::new(10.0 * MB).with_profile(dying), VDisk::new(10.0 * MB));
        let array = Raid10::new(pairs, HOUR);
        let out = array.write_static(workload(), SimTime::ZERO).expect("degraded, not dead");
        assert!((out.throughput / (20.0 * MB) - 1.0).abs() < 0.01);
    }

    #[test]
    fn all_pairs_dead_is_an_error_everywhere() {
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        let pairs = vec![MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(dead.clone()),
            VDisk::new(10.0 * MB).with_profile(dead),
        )];
        let array = Raid10::new(pairs, HOUR);
        let w = Workload::new(16, 65_536);
        assert!(array.write_static(w, SimTime::ZERO).is_err());
        assert!(matches!(
            array.write_proportional(w, SimTime::ZERO, SimTime::ZERO),
            Err(RaidError::NoUsablePairs)
        ));
        assert!(matches!(array.write_adaptive(w, SimTime::ZERO, 4), Err(RaidError::NoUsablePairs)));
    }

    #[test]
    fn read_static_uses_summed_replica_rates() {
        // A healthy pair reads at 2x its write rate.
        let array = Raid10::new((0..4).map(|_| MirrorPair::healthy(10.0 * MB)).collect(), HOUR);
        let w = workload();
        let writes = array.write_static(w, SimTime::ZERO).expect("alive");
        let reads = array.read_static(w, SimTime::ZERO).expect("alive");
        assert!((reads.throughput / (2.0 * writes.throughput) - 1.0).abs() < 0.01);
    }

    #[test]
    fn read_adaptive_routes_around_slow_pair() {
        let array = array_with_slow_pair(4, 0.2);
        let w = workload();
        let static_read = array.read_static(w, SimTime::ZERO).expect("alive");
        let adaptive_read = array.read_adaptive(w, SimTime::ZERO, 64).expect("alive");
        // Static read tracks the slow pair: pair 0 reads at 2 + 10 = 12
        // MB/s (slow replica + healthy replica), so throughput is 4*12.
        assert!(
            (static_read.throughput / (48.0 * MB) - 1.0).abs() < 0.01,
            "{}",
            static_read.throughput
        );
        // Adaptive: 3*20 + 12 = 72 MB/s available.
        assert!(adaptive_read.throughput > 69.0 * MB, "{}", adaptive_read.throughput);
    }

    #[test]
    fn degraded_pair_reads_at_survivor_rate() {
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        let pair = MirrorPair::new(VDisk::new(10.0 * MB).with_profile(dead), VDisk::new(10.0 * MB));
        assert_eq!(pair.read_rate_at(SimTime::from_secs(1)), 10.0 * MB);
        let array = Raid10::new(vec![pair, MirrorPair::healthy(10.0 * MB)], HOUR);
        let out = array.read_static(Workload::new(1_024, 65_536), SimTime::ZERO).expect("alive");
        // Pair 0 at 10, pair 1 at 20: static tracks pair 0 → 2*10.
        assert!((out.throughput / (20.0 * MB) - 1.0).abs() < 0.01, "{}", out.throughput);
    }

    #[test]
    fn estimated_with_perfect_estimates_matches_adaptive() {
        let array = array_with_slow_pair(4, 0.5);
        let w = workload();
        let s3 = array.write_adaptive(w, SimTime::ZERO, 64).expect("alive");
        let mut oracle = |i: usize, at: SimTime| array.pairs()[i].write_rate_at(at);
        let bis = array.write_estimated(w, SimTime::ZERO, 64, &mut oracle).expect("alive");
        assert!(
            bis.throughput > 0.97 * s3.throughput,
            "perfect estimates should match scenario 3: {} vs {}",
            bis.throughput,
            s3.throughput
        );
        assert_eq!(bis.per_pair_blocks.iter().sum::<u64>(), w.blocks);
    }

    #[test]
    fn estimated_with_blind_estimates_collapses_to_static() {
        // A uniform (wrong) belief degenerates toward scenario 1's N·b.
        let array = array_with_slow_pair(4, 0.5);
        let w = workload();
        let s1 = array.write_static(w, SimTime::ZERO).expect("alive");
        let mut blind = |_: usize, _: SimTime| 10.0 * MB;
        let out = array.write_estimated(w, SimTime::ZERO, 64, &mut blind).expect("alive");
        assert!(
            (out.throughput / s1.throughput - 1.0).abs() < 0.05,
            "blind estimates ≈ static: {} vs {}",
            out.throughput,
            s1.throughput
        );
    }

    #[test]
    fn estimated_survives_true_failure_despite_rosy_estimates() {
        let dead_a = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(5));
        let dead_b = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(6));
        let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10.0 * MB)).collect();
        pairs[1] = MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(dead_a),
            VDisk::new(10.0 * MB).with_profile(dead_b),
        );
        let array = Raid10::new(pairs, HOUR);
        // The estimator never learns about the death; the controller must
        // still route the re-queued chunks to survivors.
        let mut rosy = |_: usize, _: SimTime| 10.0 * MB;
        let out = array.write_estimated(workload(), SimTime::ZERO, 64, &mut rosy).expect("alive");
        assert_eq!(out.per_pair_blocks.iter().sum::<u64>(), workload().blocks);
    }

    #[test]
    fn estimated_falls_back_when_no_pair_is_believed_in() {
        let array = array_with_slow_pair(2, 0.5);
        let mut nihilist = |_: usize, _: SimTime| 0.0;
        let w = Workload::new(64, 65_536);
        let out = array.write_estimated(w, SimTime::ZERO, 16, &mut nihilist).expect("alive");
        assert_eq!(out.per_pair_blocks.iter().sum::<u64>(), w.blocks);
    }

    #[test]
    fn proportional_assignment_sums_to_d() {
        let array = array_with_slow_pair(7, 0.37);
        let w = Workload::new(100_003, 4096);
        let out = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).expect("alive");
        assert_eq!(out.per_pair_blocks.iter().sum::<u64>(), w.blocks);
    }
}
