//! A WiND-style self-managing array — the paper's §5 future work.
//!
//! "As a first step in this direction, we are exploring the construction
//! of fail-stutter-tolerant storage in the Wisconsin Network Disks (WiND)
//! project. Therein, we are investigating the adaptive software techniques
//! that we believe are central to building robust and manageable storage
//! systems."
//!
//! [`run_wind`] simulates an array serving a continuous write stream over
//! a long horizon while its pairs live through injected fault timelines.
//! In *managed* mode the array runs the full fail-stutter pipeline:
//!
//! 1. every pair has a [`stutter::monitor::Monitor`] sampling its rate;
//! 2. work is distributed pull-style in proportion to current rates;
//! 3. a wear-out prediction or an absolute replica failure triggers a
//!    rebuild onto a hot spare, which consumes part of the pair's
//!    bandwidth while it runs;
//! 4. when the rebuild completes, the spare replaces the sick replica and
//!    the pair returns to nominal performance.
//!
//! In *unmanaged* (fail-stop) mode, work is split evenly, nothing is
//! monitored, and a failed pair's share of the stream simply stalls until
//! the operator intervenes (never, within the run).

use simcore::stats::Series;
use simcore::time::{SimDuration, SimTime};
use stutter::fault::ComponentId;
use stutter::monitor::{Monitor, MonitorEvent};
use stutter::predict::PredictorConfig;
use stutter::registry::Registry;
use stutter::spec::PerfSpec;

use crate::vdisk::MirrorPair;

/// Management mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Management {
    /// Fail-stop thinking: static shares, no monitoring, no spares.
    Unmanaged,
    /// The full fail-stutter pipeline with `hot_spares` spares.
    Managed {
        /// Hot spares available for rebuilds.
        hot_spares: u32,
    },
}

/// Configuration of a WiND run.
#[derive(Clone, Copy, Debug)]
pub struct WindConfig {
    /// Offered write load, bytes/second (must be under nominal aggregate).
    pub offered_load: f64,
    /// Nominal per-pair rate, bytes/second.
    pub nominal_rate: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Control/sampling epoch.
    pub epoch: SimDuration,
    /// Data a rebuild must copy, bytes.
    pub rebuild_bytes: f64,
    /// Fraction of a pair's bandwidth a running rebuild consumes.
    pub rebuild_share: f64,
}

impl Default for WindConfig {
    fn default() -> Self {
        WindConfig {
            offered_load: 25e6,
            nominal_rate: 10e6,
            duration: SimDuration::from_secs(7_200),
            epoch: SimDuration::from_secs(1),
            rebuild_bytes: 2e9,
            rebuild_share: 0.3,
        }
    }
}

/// A notable event during the run.
#[derive(Clone, Debug, PartialEq)]
pub enum WindEvent {
    /// The registry exported a state change for a pair.
    Exported {
        /// When.
        at: SimTime,
        /// Which pair.
        pair: usize,
        /// Human-readable state.
        state: String,
    },
    /// A failure prediction fired and a rebuild began.
    RebuildStarted {
        /// When.
        at: SimTime,
        /// Which pair.
        pair: usize,
    },
    /// A rebuild finished; the pair is whole and nominal again.
    RebuildCompleted {
        /// When.
        at: SimTime,
        /// Which pair.
        pair: usize,
    },
    /// A pair absolutely failed with no spare available.
    PairLost {
        /// When.
        at: SimTime,
        /// Which pair.
        pair: usize,
    },
}

/// The outcome of a WiND run.
#[derive(Clone, Debug)]
pub struct WindOutcome {
    /// Delivered throughput over time (bytes/second, sampled per epoch).
    pub throughput: Series,
    /// Mean delivered throughput.
    pub mean_throughput: f64,
    /// Fraction of epochs in which the full offered load was served.
    pub availability: f64,
    /// Event log.
    pub events: Vec<WindEvent>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum PairState {
    /// Serving under its injected timeline.
    Stuttering,
    /// Rebuilding onto a spare until the given time.
    Rebuilding(SimTime),
    /// Replaced by a spare: healthy and nominal from here on.
    Replaced,
    /// Absolutely failed with no spare: contributes nothing.
    Lost,
}

/// Runs the array against its fault timelines.
pub fn run_wind(pairs: &[MirrorPair], config: WindConfig, management: Management) -> WindOutcome {
    assert!(!pairs.is_empty(), "need at least one pair");
    let n = pairs.len();
    let dt = config.epoch.as_secs_f64();
    let managed = matches!(management, Management::Managed { .. });
    let mut spares_left = match management {
        Management::Managed { hot_spares } => hot_spares,
        Management::Unmanaged => 0,
    };

    let spec = PerfSpec::constant(config.nominal_rate);
    let predictor = PredictorConfig {
        window: SimDuration::from_secs(300),
        min_samples: 8,
        level_threshold: 0.9,
        slope_threshold: 0.05,
        consecutive_below: 4,
    };
    let mut monitors: Vec<Monitor> =
        (0..n).map(|i| Monitor::new(ComponentId(i as u32), spec.clone(), 0.3, predictor)).collect();
    let mut registry = Registry::new(SimDuration::from_secs(60));
    let mut state = vec![PairState::Stuttering; n];
    let mut events = Vec::new();
    let mut throughput = Series::new();
    let mut delivered_total = 0.0;
    let mut ok_epochs = 0u64;
    let mut epochs = 0u64;

    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + config.duration;
    // Backlog carried when the array cannot keep up: one shared queue
    // under management (work is relocatable), one queue per pair under
    // static striping (each pair's blocks are pinned to it).
    let mut backlog = 0.0f64;
    let mut pinned_backlog = vec![0.0f64; n];

    while t < end {
        t += config.epoch;
        epochs += 1;

        // Current effective rate of each pair.
        let mut rates = vec![0.0f64; n];
        for i in 0..n {
            rates[i] = match state[i] {
                PairState::Replaced => config.nominal_rate,
                PairState::Lost => 0.0,
                PairState::Rebuilding(done) => {
                    if t >= done {
                        state[i] = PairState::Replaced;
                        events.push(WindEvent::RebuildCompleted { at: t, pair: i });
                        config.nominal_rate
                    } else {
                        pairs[i].write_rate_at(t) * (1.0 - config.rebuild_share)
                    }
                }
                PairState::Stuttering => pairs[i].write_rate_at(t),
            };
        }

        // Management: observe, export, predict, react.
        if managed {
            for i in 0..n {
                if !matches!(state[i], PairState::Stuttering) {
                    continue;
                }
                let e: MonitorEvent = monitors[i].observe(t, rates[i], &mut registry);
                if let Some(notice) = e.exported {
                    events.push(WindEvent::Exported {
                        at: t,
                        pair: i,
                        state: notice.state.to_string(),
                    });
                }
                let must_rebuild = e.prediction.is_some() || pairs[i].failed_at(t);
                if must_rebuild {
                    if spares_left > 0 {
                        spares_left -= 1;
                        // Rebuild reads from the pair's survivor at the
                        // configured share of whatever it still delivers.
                        let read_rate =
                            (rates[i] * config.rebuild_share).max(0.05 * config.nominal_rate);
                        let rebuild_time =
                            SimDuration::from_secs_f64(config.rebuild_bytes / read_rate);
                        state[i] = PairState::Rebuilding(t + rebuild_time);
                        events.push(WindEvent::RebuildStarted { at: t, pair: i });
                    } else if pairs[i].failed_at(t) {
                        state[i] = PairState::Lost;
                        events.push(WindEvent::PairLost { at: t, pair: i });
                    }
                }
            }
        } else {
            for i in 0..n {
                if matches!(state[i], PairState::Stuttering) && pairs[i].failed_at(t) {
                    state[i] = PairState::Lost;
                    events.push(WindEvent::PairLost { at: t, pair: i });
                }
            }
        }

        // Serve this epoch's offered load plus backlog.
        let served;
        let behind;
        if managed {
            // Pull-style: the aggregate of current rates is usable and
            // backed-up work can go anywhere.
            let incoming = config.offered_load * dt + backlog;
            let capacity: f64 = rates.iter().sum::<f64>() * dt;
            served = incoming.min(capacity);
            backlog = (incoming - served).max(0.0);
            behind = backlog > 1e-6;
        } else {
            // Static equal shares: each pair is offered 1/n of the load
            // and its unserved share stays pinned to it.
            let share = config.offered_load * dt / n as f64;
            let mut s = 0.0;
            for i in 0..n {
                pinned_backlog[i] += share;
                let done = pinned_backlog[i].min(rates[i] * dt);
                pinned_backlog[i] -= done;
                s += done;
            }
            served = s;
            behind = pinned_backlog.iter().any(|&b| b > 1e-6);
        }
        delivered_total += served;
        if !behind {
            ok_epochs += 1;
        }
        throughput.push(t, served / dt);
    }

    WindOutcome {
        mean_throughput: delivered_total / config.duration.as_secs_f64(),
        availability: ok_epochs as f64 / epochs as f64,
        throughput,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdisk::VDisk;
    use simcore::rng::Stream;
    use stutter::injector::{DurationDist, Injector};

    const MB: f64 = 1e6;

    fn healthy_pairs(n: usize) -> Vec<MirrorPair> {
        (0..n).map(|_| MirrorPair::healthy(10.0 * MB)).collect()
    }

    fn wearing_pair(seed: u64) -> MirrorPair {
        let inj = Injector::Wearout {
            onset: SimTime::from_secs(900),
            ramp: SimDuration::from_secs(1_200),
            floor: 0.2,
            fail_after: Some(SimDuration::from_secs(600)),
        };
        let p = inj.timeline(SimDuration::from_secs(7_200), &mut Stream::from_seed(seed));
        MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(p.clone()),
            VDisk::new(10.0 * MB).with_profile(p),
        )
    }

    #[test]
    fn healthy_array_serves_everything_either_way() {
        let pairs = healthy_pairs(4);
        for mode in [Management::Unmanaged, Management::Managed { hot_spares: 1 }] {
            let out = run_wind(&pairs, WindConfig::default(), mode);
            assert!((out.availability - 1.0).abs() < 1e-9, "{mode:?}: {}", out.availability);
            assert!((out.mean_throughput / 25e6 - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn managed_array_survives_wearout_with_a_spare() {
        let mut pairs = healthy_pairs(4);
        pairs[1] = wearing_pair(3);
        let managed =
            run_wind(&pairs, WindConfig::default(), Management::Managed { hot_spares: 1 });
        let unmanaged = run_wind(&pairs, WindConfig::default(), Management::Unmanaged);
        assert!(managed.availability > 0.9, "managed availability {}", managed.availability);
        assert!(
            unmanaged.availability < managed.availability,
            "unmanaged {} vs managed {}",
            unmanaged.availability,
            managed.availability
        );
        // The pipeline actually ran: prediction → rebuild → completion.
        assert!(managed
            .events
            .iter()
            .any(|e| matches!(e, WindEvent::RebuildStarted { pair: 1, .. })));
        assert!(managed
            .events
            .iter()
            .any(|e| matches!(e, WindEvent::RebuildCompleted { pair: 1, .. })));
        // No pair was lost under management.
        assert!(!managed.events.iter().any(|e| matches!(e, WindEvent::PairLost { .. })));
    }

    #[test]
    fn unmanaged_array_loses_the_failed_pair() {
        let mut pairs = healthy_pairs(4);
        pairs[2] = wearing_pair(5);
        let out = run_wind(&pairs, WindConfig::default(), Management::Unmanaged);
        assert!(out.events.iter().any(|e| matches!(e, WindEvent::PairLost { pair: 2, .. })));
        // A quarter of the offered load backs up forever after the loss:
        // availability collapses.
        assert!(out.availability < 0.8, "{}", out.availability);
    }

    #[test]
    fn managed_array_absorbs_transient_stutter_without_spares() {
        let inj = Injector::Episodes {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(120) },
            duration: DurationDist::Exp { mean: SimDuration::from_secs(20) },
            factor: 0.3,
        };
        let mut pairs = healthy_pairs(4);
        let p = inj.timeline(SimDuration::from_secs(7_200), &mut Stream::from_seed(9));
        pairs[0] = MirrorPair::new(VDisk::new(10.0 * MB).with_profile(p), VDisk::new(10.0 * MB));
        let out = run_wind(&pairs, WindConfig::default(), Management::Managed { hot_spares: 0 });
        // Aggregate capacity dips to 33 MB/s during episodes — still above
        // the 25 MB/s offered load, so pull-style distribution rides
        // through with barely any backlog.
        assert!(out.availability > 0.95, "{}", out.availability);
        // And no rebuild was wasted on a transient.
        assert!(!out.events.iter().any(|e| matches!(e, WindEvent::RebuildStarted { .. })));
    }

    #[test]
    fn stutter_makes_the_unmanaged_array_miss_load() {
        // A persistent 30% pair under static shares cannot carry its 1/n.
        let slow = Injector::StaticSlowdown { factor: 0.3 }
            .timeline(SimDuration::from_secs(7_200), &mut Stream::from_seed(11));
        let mut pairs = healthy_pairs(4);
        pairs[3] = MirrorPair::new(VDisk::new(10.0 * MB).with_profile(slow), VDisk::new(10.0 * MB));
        let cfg = WindConfig { offered_load: 30e6, ..WindConfig::default() };
        let unmanaged = run_wind(&pairs, cfg, Management::Unmanaged);
        let managed = run_wind(&pairs, cfg, Management::Managed { hot_spares: 0 });
        // Unmanaged: pair 3 serves 3 of its 7.5 MB/s share; the array
        // delivers ~25.5 of 30 MB/s. Managed: aggregate 33 > 30 — fine.
        assert!(unmanaged.mean_throughput < 27e6, "{}", unmanaged.mean_throughput);
        assert!(managed.mean_throughput > 29.5e6, "{}", managed.mean_throughput);
        assert!(unmanaged.availability < 0.1);
        assert!(managed.availability > 0.95);
    }

    #[test]
    fn stutter_followed_by_failure_with_one_spare_each() {
        let mut pairs = healthy_pairs(6);
        pairs[0] = wearing_pair(21);
        pairs[4] = wearing_pair(22);
        let out = run_wind(&pairs, WindConfig::default(), Management::Managed { hot_spares: 2 });
        let rebuilds =
            out.events.iter().filter(|e| matches!(e, WindEvent::RebuildStarted { .. })).count();
        assert_eq!(rebuilds, 2);
        assert!(out.availability > 0.9, "{}", out.availability);
    }
}
