//! Fluid disk and mirror-pair models for the §3.2 example.
//!
//! The paper's example reasons about disks as bandwidth sources (`B` MB/s
//! vs `b` MB/s), so this module models a disk as a nominal rate shaped by a
//! fail-stutter timeline, and a RAID-1 mirror pair as the rate-combination
//! of its two disks:
//!
//! * both disks alive → writes go to both: the pair runs at the *minimum*
//!   of the two rates (the paper: "the rate of each mirror is determined by
//!   the rate of its slowest disk");
//! * one disk failed → fail-stop handled: writes continue to the survivor
//!   at the survivor's rate (degraded but correct);
//! * both disks failed → the pair has absolutely failed.

use simcore::resource::RateProfile;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// A disk modelled as a rate source with a fail-stutter timeline.
#[derive(Clone, Debug)]
pub struct VDisk {
    nominal: f64,
    profile: SlowdownProfile,
}

impl VDisk {
    /// Creates a disk with `nominal` bytes/second and a nominal timeline.
    pub fn new(nominal: f64) -> Self {
        assert!(nominal > 0.0, "nominal rate must be positive");
        VDisk { nominal, profile: SlowdownProfile::nominal() }
    }

    /// Attaches a fail-stutter timeline.
    pub fn with_profile(mut self, profile: SlowdownProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Nominal rate in bytes/second.
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// The timeline.
    pub fn profile(&self) -> &SlowdownProfile {
        &self.profile
    }

    /// Effective rate at `t` (0 during blackouts and after failure).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.nominal * self.profile.multiplier_at(t)
    }

    /// True once the disk has fail-stopped.
    pub fn failed_at(&self, t: SimTime) -> bool {
        self.profile.failed_at(t)
    }

    /// The fail-stop instant, if any.
    pub fn fail_at(&self) -> Option<SimTime> {
        self.profile.fail_at()
    }
}

/// A RAID-1 mirror pair.
#[derive(Clone, Debug)]
pub struct MirrorPair {
    /// First replica.
    pub a: VDisk,
    /// Second replica.
    pub b: VDisk,
}

impl MirrorPair {
    /// Creates a pair.
    pub fn new(a: VDisk, b: VDisk) -> Self {
        MirrorPair { a, b }
    }

    /// A pair of identical healthy disks.
    pub fn healthy(nominal: f64) -> Self {
        MirrorPair::new(VDisk::new(nominal), VDisk::new(nominal))
    }

    /// Effective *write* rate at `t` under RAID-1 semantics.
    pub fn write_rate_at(&self, t: SimTime) -> f64 {
        match (self.a.failed_at(t), self.b.failed_at(t)) {
            (false, false) => self.a.rate_at(t).min(self.b.rate_at(t)),
            (true, false) => self.b.rate_at(t),
            (false, true) => self.a.rate_at(t),
            (true, true) => 0.0,
        }
    }

    /// True once both replicas have failed (pair absolutely failed).
    pub fn failed_at(&self, t: SimTime) -> bool {
        self.a.failed_at(t) && self.b.failed_at(t)
    }

    /// The instant the pair absolutely fails (both replicas down), if ever.
    pub fn pair_fail_at(&self) -> Option<SimTime> {
        match (self.a.fail_at(), self.b.fail_at()) {
            (Some(x), Some(y)) => Some(x.max(y)),
            _ => None,
        }
    }

    /// Effective *read* rate at `t`: both replicas can serve different
    /// blocks concurrently, so a healthy pair reads at the *sum* of its
    /// replicas' rates.
    pub fn read_rate_at(&self, t: SimTime) -> f64 {
        self.a.rate_at(t) + self.b.rate_at(t)
    }

    /// Builds the pair's read-rate profile over `[0, horizon]`.
    pub fn read_rate_profile(&self, horizon: SimDuration) -> RateProfile {
        self.rate_profile_by(horizon, |p, t| p.read_rate_at(t))
    }

    /// Builds the pair's write-rate profile over `[0, horizon]` by merging
    /// both disks' breakpoints.
    pub fn write_rate_profile(&self, horizon: SimDuration) -> RateProfile {
        self.rate_profile_by(horizon, |p, t| p.write_rate_at(t))
    }

    fn rate_profile_by(
        &self,
        horizon: SimDuration,
        rate: impl Fn(&Self, SimTime) -> f64,
    ) -> RateProfile {
        let mut times: Vec<SimTime> = vec![SimTime::ZERO];
        let end = SimTime::ZERO + horizon;
        for d in [&self.a, &self.b] {
            for &(t, _) in d.profile().segments() {
                if t <= end {
                    times.push(t);
                }
            }
            if let Some(f) = d.fail_at() {
                if f <= end {
                    times.push(f);
                }
            }
        }
        times.sort_unstable();
        times.dedup();
        let bps: Vec<(SimTime, f64)> = times.into_iter().map(|t| (t, rate(self, t))).collect();
        RateProfile::from_breakpoints(bps)
    }

    /// Time to write `bytes` starting at `start`, or `None` if the pair
    /// never completes (absolute failure).
    pub fn time_to_write(
        &self,
        start: SimTime,
        bytes: f64,
        horizon: SimDuration,
    ) -> Option<SimDuration> {
        self.write_rate_profile(horizon).time_to_transfer(start, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::Injector;

    const MB: f64 = 1e6;
    const HOUR: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn healthy_pair_runs_at_disk_rate() {
        let p = MirrorPair::healthy(10.0 * MB);
        assert_eq!(p.write_rate_at(SimTime::ZERO), 10.0 * MB);
        let t = p.time_to_write(SimTime::ZERO, 100.0 * MB, HOUR).expect("alive");
        assert_eq!(t, SimDuration::from_secs(10));
    }

    #[test]
    fn pair_tracks_slowest_replica() {
        // The paper: "the rate of each mirror is determined by the rate of
        // its slowest disk."
        let slow =
            Injector::StaticSlowdown { factor: 0.5 }.timeline(HOUR, &mut Stream::from_seed(1));
        let p = MirrorPair::new(VDisk::new(10.0 * MB), VDisk::new(10.0 * MB).with_profile(slow));
        assert_eq!(p.write_rate_at(SimTime::ZERO), 5.0 * MB);
    }

    #[test]
    fn single_failure_degrades_to_survivor() {
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(10));
        let p = MirrorPair::new(VDisk::new(10.0 * MB).with_profile(dead), VDisk::new(10.0 * MB));
        assert_eq!(p.write_rate_at(SimTime::from_secs(5)), 10.0 * MB);
        // After the failure, the survivor carries the pair at full rate.
        assert_eq!(p.write_rate_at(SimTime::from_secs(20)), 10.0 * MB);
        assert!(!p.failed_at(SimTime::from_secs(20)));
        assert_eq!(p.pair_fail_at(), None);
    }

    #[test]
    fn double_failure_kills_the_pair() {
        let d1 = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(10));
        let d2 = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(20));
        let p = MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(d1),
            VDisk::new(10.0 * MB).with_profile(d2),
        );
        assert!(!p.failed_at(SimTime::from_secs(15)));
        assert!(p.failed_at(SimTime::from_secs(20)));
        assert_eq!(p.pair_fail_at(), Some(SimTime::from_secs(20)));
        // A large write never finishes.
        assert_eq!(p.time_to_write(SimTime::ZERO, 1e9, HOUR), None);
    }

    #[test]
    fn time_varying_rates_integrate() {
        // Replica b halves its speed at t = 5 s.
        let stepped = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(5), 0.5),
        ]);
        let p = MirrorPair::new(VDisk::new(10.0 * MB), VDisk::new(10.0 * MB).with_profile(stepped));
        // 75 MB: 50 MB in the first 5 s, then 25 MB at 5 MB/s = 5 s more.
        let t = p.time_to_write(SimTime::ZERO, 75.0 * MB, HOUR).expect("alive");
        assert_eq!(t, SimDuration::from_secs(10));
    }

    #[test]
    fn write_rate_profile_reflects_failure_handover() {
        let slow =
            Injector::StaticSlowdown { factor: 0.3 }.timeline(HOUR, &mut Stream::from_seed(2));
        let dying = slow.with_failure_at(SimTime::from_secs(100));
        let p = MirrorPair::new(VDisk::new(10.0 * MB).with_profile(dying), VDisk::new(10.0 * MB));
        let prof = p.write_rate_profile(HOUR);
        // Before failure the stuttering replica gates the pair at 3 MB/s;
        // after it dies the healthy survivor restores 10 MB/s.
        assert_eq!(prof.rate_at(SimTime::from_secs(50)), 3.0 * MB);
        assert_eq!(prof.rate_at(SimTime::from_secs(150)), 10.0 * MB);
    }
}
