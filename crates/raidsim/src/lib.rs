//! # raidsim — the §3.2 storage example
//!
//! The worked example of *"Fail-Stutter Fault Tolerance"*: write `D` blocks
//! to `2·N` disks in RAID-10, under three designs of increasing realism
//! about performance faults.
//!
//! * [`vdisk`] — fluid disks with fail-stutter timelines and RAID-1
//!   mirror-pair rate semantics.
//! * [`controller`] — the three striping controllers: equal-static
//!   (scenario 1, throughput `N·b`), proportional-static (scenario 2,
//!   `(N−1)·B + b`), and adaptive chunk-pulling with a block map
//!   (scenario 3, ≈ full available bandwidth).
//! * [`model`] — the paper's closed-form predictions, used as oracles.
//! * [`spare`] — hot spares and reconstruction, itself a stutter source.
//!
//! # Examples
//!
//! ```
//! use raidsim::prelude::*;
//! use simcore::prelude::*;
//! use stutter::prelude::*;
//!
//! // N = 4 pairs at 10 MB/s; one pair stutters at 50%.
//! let slow = Injector::StaticSlowdown { factor: 0.5 }
//!     .timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
//! let mut pairs: Vec<MirrorPair> =
//!     (0..4).map(|_| MirrorPair::healthy(10e6)).collect();
//! pairs[0] = MirrorPair::new(VDisk::new(10e6).with_profile(slow), VDisk::new(10e6));
//! let array = Raid10::new(pairs, SimDuration::from_secs(3600));
//!
//! let w = Workload::new(65_536, 65_536); // 4 GB
//! let s1 = array.write_static(w, SimTime::ZERO).unwrap();
//! let s3 = array.write_adaptive(w, SimTime::ZERO, 64).unwrap();
//! assert!(s3.throughput > 1.5 * s1.throughput); // adaptive wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod mech;
pub mod model;
pub mod oracle;
pub mod reads;
pub mod spare;
pub mod vdisk;
pub mod wind;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::controller::{MapEntry, Raid10, RaidError, Workload, WriteOutcome};
    pub use crate::mech::{MechOutcome, MechPair, MechRaid10};
    pub use crate::model::{
        scenario1_throughput, scenario1_waste, scenario2_throughput, scenario3_throughput,
    };
    pub use crate::oracle::{Band, Violation};
    pub use crate::reads::{read_workload, ReadOutcome, ReadPolicy};
    pub use crate::spare::{rebuild_to_spare, RebuildOutcome, RebuildPolicy};
    pub use crate::vdisk::{MirrorPair, VDisk};
    pub use crate::wind::{run_wind, Management, WindConfig, WindEvent, WindOutcome};
}
