//! Tolerance-banded oracles around the closed-form model.
//!
//! The campaign harness (`fs-bench`) replays every §3.2 scenario under every
//! injector from the §2 catalog and needs machine-checkable verdicts, not
//! plots. This module turns the [`crate::model`] predictions and the paper's
//! qualitative claims ("adaptive approaches full available bandwidth", "a
//! performance fault never speeds an array up") into [`Band`] checks that
//! either pass or produce a structured [`Violation`].
//!
//! Soundness notes, encoded in which checks apply when:
//!
//! * The closed forms assume a *constant* slow-pair rate `b`; they are only
//!   asserted when the injected profile is constant (see
//!   [`profile_is_constant`] in the harness). Episodic faults get the
//!   weaker metamorphic checks instead.
//! * Scenario 2 ≥ scenario 1 is a theorem only when the gauge observes the
//!   long-run rate; with an instantaneous gauge and a drifting fault the
//!   proportional controller can be *mis*-calibrated, so the ordering
//!   oracle asserts only `s3 ≳ s2` and `s3 ≳ s1`.

use crate::controller::{Workload, WriteOutcome};
use crate::model;

/// An inclusive acceptance interval for a measured scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Smallest acceptable value.
    pub lo: f64,
    /// Largest acceptable value.
    pub hi: f64,
}

impl Band {
    /// A symmetric relative band: `center · (1 ± rel)`.
    pub fn around(center: f64, rel: f64) -> Band {
        Band { lo: center * (1.0 - rel), hi: center * (1.0 + rel) }
    }

    /// A one-sided lower bound.
    pub fn at_least(lo: f64) -> Band {
        Band { lo, hi: f64::INFINITY }
    }

    /// A one-sided upper bound.
    pub fn at_most(hi: f64) -> Band {
        Band { lo: f64::NEG_INFINITY, hi }
    }

    /// Whether `x` falls inside the band (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// A failed oracle check: which oracle, and what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable identifier of the oracle that fired.
    pub oracle: &'static str,
    /// Human-readable account of expected vs measured.
    pub detail: String,
}

impl Violation {
    fn band(oracle: &'static str, measured: f64, band: Band) -> Violation {
        Violation {
            oracle,
            detail: format!("measured {measured:.6e} outside [{:.6e}, {:.6e}]", band.lo, band.hi),
        }
    }
}

/// Checks a measured value against a band under a named oracle.
pub fn check_band(oracle: &'static str, measured: f64, band: Band) -> Result<(), Violation> {
    if band.contains(measured) {
        Ok(())
    } else {
        Err(Violation::band(oracle, measured, band))
    }
}

/// Every block handed to the controller must land on exactly one pair.
pub fn check_conservation(out: &WriteOutcome, w: Workload) -> Result<(), Violation> {
    let assigned: u64 = out.per_pair_blocks.iter().sum();
    if assigned == w.blocks {
        Ok(())
    } else {
        Err(Violation {
            oracle: "raid/conservation",
            detail: format!("assigned {assigned} blocks, workload has {}", w.blocks),
        })
    }
}

/// The adaptive block map, when present, must tile `[0, blocks)` exactly.
pub fn check_block_map_partition(out: &WriteOutcome, w: Workload) -> Result<(), Violation> {
    let Some(map) = &out.block_map else {
        return Ok(());
    };
    let mut entries: Vec<(u64, u64)> = map.iter().map(|e| (e.start, e.len)).collect();
    entries.sort_unstable();
    let mut next = 0u64;
    for (start, len) in entries {
        if start != next || len == 0 {
            return Err(Violation {
                oracle: "raid/block-map",
                detail: format!("map entry starts at {start}, expected {next} (len {len})"),
            });
        }
        next = start + len;
    }
    if next != w.blocks {
        return Err(Violation {
            oracle: "raid/block-map",
            detail: format!("map covers {next} blocks, workload has {}", w.blocks),
        });
    }
    Ok(())
}

/// §3.2 scenario 1 closed form: equal-static striping delivers `N·b`.
///
/// Valid only when the slow pair runs at a constant rate `b`.
pub fn check_scenario1(
    out: &WriteOutcome,
    n: usize,
    big_b: f64,
    b: f64,
    rel_tol: f64,
) -> Result<(), Violation> {
    let predicted = model::scenario1_throughput(n, big_b, b);
    check_band("raid/scenario1-closed-form", out.throughput, Band::around(predicted, rel_tol))
}

/// §3.2 scenario 2 closed form: proportional-static delivers `(N−1)·B + b`.
///
/// Valid only when the slow pair runs at a constant rate `b` *and* the gauge
/// therefore observes the true long-run rate.
pub fn check_scenario2(
    out: &WriteOutcome,
    n: usize,
    big_b: f64,
    b: f64,
    rel_tol: f64,
) -> Result<(), Violation> {
    let predicted = model::scenario2_throughput(n, big_b, b);
    check_band("raid/scenario2-closed-form", out.throughput, Band::around(predicted, rel_tol))
}

/// §3.2 scenario 3: adaptive striping approaches full available bandwidth,
/// i.e. the scenario-2 optimum, from below (chunk granularity costs a tail)
/// and never exceeds it by more than tolerance.
pub fn check_scenario3(
    out: &WriteOutcome,
    n: usize,
    big_b: f64,
    b: f64,
    rel_tol: f64,
) -> Result<(), Violation> {
    let available = model::scenario2_throughput(n, big_b, b);
    check_band(
        "raid/scenario3-closed-form",
        out.throughput,
        Band { lo: available * (1.0 - rel_tol), hi: available * (1.0 + rel_tol) },
    )
}

/// Metamorphic: no injected performance fault may push any controller past
/// the all-healthy array's `N·B` (a stutter only removes bandwidth).
pub fn check_fault_never_helps(
    out: &WriteOutcome,
    n: usize,
    big_b: f64,
    rel_tol: f64,
) -> Result<(), Violation> {
    let healthy = big_b * n as f64;
    check_band("raid/fault-never-helps", out.throughput, Band::at_most(healthy * (1.0 + rel_tol)))
}

/// Metamorphic ordering (§3.2): more adaptivity never materially hurts —
/// `s3 ≥ s2 · (1−tol)` and `s3 ≥ s1 · (1−tol)`.
pub fn check_ordering(s1: f64, s2: f64, s3: f64, rel_tol: f64) -> Result<(), Violation> {
    if s3 < s2 * (1.0 - rel_tol) {
        return Err(Violation {
            oracle: "raid/ordering-s3-vs-s2",
            detail: format!("adaptive {s3:.6e} below proportional {s2:.6e} beyond tolerance"),
        });
    }
    if s3 < s1 * (1.0 - rel_tol) {
        return Err(Violation {
            oracle: "raid/ordering-s3-vs-s1",
            detail: format!("adaptive {s3:.6e} below equal-static {s1:.6e} beyond tolerance"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Raid10;
    use crate::vdisk::{MirrorPair, VDisk};
    use simcore::rng::Stream;
    use simcore::time::{SimDuration, SimTime};
    use stutter::injector::Injector;

    fn slow_array(factor: f64) -> Raid10 {
        let horizon = SimDuration::from_secs(100_000);
        let profile =
            Injector::StaticSlowdown { factor }.timeline(horizon, &mut Stream::from_seed(7));
        let mut pairs: Vec<MirrorPair> = (0..4).map(|_| MirrorPair::healthy(10e6)).collect();
        pairs[0] = MirrorPair::new(VDisk::new(10e6).with_profile(profile), VDisk::new(10e6));
        Raid10::new(pairs, horizon)
    }

    #[test]
    fn closed_forms_accept_the_simulated_controllers() {
        let array = slow_array(0.5);
        let w = Workload::new(16_384, 65_536);
        let s1 = array.write_static(w, SimTime::ZERO).unwrap();
        let s2 = array.write_proportional(w, SimTime::ZERO, SimTime::ZERO).unwrap();
        let s3 = array.write_adaptive(w, SimTime::ZERO, 64).unwrap();
        check_scenario1(&s1, 4, 10e6, 5e6, 0.02).unwrap();
        check_scenario2(&s2, 4, 10e6, 5e6, 0.02).unwrap();
        check_scenario3(&s3, 4, 10e6, 5e6, 0.05).unwrap();
        // Chunk granularity leaves adaptive ~1% under the proportional optimum.
        check_ordering(s1.throughput, s2.throughput, s3.throughput, 0.03).unwrap();
        check_conservation(&s3, w).unwrap();
        check_block_map_partition(&s3, w).unwrap();
        for out in [&s1, &s2, &s3] {
            check_fault_never_helps(out, 4, 10e6, 0.001).unwrap();
        }
    }

    #[test]
    fn perturbed_measurement_is_caught() {
        let array = slow_array(0.5);
        let w = Workload::new(16_384, 65_536);
        let mut s1 = array.write_static(w, SimTime::ZERO).unwrap();
        // A controller delivering 10% more than N·b is outside any honest band.
        s1.throughput *= 1.10;
        let v = check_scenario1(&s1, 4, 10e6, 5e6, 0.02).unwrap_err();
        assert_eq!(v.oracle, "raid/scenario1-closed-form");
    }

    #[test]
    fn band_edges_are_inclusive() {
        let b = Band::around(100.0, 0.1);
        assert!(b.contains(90.0));
        assert!(b.contains(110.0));
        assert!(!b.contains(89.999));
        assert!(Band::at_least(5.0).contains(5.0));
        assert!(Band::at_most(5.0).contains(5.0));
    }
}
