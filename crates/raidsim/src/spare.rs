//! Hot spares and reconstruction.
//!
//! §3.2, scenario 1: "if an absolute failure occurs on a single disk, it
//! is detected and operation continues, perhaps with a reconstruction
//! initiated to a hot spare." Reconstruction competes with foreground
//! traffic for the survivor's bandwidth, so it is itself a source of
//! performance faults: a rebuilding pair is a stuttering pair.

use simcore::time::{SimDuration, SimTime};

use crate::vdisk::MirrorPair;

/// Policy for dividing a surviving disk's bandwidth during a rebuild.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebuildPolicy {
    /// Fraction of the survivor's bandwidth devoted to reconstruction
    /// (the rest serves foreground writes).
    pub rebuild_share: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy { rebuild_share: 0.3 }
    }
}

/// The outcome of a reconstruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebuildOutcome {
    /// When the spare holds a full copy and the pair is whole again.
    pub completed: SimTime,
    /// Mean foreground rate (bytes/s) while the rebuild ran.
    pub foreground_rate_during: f64,
}

/// Simulates reconstructing `capacity_bytes` from the survivor of `pair`
/// onto a hot spare of `spare_rate` bytes/s, starting at `start`.
///
/// Returns `None` if the survivor fails before the copy completes (data
/// loss under RAID-1).
pub fn rebuild_to_spare(
    pair: &MirrorPair,
    survivor_is_a: bool,
    capacity_bytes: f64,
    spare_rate: f64,
    policy: RebuildPolicy,
    start: SimTime,
    horizon: SimDuration,
) -> Option<RebuildOutcome> {
    assert!((0.0..=1.0).contains(&policy.rebuild_share), "rebuild share must be a fraction");
    assert!(spare_rate > 0.0, "spare rate must be positive");
    let survivor = if survivor_is_a { &pair.a } else { &pair.b };
    // Walk the survivor's profile integrating the rebuild share of its rate,
    // capped by the spare's ingest rate.
    let mut copied = 0.0;
    let mut t = start;
    let step = SimDuration::from_millis(100);
    let end = start + horizon;
    while copied < capacity_bytes {
        if t >= end {
            return None;
        }
        if survivor.failed_at(t) {
            return None;
        }
        let read_rate = survivor.rate_at(t) * policy.rebuild_share;
        let rate = read_rate.min(spare_rate);
        copied += rate * step.as_secs_f64();
        t += step;
    }
    let elapsed = (t - start).as_secs_f64();
    let foreground = survivor.rate_at(start) * (1.0 - policy.rebuild_share);
    let _ = elapsed;
    Some(RebuildOutcome { completed: t, foreground_rate_during: foreground })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdisk::VDisk;
    use stutter::injector::SlowdownProfile;

    const MB: f64 = 1e6;
    const DAY: SimDuration = SimDuration::from_secs(86_400);

    fn degraded_pair() -> MirrorPair {
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        MirrorPair::new(VDisk::new(10.0 * MB), VDisk::new(10.0 * MB).with_profile(dead))
    }

    #[test]
    fn rebuild_time_tracks_share_and_capacity() {
        let pair = degraded_pair();
        // 1 GB at 30% of 10 MB/s = 3 MB/s → ~333 s.
        let out = rebuild_to_spare(
            &pair,
            true,
            1e9,
            20.0 * MB,
            RebuildPolicy::default(),
            SimTime::ZERO,
            DAY,
        )
        .expect("survivor healthy");
        let secs = (out.completed - SimTime::ZERO).as_secs_f64();
        assert!((secs - 333.3).abs() < 2.0, "rebuild took {secs}");
        assert!((out.foreground_rate_during - 7.0 * MB).abs() < 1e-6);
    }

    #[test]
    fn slow_spare_gates_rebuild() {
        let pair = degraded_pair();
        // Spare ingests at 1 MB/s < 3 MB/s read share.
        let out = rebuild_to_spare(
            &pair,
            true,
            1e9,
            1.0 * MB,
            RebuildPolicy::default(),
            SimTime::ZERO,
            DAY,
        )
        .expect("survivor healthy");
        let secs = (out.completed - SimTime::ZERO).as_secs_f64();
        assert!((secs - 1000.0).abs() < 2.0, "rebuild took {secs}");
    }

    #[test]
    fn survivor_death_means_data_loss() {
        let dying = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(10));
        let dead = SlowdownProfile::nominal().with_failure_at(SimTime::ZERO);
        let pair = MirrorPair::new(
            VDisk::new(10.0 * MB).with_profile(dying),
            VDisk::new(10.0 * MB).with_profile(dead),
        );
        let out = rebuild_to_spare(
            &pair,
            true,
            1e9,
            20.0 * MB,
            RebuildPolicy::default(),
            SimTime::ZERO,
            DAY,
        );
        assert!(out.is_none());
    }

    #[test]
    fn higher_share_rebuilds_faster_but_hurts_foreground() {
        let pair = degraded_pair();
        let fast = rebuild_to_spare(
            &pair,
            true,
            1e9,
            20.0 * MB,
            RebuildPolicy { rebuild_share: 0.6 },
            SimTime::ZERO,
            DAY,
        )
        .expect("ok");
        let slow = rebuild_to_spare(
            &pair,
            true,
            1e9,
            20.0 * MB,
            RebuildPolicy { rebuild_share: 0.3 },
            SimTime::ZERO,
            DAY,
        )
        .expect("ok");
        assert!(fast.completed < slow.completed);
        assert!(fast.foreground_rate_during < slow.foreground_rate_during);
    }
}
