//! Closed-form throughput predictions from §3.2.
//!
//! The paper gives exact expressions for the first two scenarios under a
//! single statically slow pair (`b < B`); the third delivers "the full
//! available bandwidth". These functions are the oracle the simulation is
//! validated against in the experiment suite.

/// Scenario 1 (equal static striping): one pair at `b` MB/s among `n`
/// pairs of `B` MB/s delivers `n · b`.
pub fn scenario1_throughput(n: usize, _big_b: f64, b: f64) -> f64 {
    n as f64 * b
}

/// Scenario 2 (proportional static striping, correctly gauged):
/// `(n − 1) · B + b`.
pub fn scenario2_throughput(n: usize, big_b: f64, b: f64) -> f64 {
    (n as f64 - 1.0) * big_b + b
}

/// Scenario 3 (adaptive): the full available bandwidth — the sum of the
/// pairs' current rates.
pub fn scenario3_throughput(rates: &[f64]) -> f64 {
    rates.iter().sum()
}

/// The fraction of raw bandwidth a fail-stop design wastes for a given
/// slow-pair ratio `b/B`: `1 − (n·b) / ((n−1)·B + b)` relative to what the
/// same hardware could deliver.
pub fn scenario1_waste(n: usize, big_b: f64, b: f64) -> f64 {
    1.0 - scenario1_throughput(n, big_b, b) / scenario3_throughput_uniform(n, big_b, b)
}

fn scenario3_throughput_uniform(n: usize, big_b: f64, b: f64) -> f64 {
    (n as f64 - 1.0) * big_b + b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_expressions() {
        // N = 4, B = 10, b = 5.
        assert_eq!(scenario1_throughput(4, 10.0, 5.0), 20.0);
        assert_eq!(scenario2_throughput(4, 10.0, 5.0), 35.0);
        assert_eq!(scenario3_throughput(&[10.0, 10.0, 10.0, 5.0]), 35.0);
    }

    #[test]
    fn no_slow_pair_no_gap() {
        assert_eq!(scenario1_throughput(8, 10.0, 10.0), 80.0);
        assert_eq!(scenario2_throughput(8, 10.0, 10.0), 80.0);
        assert!(scenario1_waste(8, 10.0, 10.0).abs() < 1e-12);
    }

    #[test]
    fn waste_grows_as_b_shrinks() {
        let w_half = scenario1_waste(4, 10.0, 5.0);
        let w_tenth = scenario1_waste(4, 10.0, 1.0);
        assert!(w_tenth > w_half);
        assert!((w_half - (1.0 - 20.0 / 35.0)).abs() < 1e-12);
    }
}
