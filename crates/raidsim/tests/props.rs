//! Property tests for the RAID substrate beyond the fluid controllers:
//! the WiND manager and the mechanical array.

use proptest::prelude::*;

use blockdev::disk::Disk;
use blockdev::geometry::Geometry;
use raidsim::prelude::*;
use simcore::rng::Stream;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::Injector;

fn pairs_with_factors(factors: &[f64]) -> Vec<MirrorPair> {
    factors
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            if f >= 1.0 {
                MirrorPair::healthy(10e6)
            } else {
                let p = Injector::StaticSlowdown { factor: f }
                    .timeline(SimDuration::from_secs(100_000), &mut Stream::from_seed(i as u64));
                MirrorPair::new(VDisk::new(10e6).with_profile(p), VDisk::new(10e6))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// WiND metrics are well-formed: availability in [0,1], delivered
    /// bandwidth never exceeds offered, and runs are deterministic.
    #[test]
    fn wind_metrics_well_formed(
        factors in proptest::collection::vec(0.2f64..1.0, 2..6),
        offered_frac in 0.3f64..0.95,
        managed in any::<bool>()
    ) {
        let pairs = pairs_with_factors(&factors);
        let cfg = WindConfig {
            offered_load: offered_frac * 10e6 * factors.len() as f64,
            duration: SimDuration::from_secs(600),
            ..WindConfig::default()
        };
        let mode = if managed { Management::Managed { hot_spares: 1 } } else { Management::Unmanaged };
        let a = run_wind(&pairs, cfg, mode);
        let b = run_wind(&pairs, cfg, mode);
        prop_assert!((0.0..=1.0).contains(&a.availability));
        prop_assert!(a.mean_throughput <= cfg.offered_load * 1.001);
        prop_assert_eq!(a.mean_throughput, b.mean_throughput);
        prop_assert_eq!(a.availability, b.availability);
        prop_assert_eq!(a.events.len(), b.events.len());
    }

    /// Managed WiND never delivers less than unmanaged on the same
    /// hardware (pull beats pinned static shares).
    #[test]
    fn managed_never_worse(
        factors in proptest::collection::vec(0.2f64..1.0, 2..6),
        offered_frac in 0.3f64..0.95
    ) {
        let pairs = pairs_with_factors(&factors);
        let cfg = WindConfig {
            offered_load: offered_frac * 10e6 * factors.len() as f64,
            duration: SimDuration::from_secs(600),
            ..WindConfig::default()
        };
        let unmanaged = run_wind(&pairs, cfg, Management::Unmanaged);
        let managed = run_wind(&pairs, cfg, Management::Managed { hot_spares: 0 });
        prop_assert!(
            managed.mean_throughput >= unmanaged.mean_throughput * 0.999,
            "managed {} vs unmanaged {}",
            managed.mean_throughput,
            unmanaged.mean_throughput
        );
    }

    /// The mechanical array conserves blocks and both designs agree on
    /// totals.
    #[test]
    fn mech_conserves_blocks(
        n_pairs in 2usize..5,
        blocks in 64u64..2_048,
        chunk in 8u64..128
    ) {
        let build = || {
            MechRaid10::new(
                (0..n_pairs)
                    .map(|i| {
                        let root = Stream::from_seed(i as u64);
                        MechPair::new(
                            Disk::new(Geometry::barracuda_7200(), root.derive("raid-props.a")),
                            Disk::new(Geometry::barracuda_7200(), root.derive("raid-props.b")),
                        )
                    })
                    .collect(),
            )
        };
        let w = Workload::new(blocks, 65_536);
        let s1 = build().write_static(w, SimTime::ZERO, chunk).expect("alive");
        let s3 = build().write_adaptive(w, SimTime::ZERO, chunk).expect("alive");
        prop_assert_eq!(s1.per_pair_blocks.iter().sum::<u64>(), blocks);
        prop_assert_eq!(s3.per_pair_blocks.iter().sum::<u64>(), blocks);
        prop_assert!(s1.throughput > 0.0 && s3.throughput > 0.0);
        // On healthy hardware, adaptive is within rounding of static.
        let ratio = s3.elapsed.as_secs_f64() / s1.elapsed.as_secs_f64();
        prop_assert!(ratio < 1.25, "adaptive {ratio}x static on healthy metal");
    }

    /// Array read throughput is at least write throughput for any static
    /// speed mix (reads use both replicas).
    #[test]
    fn reads_never_slower_than_writes(
        factors in proptest::collection::vec(0.2f64..1.0, 2..6)
    ) {
        let pairs = pairs_with_factors(&factors);
        let array = Raid10::new(pairs, SimDuration::from_secs(100_000));
        let w = Workload::new(4_096, 65_536);
        let writes = array.write_static(w, SimTime::ZERO).expect("alive");
        let reads = array.read_static(w, SimTime::ZERO).expect("alive");
        prop_assert!(reads.throughput >= writes.throughput * 0.999);
        let aw = array.write_adaptive(w, SimTime::ZERO, 32).expect("alive");
        let ar = array.read_adaptive(w, SimTime::ZERO, 32).expect("alive");
        prop_assert!(ar.throughput >= aw.throughput * 0.999);
    }
}
