//! The disk model: geometry + remapping + fail-stutter timeline.
//!
//! A [`Disk`] serves reads and writes through a FIFO queue with the
//! classical mechanical cost model (seek + rotation + zoned transfer),
//! taxed by two fail-stutter mechanisms:
//!
//! * **grown defects** ([`crate::remap`]): each remapped block in a request
//!   costs an extra round-trip seek to the spare area, the silent
//!   bandwidth tax of §2.1.2's 5.0-vs-5.5 MB/s Hawk;
//! * **a slowdown timeline** ([`stutter::injector::SlowdownProfile`]):
//!   thermal recalibrations, bus-reset blackouts and wear-out scale or
//!   suspend the mechanism, and a permanent fail-stop cuts it off.

use simcore::resource::{FcfsServer, Grant};
use simcore::rng::Stream;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

use crate::geometry::Geometry;
use crate::remap::RemapTable;

/// Errors a disk can return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// The disk has absolutely (fail-stop) failed.
    Failed,
    /// The request extends beyond the end of the device.
    OutOfRange,
    /// The slowdown timeline never becomes active again within the
    /// simulated horizon (treated as an absolute failure by callers).
    NeverActive,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Failed => write!(f, "disk has fail-stopped"),
            DiskError::OutOfRange => write!(f, "request beyond end of device"),
            DiskError::NeverActive => write!(f, "disk never becomes active again"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A disk: mechanical model, defect list, and fail-stutter timeline.
#[derive(Clone, Debug)]
pub struct Disk {
    geom: Geometry,
    remap: RemapTable,
    profile: SlowdownProfile,
    server: FcfsServer,
    head_cyl: u32,
    // The LBA immediately after the last transfer: a request starting here
    // streams without repositioning.
    next_lba: u64,
    rng: Stream,
    bytes_moved: u64,
}

impl Disk {
    /// Creates a healthy disk with a 0.25% spare area.
    pub fn new(geom: Geometry, rng: Stream) -> Self {
        let spare = (geom.blocks / 400).max(16);
        Disk {
            remap: RemapTable::new(geom.blocks, spare),
            geom,
            profile: SlowdownProfile::nominal(),
            server: FcfsServer::new(),
            head_cyl: 0,
            next_lba: 0,
            rng,
            bytes_moved: 0,
        }
    }

    /// Attaches a fail-stutter timeline (replacing any previous one).
    pub fn with_profile(mut self, profile: SlowdownProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Grows `count` uniformly scattered defects.
    pub fn with_random_defects(mut self, count: u64) -> Self {
        let mut rng = self.rng.derive("defects");
        self.remap.grow_random_defects(count, &mut rng);
        self
    }

    /// The geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The defect table.
    pub fn remap_table(&self) -> &RemapTable {
        &self.remap
    }

    /// The attached fail-stutter timeline.
    pub fn profile(&self) -> &SlowdownProfile {
        &self.profile
    }

    /// True if the disk has fail-stopped by `now`.
    pub fn failed_at(&self, now: SimTime) -> bool {
        self.profile.failed_at(now)
    }

    /// Total bytes transferred so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// The earliest instant a new request could begin service.
    pub fn next_free(&self) -> SimTime {
        self.server.next_free()
    }

    /// Stalls the disk until `t` (e.g. a SCSI bus reset on its chain).
    pub fn block_until(&mut self, t: SimTime) {
        self.server.block_until(t);
    }

    /// Reads `nblocks` starting at `lba`, arriving at `now`.
    pub fn read(&mut self, now: SimTime, lba: u64, nblocks: u64) -> Result<Grant, DiskError> {
        self.io(now, lba, nblocks)
    }

    /// Writes `nblocks` starting at `lba`, arriving at `now` (same cost
    /// model as reads in this simulator).
    pub fn write(&mut self, now: SimTime, lba: u64, nblocks: u64) -> Result<Grant, DiskError> {
        self.io(now, lba, nblocks)
    }

    fn io(&mut self, now: SimTime, lba: u64, nblocks: u64) -> Result<Grant, DiskError> {
        if nblocks == 0 || lba + nblocks > self.geom.blocks {
            return Err(DiskError::OutOfRange);
        }
        if self.profile.failed_at(now) {
            return Err(DiskError::Failed);
        }
        // When does the head actually pick this request up?
        let queue_start = now.max(self.server.next_free());
        let start = match self.profile.next_active(queue_start) {
            Some(t) => t,
            None => {
                return if self.profile.failed_at(queue_start) {
                    Err(DiskError::Failed)
                } else {
                    Err(DiskError::NeverActive)
                }
            }
        };

        let service = self.service_time(start, lba, nblocks);
        // Account the queueing delay imposed by a blackout as blocked time.
        self.server.block_until(start);
        let grant = self.server.serve(now, service);
        self.head_cyl = self.geom.cylinder_of(lba + nblocks - 1);
        self.next_lba = lba + nblocks;
        self.bytes_moved += nblocks * self.geom.block_bytes as u64;
        Ok(grant)
    }

    /// Mechanical service time for one request beginning at `start`.
    fn service_time(&mut self, start: SimTime, lba: u64, nblocks: u64) -> SimDuration {
        let target_cyl = self.geom.cylinder_of(lba);
        let mut t = self.geom.seek_time(self.head_cyl, target_cyl);
        if lba != self.next_lba {
            // Any discontiguous access re-synchronises with the platter:
            // a uniformly random rotational delay, even on the same
            // cylinder. Back-to-back sequential transfers stream for free.
            let frac = self.rng.next_f64();
            t += self.geom.rotation_time().mul_f64(frac);
        }
        t += self.geom.transfer_time(lba, nblocks);

        // Each remapped block costs a round trip to the spare area and back:
        // two long seeks plus half a rotation each way on average.
        let remapped = self.remap.remapped_in_range(lba, nblocks);
        if remapped > 0 {
            let spare_cyl = self.geom.cylinders - 1;
            let round_trip =
                self.geom.seek_time(target_cyl, spare_cyl) * 2 + self.geom.rotation_time();
            t += round_trip * remapped;
        }

        // The stutter multiplier scales the whole mechanism.
        let m = self.profile.multiplier_at(start);
        debug_assert!(m > 0.0, "service must start in an active segment");
        SimDuration::from_secs_f64(t.as_secs_f64() / m)
    }
}

/// Measures sequential read bandwidth (bytes/second) by streaming
/// `total_bytes` from LBA 0 in `chunk_bytes` requests starting at `now`.
///
/// Returns `(bandwidth, finish_time)`.
pub fn measure_sequential_read(
    disk: &mut Disk,
    now: SimTime,
    total_bytes: u64,
    chunk_bytes: u64,
) -> Result<(f64, SimTime), DiskError> {
    let bs = disk.geometry().block_bytes as u64;
    let chunk_blocks = (chunk_bytes / bs).max(1);
    let total_blocks = (total_bytes / bs).max(1);
    let mut lba = 0;
    let mut t = now;
    let mut finish = now;
    while lba < total_blocks {
        let n = chunk_blocks.min(total_blocks - lba);
        let grant = disk.read(t, lba, n)?;
        finish = grant.finish;
        t = grant.finish;
        lba += n;
    }
    let elapsed = (finish - now).as_secs_f64();
    let bw = if elapsed > 0.0 { (total_blocks * bs) as f64 / elapsed } else { 0.0 };
    Ok((bw, finish))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stutter::injector::{DurationDist, Injector};

    fn disk() -> Disk {
        Disk::new(Geometry::hawk_5400(), Stream::from_seed(7).derive("disk-unit.disk"))
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn sequential_read_approaches_outer_rate() {
        let mut d = disk();
        let (bw, _) =
            measure_sequential_read(&mut d, SimTime::ZERO, 64 * MB, MB).expect("healthy disk");
        // Within 5% of 5.5 MB/s (seek/rotation amortised away).
        assert!((bw / 5.5e6 - 1.0).abs() < 0.05, "bw {bw}");
    }

    #[test]
    fn defective_disk_loses_bandwidth() {
        // Calibrated to the paper: a remap-heavy disk reads ~5.0 MB/s
        // where its peers read 5.5 MB/s.
        let mut clean = disk();
        let mut dirty = disk().with_random_defects(2_000);
        let (bw_clean, _) =
            measure_sequential_read(&mut clean, SimTime::ZERO, 64 * MB, MB).expect("ok");
        let (bw_dirty, _) =
            measure_sequential_read(&mut dirty, SimTime::ZERO, 64 * MB, MB).expect("ok");
        assert!(bw_dirty < bw_clean * 0.97, "dirty {bw_dirty} vs clean {bw_clean}");
        assert!(bw_dirty > bw_clean * 0.5, "penalty should be a tax, not a collapse");
    }

    #[test]
    fn random_access_slower_than_sequential() {
        let mut d = disk();
        let g0 = d.read(SimTime::ZERO, 0, 64).expect("ok");
        // A far-away block pays seek + rotation.
        let far = d.geometry().blocks - 1_000;
        let g1 = d.read(g0.finish, far, 64).expect("ok");
        let near_cost = g0.finish - g0.start;
        let far_cost = g1.finish - g1.start;
        assert!(far_cost > near_cost * 2, "far {far_cost} vs near {near_cost}");
    }

    #[test]
    fn slowdown_profile_halves_bandwidth() {
        let mut d = disk().with_profile(
            Injector::StaticSlowdown { factor: 0.5 }
                .timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1)),
        );
        let (bw, _) = measure_sequential_read(&mut d, SimTime::ZERO, 32 * MB, MB).expect("ok");
        assert!((bw / 2.75e6 - 1.0).abs() < 0.06, "bw {bw}");
    }

    #[test]
    fn blackout_delays_request() {
        // Blacked out from t=10s to t=20s.
        let profile = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(10), 0.0),
            (SimTime::from_secs(20), 1.0),
        ]);
        let mut d = disk().with_profile(profile);
        let g = d.read(SimTime::from_secs(12), 0, 64).expect("ok");
        assert!(g.finish >= SimTime::from_secs(20), "served during blackout: {g:?}");
    }

    #[test]
    fn failed_disk_errors() {
        let profile = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(5));
        let mut d = disk().with_profile(profile);
        assert!(d.read(SimTime::from_secs(1), 0, 8).is_ok());
        assert_eq!(d.read(SimTime::from_secs(6), 0, 8), Err(DiskError::Failed));
        assert!(d.failed_at(SimTime::from_secs(6)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = disk();
        let blocks = d.geometry().blocks;
        assert_eq!(d.read(SimTime::ZERO, blocks, 1), Err(DiskError::OutOfRange));
        assert_eq!(d.read(SimTime::ZERO, 0, 0), Err(DiskError::OutOfRange));
    }

    #[test]
    fn identical_seeds_identical_behaviour() {
        let mut a = disk();
        let mut b = disk();
        let ga = a.read(SimTime::ZERO, 500_000, 64).expect("ok");
        let gb = b.read(SimTime::ZERO, 500_000, 64).expect("ok");
        assert_eq!(ga, gb);
    }

    #[test]
    fn thermal_recalibration_produces_latency_spikes() {
        // §2.1.2: disks "go off-line at random intervals for short periods
        // of time, apparently due to thermal recalibrations."
        let inj = Injector::Blackouts {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(3) },
            duration: DurationDist::Uniform {
                lo: SimDuration::from_millis(500),
                hi: SimDuration::from_millis(1500),
            },
        };
        let profile = inj.timeline(SimDuration::from_secs(600), &mut Stream::from_seed(3));
        let mut d = disk().with_profile(profile);
        let mut spikes = 0;
        let mut t = SimTime::ZERO;
        for i in 0..2_000 {
            let lba = (i % 1_000) * 64;
            let g = d.read(t, lba, 64).expect("no absolute failure here");
            if g.latency_from(t) > SimDuration::from_millis(400) {
                spikes += 1;
            }
            t = g.finish;
        }
        assert!(spikes >= 2, "expected recalibration spikes, saw {spikes}");
    }

    #[test]
    fn bytes_moved_accumulates() {
        let mut d = disk();
        d.read(SimTime::ZERO, 0, 100).expect("ok");
        assert_eq!(d.bytes_moved(), 100 * 512);
    }
}
