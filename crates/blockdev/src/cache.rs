//! A drive read cache with read-ahead.
//!
//! Part of why "identical" disks behave differently (§2.1.2): the drive's
//! cache segments, read-ahead policy, and firmware revision shape observed
//! latency at least as much as the mechanism does. [`CachedDisk`] wraps a
//! [`Disk`] with a segment cache: sequential re-reads and read-ahead hits
//! are served at bus speed without touching the mechanism.

use simcore::resource::Grant;
use simcore::time::{SimDuration, SimTime};

use crate::disk::{Disk, DiskError};

/// Configuration of the drive cache.
#[derive(Clone, Copy, Debug)]
pub struct DriveCacheConfig {
    /// Number of cache segments (distinct sequential streams tracked).
    pub segments: usize,
    /// Segment size in blocks.
    pub segment_blocks: u64,
    /// Blocks of read-ahead fetched beyond each miss.
    pub read_ahead_blocks: u64,
    /// Bus transfer rate for cache hits, bytes/second.
    pub bus_rate: f64,
}

impl Default for DriveCacheConfig {
    fn default() -> Self {
        DriveCacheConfig {
            segments: 8,
            segment_blocks: 512,
            read_ahead_blocks: 256,
            bus_rate: 40e6,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Segment {
    start: u64,
    len: u64,
    last_used: u64,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriveCacheStats {
    /// Requests fully served from cache.
    pub hits: u64,
    /// Requests that touched the mechanism.
    pub misses: u64,
}

/// A disk behind a segment read cache.
#[derive(Clone, Debug)]
pub struct CachedDisk {
    disk: Disk,
    config: DriveCacheConfig,
    segments: Vec<Segment>,
    tick: u64,
    stats: DriveCacheStats,
}

impl CachedDisk {
    /// Wraps `disk` with a cache.
    pub fn new(disk: Disk, config: DriveCacheConfig) -> Self {
        assert!(config.segments > 0 && config.segment_blocks > 0, "degenerate cache");
        assert!(config.bus_rate > 0.0, "bus rate must be positive");
        CachedDisk {
            disk,
            config,
            segments: Vec::new(),
            tick: 0,
            stats: DriveCacheStats::default(),
        }
    }

    /// The wrapped disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Cache statistics.
    pub fn stats(&self) -> DriveCacheStats {
        self.stats
    }

    fn find_covering(&mut self, lba: u64, n: u64) -> Option<usize> {
        self.segments.iter().position(|s| lba >= s.start && lba + n <= s.start + s.len)
    }

    fn insert_segment(&mut self, start: u64, len: u64) {
        self.tick += 1;
        let seg = Segment { start, len, last_used: self.tick };
        if self.segments.len() < self.config.segments {
            self.segments.push(seg);
        } else {
            let victim = self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("segments non-empty");
            self.segments[victim] = seg;
        }
    }

    /// Reads `n` blocks at `lba`. Cache hits are served at bus speed;
    /// misses go to the mechanism and pull `read_ahead_blocks` extra.
    pub fn read(&mut self, now: SimTime, lba: u64, n: u64) -> Result<Grant, DiskError> {
        if n == 0 || lba + n > self.disk.geometry().blocks {
            return Err(DiskError::OutOfRange);
        }
        self.tick += 1;
        if let Some(i) = self.find_covering(lba, n) {
            self.segments[i].last_used = self.tick;
            self.stats.hits += 1;
            // Bus-speed transfer, no mechanism involvement; still subject
            // to the disk being alive (the firmware serving the cache dies
            // with the drive).
            if self.disk.failed_at(now) {
                return Err(DiskError::Failed);
            }
            let bytes = n * self.disk.geometry().block_bytes as u64;
            let dt = SimDuration::from_secs_f64(bytes as f64 / self.config.bus_rate);
            return Ok(Grant { start: now, finish: now + dt });
        }
        self.stats.misses += 1;
        // Miss: fetch the request plus read-ahead, capped at the device
        // end and the segment size.
        let fetch = (n + self.config.read_ahead_blocks)
            .min(self.config.segment_blocks)
            .min(self.disk.geometry().blocks - lba)
            .max(n);
        let grant = self.disk.read(now, lba, fetch)?;
        self.insert_segment(lba, fetch);
        Ok(grant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use simcore::rng::Stream;
    use stutter::injector::SlowdownProfile;

    fn cached() -> CachedDisk {
        let disk = Disk::new(Geometry::hawk_5400(), Stream::from_seed(1));
        CachedDisk::new(disk, DriveCacheConfig::default())
    }

    #[test]
    fn reread_hits_cache_and_is_faster() {
        let mut d = cached();
        let miss = d.read(SimTime::ZERO, 1_000, 64).expect("ok");
        let t1 = miss.finish;
        let hit = d.read(t1, 1_000, 64).expect("ok");
        assert_eq!(d.stats(), DriveCacheStats { hits: 1, misses: 1 });
        let miss_cost = miss.finish - miss.start;
        let hit_cost = hit.finish - hit.start;
        assert!(hit_cost < miss_cost / 2, "hit {hit_cost} vs miss {miss_cost}");
    }

    #[test]
    fn read_ahead_serves_the_next_request() {
        let mut d = cached();
        let g = d.read(SimTime::ZERO, 0, 64).expect("ok");
        // The next sequential request falls inside the read-ahead window.
        let g2 = d.read(g.finish, 64, 64).expect("ok");
        assert_eq!(d.stats().hits, 1);
        assert!(g2.finish - g2.start < SimDuration::from_millis(2));
    }

    #[test]
    fn random_reads_do_not_benefit() {
        let mut d = cached();
        let mut rng = Stream::from_seed(2);
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            let lba = rng.next_below(3_000_000);
            let g = d.read(t, lba, 16).expect("ok");
            t = g.finish;
        }
        assert!(d.stats().hits <= 2, "{:?}", d.stats());
    }

    #[test]
    fn cache_capacity_is_bounded() {
        let mut d = cached();
        let mut t = SimTime::ZERO;
        // Touch 20 distinct far-apart regions: only 8 segments retained.
        for i in 0..20u64 {
            let g = d.read(t, i * 100_000, 16).expect("ok");
            t = g.finish;
        }
        assert!(d.segments.len() <= 8);
        // The oldest region was evicted: re-reading it misses.
        let misses_before = d.stats().misses;
        d.read(t, 0, 16).expect("ok");
        assert_eq!(d.stats().misses, misses_before + 1);
    }

    #[test]
    fn dead_drive_fails_even_on_hits() {
        let profile = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(10));
        let disk = Disk::new(Geometry::hawk_5400(), Stream::from_seed(3)).with_profile(profile);
        let mut d = CachedDisk::new(disk, DriveCacheConfig::default());
        d.read(SimTime::ZERO, 0, 16).expect("alive");
        assert_eq!(d.read(SimTime::from_secs(11), 0, 16), Err(DiskError::Failed));
    }

    #[test]
    fn out_of_range_checked() {
        let mut d = cached();
        let blocks = d.disk().geometry().blocks;
        assert_eq!(d.read(SimTime::ZERO, blocks - 1, 2), Err(DiskError::OutOfRange));
    }
}
