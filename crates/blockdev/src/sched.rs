//! Disk request scheduling: throughput vs fairness.
//!
//! Schedulers are themselves a source of fail-stutter behaviour: a
//! seek-optimising policy (SSTF) improves mean latency but can starve
//! requests far from the head — from the starved client's point of view
//! the disk is performance-faulty, while global counters look great. This
//! is exactly the §3.1 point that "a performance failure from the
//! perspective of one component may not manifest itself to others".

use simcore::time::{SimDuration, SimTime};

use crate::disk::{Disk, DiskError};

/// Dispatch policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First come, first served.
    Fcfs,
    /// Shortest seek time first (greedy by cylinder distance).
    Sstf,
}

/// A request handed to the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Arrival time.
    pub at: SimTime,
    /// First block.
    pub lba: u64,
    /// Length in blocks.
    pub nblocks: u64,
}

/// A completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The request.
    pub request: Request,
    /// When it finished.
    pub finish: SimTime,
}

impl Completion {
    /// Queueing plus service latency.
    pub fn latency(&self) -> SimDuration {
        self.finish - self.request.at
    }
}

/// Runs a batch of requests through `disk` under `policy`, dispatching one
/// request at a time (the next is chosen when the previous completes).
///
/// Returns completions in dispatch order.
pub fn run_schedule(
    disk: &mut Disk,
    policy: SchedPolicy,
    requests: &[Request],
) -> Result<Vec<Completion>, DiskError> {
    // FCFS ties are broken by submission order on purpose: "first come"
    // among simultaneous arrivals *means* position in the caller's slice.
    let mut pending: Vec<(usize, Request)> = requests.iter().copied().enumerate().collect();
    pending.sort_by_key(|&(i, r)| (r.at, i));
    let mut done = Vec::with_capacity(pending.len());
    let mut now = SimTime::ZERO;
    let mut head_lba = 0u64;

    while !pending.is_empty() {
        // Requests that have arrived by `now`; if none, jump to the next
        // arrival.
        let arrived_end = pending.partition_point(|&(_, r)| r.at <= now);
        let pick = if arrived_end == 0 {
            now = pending[0].1.at;
            0
        } else {
            match policy {
                SchedPolicy::Fcfs => 0,
                SchedPolicy::Sstf => {
                    let geom = disk.geometry().clone();
                    let head_cyl = geom.cylinder_of(head_lba.min(geom.blocks - 1));
                    // Equal seek distance is a real tie (one request inward,
                    // one outward of the head): break it by arrival, then
                    // request content, so the pick is a function of the
                    // request set and never of queue order.
                    (0..arrived_end)
                        .min_by_key(|&i| {
                            let r = pending[i].1;
                            (geom.cylinder_of(r.lba).abs_diff(head_cyl), r.at, r.lba, r.nblocks)
                        })
                        .expect("non-empty arrived set")
                }
            }
        };
        let (_, r) = pending.remove(pick);
        let grant = disk.read(now, r.lba, r.nblocks)?;
        now = grant.finish;
        head_lba = r.lba + r.nblocks;
        done.push(Completion { request: r, finish: grant.finish });
    }
    Ok(done)
}

/// Summary statistics of a completed schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Mean latency in seconds.
    pub mean_latency: f64,
    /// Worst latency in seconds.
    pub max_latency: f64,
    /// Completion time of the whole batch.
    pub makespan: SimTime,
}

/// Computes summary statistics.
pub fn schedule_stats(completions: &[Completion]) -> ScheduleStats {
    assert!(!completions.is_empty(), "no completions");
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut makespan = SimTime::ZERO;
    for c in completions {
        let l = c.latency().as_secs_f64();
        sum += l;
        max = max.max(l);
        makespan = makespan.max(c.finish);
    }
    ScheduleStats { mean_latency: sum / completions.len() as f64, max_latency: max, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use simcore::rng::Stream;

    fn disk(seed: u64) -> Disk {
        Disk::new(Geometry::hawk_5400(), Stream::from_seed(seed))
    }

    /// A batch of random requests all arriving at t = 0.
    fn random_batch(n: usize, seed: u64) -> Vec<Request> {
        let mut rng = Stream::from_seed(seed);
        (0..n)
            .map(|_| Request { at: SimTime::ZERO, lba: rng.next_below(3_900_000), nblocks: 64 })
            .collect()
    }

    #[test]
    fn sstf_beats_fcfs_on_makespan() {
        let batch = random_batch(100, 5);
        let fcfs = run_schedule(&mut disk(1), SchedPolicy::Fcfs, &batch).expect("ok");
        let sstf = run_schedule(&mut disk(1), SchedPolicy::Sstf, &batch).expect("ok");
        let f = schedule_stats(&fcfs);
        let s = schedule_stats(&sstf);
        assert!(
            s.makespan.as_secs_f64() < 0.8 * f.makespan.as_secs_f64(),
            "sstf {} vs fcfs {}",
            s.makespan,
            f.makespan
        );
    }

    #[test]
    fn sstf_starves_the_far_request() {
        // A stream of requests near cylinder 0 plus one lone request at the
        // far edge: SSTF keeps choosing the near ones.
        const NEAR_STRIDE_BLOCKS: u64 = 1_000;
        let mut batch: Vec<Request> = (0..200)
            .map(|i| Request {
                at: SimTime::from_millis(i * 5),
                lba: (i % 50) * NEAR_STRIDE_BLOCKS,
                nblocks: 64,
            })
            .collect();
        let far = Request { at: SimTime::ZERO, lba: 3_900_000, nblocks: 64 };
        batch.push(far);

        let fcfs = run_schedule(&mut disk(2), SchedPolicy::Fcfs, &batch).expect("ok");
        let sstf = run_schedule(&mut disk(2), SchedPolicy::Sstf, &batch).expect("ok");
        let far_latency = |cs: &[Completion]| {
            cs.iter().find(|c| c.request == far).expect("present").latency().as_secs_f64()
        };
        let f = far_latency(&fcfs);
        let s = far_latency(&sstf);
        assert!(s > 3.0 * f, "sstf far-request latency {s} vs fcfs {f}");
    }

    #[test]
    fn fcfs_respects_arrival_order() {
        let batch = vec![
            Request { at: SimTime::from_millis(10), lba: 100, nblocks: 8 },
            Request { at: SimTime::ZERO, lba: 2_000_000, nblocks: 8 },
        ];
        let done = run_schedule(&mut disk(3), SchedPolicy::Fcfs, &batch).expect("ok");
        assert_eq!(done[0].request.lba, 2_000_000);
        assert_eq!(done[1].request.lba, 100);
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let batch = vec![Request { at: SimTime::from_secs(10), lba: 0, nblocks: 8 }];
        let done = run_schedule(&mut disk(4), SchedPolicy::Fcfs, &batch).expect("ok");
        assert!(done[0].finish > SimTime::from_secs(10));
        assert!(done[0].latency() < SimDuration::from_millis(50));
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let batch = random_batch(64, 9);
        for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf] {
            let done = run_schedule(&mut disk(5), policy, &batch).expect("ok");
            assert_eq!(done.len(), batch.len(), "{policy:?}");
            let mut seen: Vec<u64> = done.iter().map(|c| c.request.lba).collect();
            let mut expect: Vec<u64> = batch.iter().map(|r| r.lba).collect();
            seen.sort_unstable();
            expect.sort_unstable();
            assert_eq!(seen, expect, "{policy:?}");
        }
    }
}
