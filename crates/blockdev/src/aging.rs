//! File-system layout and aging.
//!
//! Paper §2.2.1 (File Layout): "Sequential file read performance across
//! aged file systems varies by up to a factor of two, even when the file
//! systems are otherwise empty. However, when the file systems are
//! recreated afresh, sequential file read performance is identical across
//! all drives."
//!
//! [`FileSystem`] allocates files as extent lists over a disk. A fresh file
//! system allocates contiguously; *aging* fragments the free space so that
//! later allocations scatter, and sequential reads pay inter-extent seeks.

use simcore::rng::Stream;
use simcore::time::SimTime;

use crate::disk::{Disk, DiskError};

/// A contiguous run of blocks belonging to a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// First block.
    pub start: u64,
    /// Number of blocks.
    pub len: u64,
}

/// A file: an ordered list of extents.
#[derive(Clone, Debug, Default)]
pub struct File {
    extents: Vec<Extent>,
}

impl File {
    /// Total length in blocks.
    pub fn len_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Number of extents (1 = perfectly contiguous).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// The extents.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }
}

/// A simple extent-allocating file system with an aging model.
#[derive(Clone, Debug)]
pub struct FileSystem {
    total_blocks: u64,
    // Sorted, non-overlapping free runs.
    free: Vec<Extent>,
    files: Vec<File>,
    rng: Stream,
}

impl FileSystem {
    /// Creates a fresh file system over `total_blocks` blocks.
    pub fn new(total_blocks: u64, rng: Stream) -> Self {
        assert!(total_blocks > 0, "empty device");
        FileSystem {
            total_blocks,
            free: vec![Extent { start: 0, len: total_blocks }],
            files: Vec::new(),
            rng,
        }
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free.iter().map(|e| e.len).sum()
    }

    /// Number of free-space fragments (1 = unfragmented).
    pub fn free_fragments(&self) -> usize {
        self.free.len()
    }

    /// Ages the file system: performs `churn` rounds in which a burst of
    /// small files is created and, at the end of the round, the
    /// short-lived half is deleted again. The surviving (long-lived) files
    /// pin space between the holes, fragmenting free space the way years
    /// of use do (cf. Smith & Seltzer's aging methodology). Returns the
    /// number of free fragments afterwards.
    pub fn age(&mut self, churn: u32) -> usize {
        let mut rng = self.rng.derive("aging");
        // Fill to ~80% utilisation with scattered small files — aged file
        // systems are full file systems.
        let target_free = self.total_blocks / 10;
        while self.free_blocks() > target_free {
            let blocks = rng.next_range(8, 256).min(self.free_blocks());
            if self.create_file_random_fit(blocks, &mut rng).is_err() {
                break;
            }
        }
        // Steady-state churn: delete a few files, create a few files.
        for _ in 0..churn {
            for _ in 0..4 {
                if !self.files.is_empty() {
                    let i = rng.next_below(self.files.len() as u64) as usize;
                    let f = self.files.swap_remove(i);
                    self.release(&f);
                }
            }
            for _ in 0..4 {
                let blocks = rng.next_range(8, 128);
                let _ = self.create_file_random_fit(blocks, &mut rng);
            }
        }
        self.free_fragments()
    }

    /// Deletes the file at `index` (the last file takes its index), and
    /// returns its former extents to the free list.
    pub fn delete_file(&mut self, index: usize) {
        let f = self.files.swap_remove(index);
        self.release(&f);
    }

    fn release(&mut self, file: &File) {
        for &e in file.extents() {
            self.free.push(e);
        }
        self.normalise_free();
    }

    fn normalise_free(&mut self) {
        self.free.sort_by_key(|e| e.start);
        let mut merged: Vec<Extent> = Vec::with_capacity(self.free.len());
        for e in self.free.drain(..) {
            match merged.last_mut() {
                Some(last) if last.start + last.len == e.start => last.len += e.len,
                _ => merged.push(e),
            }
        }
        self.free = merged;
    }

    /// Creates a file of `blocks` blocks, first-fit over the free list.
    ///
    /// Returns the file's index, or an error if space is exhausted.
    pub fn create_file(&mut self, blocks: u64) -> Result<usize, DiskError> {
        assert!(blocks > 0, "empty file");
        let mut needed = blocks;
        let mut extents = Vec::new();
        let mut i = 0;
        while needed > 0 && i < self.free.len() {
            let run = &mut self.free[i];
            let take = run.len.min(needed);
            extents.push(Extent { start: run.start, len: take });
            run.start += take;
            run.len -= take;
            needed -= take;
            if run.len == 0 {
                self.free.remove(i);
            } else {
                i += 1;
            }
        }
        if needed > 0 {
            // Roll back.
            for e in extents {
                self.free.push(e);
            }
            self.normalise_free();
            return Err(DiskError::OutOfRange);
        }
        self.files.push(File { extents });
        Ok(self.files.len() - 1)
    }

    /// Creates a file by drawing from randomly chosen free runs — the
    /// placement behaviour of a real allocator spreading files across
    /// cylinder groups. Used by [`age`](Self::age).
    pub fn create_file_random_fit(
        &mut self,
        blocks: u64,
        rng: &mut Stream,
    ) -> Result<usize, DiskError> {
        assert!(blocks > 0, "empty file");
        if self.free_blocks() < blocks {
            return Err(DiskError::OutOfRange);
        }
        // Prefer one contiguous placement at a random offset inside a
        // random sufficiently large run: deleting such a file later leaves
        // a hole in the middle of the run, which is what fragments free
        // space over time.
        let candidates: Vec<usize> =
            (0..self.free.len()).filter(|&i| self.free[i].len >= blocks).collect();
        if candidates.is_empty() {
            return self.create_file(blocks);
        }
        let i = *rng.choose(&candidates);
        let run = self.free[i];
        let slack = run.len - blocks;
        let offset = if slack == 0 { 0 } else { rng.next_below(slack + 1) };
        let start = run.start + offset;
        self.free.remove(i);
        if offset > 0 {
            self.free.push(Extent { start: run.start, len: offset });
        }
        if slack > offset {
            self.free.push(Extent { start: start + blocks, len: slack - offset });
        }
        self.normalise_free();
        self.files.push(File { extents: vec![Extent { start, len: blocks }] });
        Ok(self.files.len() - 1)
    }

    /// The file at `index`.
    pub fn file(&self, index: usize) -> &File {
        &self.files[index]
    }

    /// Reads a whole file sequentially through `disk`, extent by extent.
    ///
    /// Returns `(bandwidth bytes/s, finish time)`.
    pub fn read_file(
        &self,
        disk: &mut Disk,
        index: usize,
        now: SimTime,
    ) -> Result<(f64, SimTime), DiskError> {
        let file = &self.files[index];
        let bs = disk.geometry().block_bytes as u64;
        let mut t = now;
        for &e in file.extents() {
            // Stream each extent in 256-block requests.
            let mut off = 0;
            while off < e.len {
                let n = 256.min(e.len - off);
                let g = disk.read(t, e.start + off, n)?;
                t = g.finish;
                off += n;
            }
        }
        let elapsed = (t - now).as_secs_f64();
        let bytes = (file.len_blocks() * bs) as f64;
        let bw = if elapsed > 0.0 { bytes / elapsed } else { 0.0 };
        Ok((bw, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use simcore::time::SimDuration;

    fn fs_and_disk(seed: u64) -> (FileSystem, Disk) {
        let g = Geometry::hawk_5400();
        // A 200 MB partition keeps aging fast while leaving the disk's
        // full seek range in play.
        let fs = FileSystem::new(400_000, Stream::from_seed(seed).derive("aging.fs"));
        let disk = Disk::new(g, Stream::from_seed(seed).derive("aging.disk"));
        (fs, disk)
    }

    #[test]
    fn fresh_allocation_is_contiguous() {
        let (mut fs, _) = fs_and_disk(1);
        let f = fs.create_file(10_000).expect("space");
        assert_eq!(fs.file(f).extent_count(), 1);
        assert_eq!(fs.file(f).len_blocks(), 10_000);
    }

    #[test]
    fn aging_fragments_free_space() {
        let (mut fs, _) = fs_and_disk(2);
        let before = fs.free_fragments();
        let after = fs.age(200);
        assert!(after > before * 10, "aging should fragment: {before} -> {after}");
    }

    #[test]
    fn aged_allocation_is_fragmented() {
        let (mut fs, _) = fs_and_disk(3);
        fs.age(200);
        let f = fs.create_file(20_000).expect("space");
        assert!(fs.file(f).extent_count() > 20, "extents: {}", fs.file(f).extent_count());
    }

    #[test]
    fn aged_read_loses_bandwidth() {
        // The paper's factor-of-two spread between fresh and aged systems.
        let (mut fresh_fs, mut fresh_disk) = fs_and_disk(4);
        let ff = fresh_fs.create_file(30_000).expect("space");
        let (bw_fresh, _) = fresh_fs.read_file(&mut fresh_disk, ff, SimTime::ZERO).expect("ok");

        let (mut aged_fs, mut aged_disk) = fs_and_disk(4);
        aged_fs.age(300);
        let af = aged_fs.create_file(30_000).expect("space");
        let (bw_aged, _) = aged_fs.read_file(&mut aged_disk, af, SimTime::ZERO).expect("ok");

        let ratio = bw_fresh / bw_aged;
        assert!((1.5..4.0).contains(&ratio), "fresh {bw_fresh} vs aged {bw_aged} (ratio {ratio})");
    }

    #[test]
    fn free_space_is_conserved() {
        let (mut fs, _) = fs_and_disk(5);
        let total = fs.free_blocks();
        let f1 = fs.create_file(1_000).expect("space");
        let f2 = fs.create_file(2_000).expect("space");
        assert_eq!(fs.free_blocks(), total - 3_000);
        let file1 = fs.file(f1).clone();
        fs.release(&file1);
        assert_eq!(fs.free_blocks(), total - 2_000);
        let _ = f2;
    }

    #[test]
    fn allocation_failure_rolls_back() {
        let mut fs = FileSystem::new(100, Stream::from_seed(6));
        assert!(fs.create_file(101).is_err());
        assert_eq!(fs.free_blocks(), 100);
        assert_eq!(fs.free_fragments(), 1);
    }

    #[test]
    fn read_file_duration_positive() {
        let (mut fs, mut disk) = fs_and_disk(7);
        let f = fs.create_file(1_000).expect("space");
        let (bw, finish) = fs.read_file(&mut disk, f, SimTime::ZERO).expect("ok");
        assert!(bw > 0.0);
        assert!(finish > SimTime::ZERO + SimDuration::from_micros(1));
    }
}
