//! Bad-block remapping, transparent to upper layers.
//!
//! Paper §2.1.2 (Fault Masking): identical Seagate Hawk drives delivered
//! 5.5 MB/s — except one, which delivered 5.0 MB/s and turned out to have
//! three times the block faults of its peers; "SCSI bad-block remappings,
//! transparent to both users and file systems, were the culprit."
//!
//! [`RemapTable`] records grown defects and maps them to spare blocks at
//! the end of the disk. Reading a remapped block costs an extra round-trip
//! seek to the spare area, which is exactly the mechanism that silently
//! taxes sequential bandwidth.

use std::collections::BTreeMap;

use simcore::rng::Stream;

/// A grown-defect remapping table.
///
/// Defective LBAs are mapped to spare blocks allocated downward from the
/// end of the device.
#[derive(Clone, Debug)]
pub struct RemapTable {
    blocks: u64,
    spare_area: u64,
    map: BTreeMap<u64, u64>,
    next_spare: u64,
}

impl RemapTable {
    /// Creates a table for a device with `blocks` blocks and `spare_area`
    /// spare blocks reserved at the top of the LBA space.
    ///
    /// # Panics
    ///
    /// Panics if `spare_area >= blocks`.
    pub fn new(blocks: u64, spare_area: u64) -> Self {
        assert!(spare_area < blocks, "spare area swallows the whole device");
        RemapTable { blocks, spare_area, map: BTreeMap::new(), next_spare: blocks - 1 }
    }

    /// Marks `lba` defective, mapping it to the next free spare block.
    ///
    /// Returns the spare chosen, or `None` if the spare area is exhausted
    /// or the block is already remapped.
    pub fn grow_defect(&mut self, lba: u64) -> Option<u64> {
        assert!(lba < self.blocks, "lba {lba} out of range");
        if self.map.contains_key(&lba) {
            return None;
        }
        let used = self.map.len() as u64;
        if used >= self.spare_area {
            return None;
        }
        let spare = self.next_spare;
        self.next_spare -= 1;
        self.map.insert(lba, spare);
        Some(spare)
    }

    /// Scatters `count` defects uniformly over the user-visible LBA range.
    ///
    /// Returns how many were actually added (duplicates are retried a
    /// bounded number of times, so the result can fall short only when the
    /// device is nearly full of defects).
    pub fn grow_random_defects(&mut self, count: u64, rng: &mut Stream) -> u64 {
        let user_blocks = self.blocks - self.spare_area;
        let mut added = 0;
        let mut attempts = 0;
        while added < count && attempts < count * 16 {
            attempts += 1;
            let lba = rng.next_below(user_blocks);
            if self.grow_defect(lba).is_some() {
                added += 1;
            }
        }
        added
    }

    /// Resolves an LBA: `Ok(lba)` if direct, `Err(spare)` if remapped.
    pub fn resolve(&self, lba: u64) -> Result<u64, u64> {
        match self.map.get(&lba) {
            Some(&spare) => Err(spare),
            None => Ok(lba),
        }
    }

    /// True if `lba` has been remapped.
    pub fn is_remapped(&self, lba: u64) -> bool {
        self.map.contains_key(&lba)
    }

    /// Number of remapped blocks in `[lba, lba + n)`.
    pub fn remapped_in_range(&self, lba: u64, n: u64) -> u64 {
        self.map.range(lba..lba + n).count() as u64
    }

    /// Total grown defects.
    pub fn defect_count(&self) -> u64 {
        self.map.len() as u64
    }

    /// Remaining spare capacity.
    pub fn spares_left(&self) -> u64 {
        self.spare_area - self.map.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defects_map_to_distinct_spares() {
        let mut t = RemapTable::new(1000, 10);
        let s1 = t.grow_defect(5).expect("spare available");
        let s2 = t.grow_defect(7).expect("spare available");
        assert_ne!(s1, s2);
        assert!(s1 >= 990 && s2 >= 990, "spares live at the top");
        assert_eq!(t.defect_count(), 2);
        assert_eq!(t.spares_left(), 8);
    }

    #[test]
    fn resolve_distinguishes_remapped() {
        let mut t = RemapTable::new(1000, 10);
        let spare = t.grow_defect(42).expect("spare available");
        assert_eq!(t.resolve(41), Ok(41));
        assert_eq!(t.resolve(42), Err(spare));
        assert!(t.is_remapped(42));
        assert!(!t.is_remapped(41));
    }

    #[test]
    fn double_defect_is_rejected() {
        let mut t = RemapTable::new(1000, 10);
        assert!(t.grow_defect(1).is_some());
        assert!(t.grow_defect(1).is_none());
        assert_eq!(t.defect_count(), 1);
    }

    #[test]
    fn spare_exhaustion() {
        let mut t = RemapTable::new(100, 2);
        assert!(t.grow_defect(0).is_some());
        assert!(t.grow_defect(1).is_some());
        assert!(t.grow_defect(2).is_none());
        assert_eq!(t.spares_left(), 0);
    }

    #[test]
    fn random_defects_land_in_user_area() {
        let mut t = RemapTable::new(10_000, 500);
        let mut rng = Stream::from_seed(1);
        let added = t.grow_random_defects(300, &mut rng);
        assert_eq!(added, 300);
        // All defects are in the user-visible range.
        for (&lba, _) in t.map.iter() {
            assert!(lba < 9_500);
        }
    }

    #[test]
    fn remapped_in_range_counts() {
        let mut t = RemapTable::new(1000, 10);
        t.grow_defect(10);
        t.grow_defect(15);
        t.grow_defect(25);
        assert_eq!(t.remapped_in_range(10, 10), 2);
        assert_eq!(t.remapped_in_range(0, 1000 - 10), 3);
        assert_eq!(t.remapped_in_range(11, 4), 0);
    }
}
