//! # blockdev — the storage substrate
//!
//! Disk, SCSI-chain and file-system models reproducing the storage
//! phenomena surveyed in §2.1.2 and §2.2.1 of *"Fail-Stutter Fault
//! Tolerance"*:
//!
//! * [`geometry`] — zoned geometry (outer/inner bandwidth ≈ 2×) and the
//!   mechanical seek/rotate/transfer model.
//! * [`remap`] — transparent bad-block remapping, the silent tax behind the
//!   5.0-vs-5.5 MB/s Hawk observation.
//! * [`disk`] — the disk itself, carrying a fail-stutter
//!   [`stutter::injector::SlowdownProfile`] (thermal recalibration,
//!   wear-out, fail-stop).
//! * [`scsi`] — a shared bus whose timeouts and parity errors reset every
//!   disk on the chain, calibrated to the Talagala–Patterson error census.
//! * [`aging`] — extent allocation and file-system aging (fresh vs aged
//!   sequential-read spread of ~2×).
//!
//! # Examples
//!
//! ```
//! use blockdev::prelude::*;
//! use simcore::prelude::*;
//!
//! let mut disk = Disk::new(Geometry::hawk_5400(), Stream::from_seed(1));
//! let (bw, _) = measure_sequential_read(&mut disk, SimTime::ZERO, 8 << 20, 1 << 20)
//!     .expect("healthy disk");
//! assert!(bw > 5.0e6, "a healthy Hawk streams >5 MB/s, got {bw}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod cache;
pub mod disk;
pub mod geometry;
pub mod remap;
pub mod sched;
pub mod scsi;
pub mod smart;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aging::{Extent, File, FileSystem};
    pub use crate::cache::{CachedDisk, DriveCacheConfig, DriveCacheStats};
    pub use crate::disk::{measure_sequential_read, Disk, DiskError};
    pub use crate::geometry::Geometry;
    pub use crate::remap::RemapTable;
    pub use crate::sched::{
        run_schedule, schedule_stats, Completion, Request, SchedPolicy, ScheduleStats,
    };
    pub use crate::scsi::{ErrorCensus, ErrorEvent, ErrorKind, ErrorProcess, ScsiChain};
    pub use crate::smart::{Advisory, SmartConfig, SmartEvent, SmartLog};
}
