//! A SCSI chain: shared bus, timeouts, parity errors, and bus resets.
//!
//! Paper §2.1.2 (Timeouts), citing Talagala and Patterson's 400-disk farm:
//! "SCSI timeouts and parity errors make up 49% of all errors; when network
//! errors are removed, this figure rises to 87% of all error instances ...
//! a timeout or parity error occurs roughly two times per day on average.
//! These errors often lead to SCSI bus resets, affecting the performance of
//! all disks on the degraded SCSI chain."
//!
//! [`ScsiChain`] owns a set of disks, generates an error process calibrated
//! to those ratios, and applies bus resets to *every* disk on the chain —
//! the signature fail-stutter behaviour where one component's fault
//! degrades its healthy neighbours.

use simcore::dist::{Distribution, Exponential, WeightedIndex};
use simcore::resource::Grant;
use simcore::rng::Stream;
use simcore::time::{SimDuration, SimTime};

use crate::disk::{Disk, DiskError};

/// Error categories observed in a storage farm, per Talagala & Patterson.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// SCSI command timeout (leads to a bus reset).
    ScsiTimeout,
    /// SCSI parity error (leads to a bus reset).
    ScsiParity,
    /// Network error (no effect on the chain; kept for census fidelity).
    Network,
    /// Other disk error (no bus reset).
    Other,
}

/// One error instance on the chain's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorEvent {
    /// When it occurred.
    pub at: SimTime,
    /// What it was.
    pub kind: ErrorKind,
}

/// A census of errors by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorCensus {
    /// SCSI timeouts.
    pub scsi_timeout: u64,
    /// SCSI parity errors.
    pub scsi_parity: u64,
    /// Network errors.
    pub network: u64,
    /// Everything else.
    pub other: u64,
}

impl ErrorCensus {
    /// Total errors.
    pub fn total(&self) -> u64 {
        self.scsi_timeout + self.scsi_parity + self.network + self.other
    }

    /// Fraction of all errors that are SCSI timeouts or parity errors
    /// (the paper reports 49%).
    pub fn scsi_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.scsi_timeout + self.scsi_parity) as f64 / self.total() as f64
    }

    /// The same fraction with network errors removed (the paper reports
    /// 87%).
    pub fn scsi_fraction_excluding_network(&self) -> f64 {
        let non_net = self.total() - self.network;
        if non_net == 0 {
            return 0.0;
        }
        (self.scsi_timeout + self.scsi_parity) as f64 / non_net as f64
    }
}

/// Configuration of the chain's error process.
#[derive(Clone, Copy, Debug)]
pub struct ErrorProcess {
    /// Mean time between SCSI timeout-or-parity events (the paper's farm:
    /// roughly two per day).
    pub scsi_mtbe: SimDuration,
    /// Duration of a bus reset (all disks stall).
    pub reset_duration: SimDuration,
}

impl Default for ErrorProcess {
    fn default() -> Self {
        ErrorProcess {
            scsi_mtbe: SimDuration::from_secs(43_200), // two per day
            reset_duration: SimDuration::from_secs(2),
        }
    }
}

/// A SCSI chain: disks sharing a bus, plus an error process.
#[derive(Clone, Debug)]
pub struct ScsiChain {
    disks: Vec<Disk>,
    errors: Vec<ErrorEvent>,
    applied: usize,
    census: ErrorCensus,
    reset_duration: SimDuration,
    resets_applied: u64,
}

impl ScsiChain {
    /// Builds a chain over `disks`, pre-generating its error timeline for
    /// `horizon`. The category mix is calibrated to the paper's 49% / 87%
    /// figures: timeouts+parity 49%, network 43.7%, other 7.3%.
    pub fn new(
        disks: Vec<Disk>,
        process: ErrorProcess,
        horizon: SimDuration,
        rng: &mut Stream,
    ) -> Self {
        assert!(!disks.is_empty(), "a chain needs at least one disk");
        // Weights chosen so scsi/(all) = 0.49 and scsi/(all - network) = 0.87.
        const W_SCSI: f64 = 0.49;
        const W_NETWORK: f64 = 1.0 - W_SCSI / 0.87;
        const W_OTHER: f64 = 1.0 - W_SCSI - W_NETWORK;
        // Split timeouts-vs-parity 60/40 (the paper does not separate them).
        let weights = WeightedIndex::new(&[W_SCSI * 0.6, W_SCSI * 0.4, W_NETWORK, W_OTHER]);
        // The SCSI MTBE covers only the timeout+parity share, so the
        // all-category arrival rate is scaled up accordingly.
        let mean_any = process.scsi_mtbe.as_secs_f64() * W_SCSI;
        let inter = Exponential::with_mean(mean_any);

        let mut errors = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        loop {
            t += SimDuration::from_secs_f64(inter.sample(rng));
            if t >= end {
                break;
            }
            let kind = match weights.sample(rng) {
                0 => ErrorKind::ScsiTimeout,
                1 => ErrorKind::ScsiParity,
                2 => ErrorKind::Network,
                _ => ErrorKind::Other,
            };
            errors.push(ErrorEvent { at: t, kind });
        }

        ScsiChain {
            disks,
            errors,
            applied: 0,
            census: ErrorCensus::default(),
            reset_duration: process.reset_duration,
            resets_applied: 0,
        }
    }

    /// Applies every error at or before `now`: SCSI timeouts and parity
    /// errors reset the bus, stalling all disks.
    fn advance(&mut self, now: SimTime) {
        while let Some(&e) = self.errors.get(self.applied) {
            if e.at > now {
                break;
            }
            self.applied += 1;
            match e.kind {
                ErrorKind::ScsiTimeout => self.census.scsi_timeout += 1,
                ErrorKind::ScsiParity => self.census.scsi_parity += 1,
                ErrorKind::Network => self.census.network += 1,
                ErrorKind::Other => self.census.other += 1,
            }
            if matches!(e.kind, ErrorKind::ScsiTimeout | ErrorKind::ScsiParity) {
                let until = e.at + self.reset_duration;
                for d in &mut self.disks {
                    d.block_until(until);
                }
                self.resets_applied += 1;
            }
        }
    }

    /// Reads from disk `idx` through the chain.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read(
        &mut self,
        now: SimTime,
        idx: usize,
        lba: u64,
        nblocks: u64,
    ) -> Result<Grant, DiskError> {
        self.advance(now);
        self.disks[idx].read(now, lba, nblocks)
    }

    /// Writes to disk `idx` through the chain.
    pub fn write(
        &mut self,
        now: SimTime,
        idx: usize,
        lba: u64,
        nblocks: u64,
    ) -> Result<Grant, DiskError> {
        self.advance(now);
        self.disks[idx].write(now, lba, nblocks)
    }

    /// Number of disks on the chain.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True if the chain has no disks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// The error census for all errors whose time has been reached.
    pub fn census(&self) -> ErrorCensus {
        self.census
    }

    /// The full pre-generated error timeline (for experiment reporting).
    pub fn error_timeline(&self) -> &[ErrorEvent] {
        &self.errors
    }

    /// How many bus resets have been applied.
    pub fn resets_applied(&self) -> u64 {
        self.resets_applied
    }

    /// Census over the entire pre-generated horizon, regardless of how far
    /// the chain has been driven.
    pub fn full_horizon_census(&self) -> ErrorCensus {
        let mut c = ErrorCensus::default();
        for e in &self.errors {
            match e.kind {
                ErrorKind::ScsiTimeout => c.scsi_timeout += 1,
                ErrorKind::ScsiParity => c.scsi_parity += 1,
                ErrorKind::Network => c.network += 1,
                ErrorKind::Other => c.other += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn chain(n_disks: usize, horizon_days: u64, seed: u64) -> ScsiChain {
        let rng = Stream::from_seed(seed);
        let disks = (0..n_disks)
            .map(|i| Disk::new(Geometry::hawk_5400(), rng.derive(&format!("disk-{i}"))))
            .collect();
        ScsiChain::new(
            disks,
            ErrorProcess::default(),
            SimDuration::from_secs(horizon_days * 86_400),
            &mut rng.derive("scsi-unit.errors"),
        )
    }

    #[test]
    fn error_mix_matches_paper_ratios() {
        // Six months, as in the study.
        let c = chain(8, 180, 1).full_horizon_census();
        assert!(c.total() > 400, "six months should produce hundreds of errors");
        let f = c.scsi_fraction();
        assert!((f - 0.49).abs() < 0.06, "scsi fraction {f}");
        let f_ex = c.scsi_fraction_excluding_network();
        assert!((f_ex - 0.87).abs() < 0.06, "non-network scsi fraction {f_ex}");
    }

    #[test]
    fn scsi_rate_is_about_two_per_day() {
        let c = chain(8, 180, 2).full_horizon_census();
        let per_day = (c.scsi_timeout + c.scsi_parity) as f64 / 180.0;
        assert!((per_day - 2.0).abs() < 0.5, "per-day {per_day}");
    }

    #[test]
    fn bus_reset_stalls_every_disk() {
        let mut ch = chain(4, 180, 3);
        // Find the first reset-causing error and issue IO just after it on
        // a *different* disk than any IO so far.
        let first_reset = ch
            .error_timeline()
            .iter()
            .find(|e| matches!(e.kind, ErrorKind::ScsiTimeout | ErrorKind::ScsiParity))
            .copied()
            .expect("180 days must contain a reset");
        let t = first_reset.at + SimDuration::from_millis(1);
        for idx in 0..4 {
            let g = ch.read(t, idx, 0, 64).expect("ok");
            assert!(
                g.start >= first_reset.at + SimDuration::from_secs(2),
                "disk {idx} should stall through the reset: {g:?}"
            );
        }
        assert!(ch.resets_applied() >= 1);
    }

    #[test]
    fn census_advances_with_time() {
        let mut ch = chain(2, 180, 4);
        assert_eq!(ch.census().total(), 0);
        let _ = ch.read(SimTime::from_secs(30 * 86_400), 0, 0, 8);
        let after_month = ch.census().total();
        assert!(after_month > 0, "a month of errors should have been applied");
        assert!(after_month < ch.full_horizon_census().total());
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let a = chain(4, 30, 9).full_horizon_census();
        let b = chain(4, 30, 9).full_horizon_census();
        assert_eq!(a, b);
    }
}
