//! SMART-style self-monitoring: error counters as failure predictors.
//!
//! §3.3's reliability claim — "erratic performance may be an early
//! indicator of impending failure" — has a discrete sibling: *error
//! events* (grown defects, timeouts, recoveries) accelerate before a drive
//! dies. [`SmartLog`] tracks per-category event counters over time and
//! raises a replacement advisory when a counter's recent rate exceeds its
//! long-term baseline by a configurable factor — the logic real SMART
//! implementations apply to reallocated-sector counts.

use std::collections::VecDeque;

use simcore::time::{SimDuration, SimTime};

/// Categories of logged drive events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SmartEvent {
    /// A block was remapped (grown defect).
    Reallocated,
    /// A command timed out and was retried.
    Timeout,
    /// A read needed ECC recovery.
    Recovered,
    /// The drive went off-line briefly (e.g. thermal recalibration).
    Offline,
}

/// Advisory raised by the monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Advisory {
    /// When it fired.
    pub at: SimTime,
    /// The category that tripped it.
    pub event: SmartEvent,
    /// Events in the recent window.
    pub recent_count: u64,
    /// Long-term events per window for comparison.
    pub baseline_per_window: f64,
}

/// Configuration of the advisory rule.
#[derive(Clone, Copy, Debug)]
pub struct SmartConfig {
    /// Length of the "recent" window.
    pub window: SimDuration,
    /// Advisory when recent count exceeds `factor × baseline` per window.
    pub factor: f64,
    /// Minimum recent events before an advisory can fire (noise floor).
    pub min_events: u64,
}

impl Default for SmartConfig {
    fn default() -> Self {
        SmartConfig { window: SimDuration::from_secs(86_400), factor: 4.0, min_events: 8 }
    }
}

/// A per-drive SMART log.
#[derive(Clone, Debug)]
pub struct SmartLog {
    config: SmartConfig,
    // (time, event), ordered by time.
    recent: VecDeque<(SimTime, SmartEvent)>,
    totals: [(SmartEvent, u64); 4],
    first_event: Option<SimTime>,
    advisory: Option<Advisory>,
}

impl SmartLog {
    /// Creates an empty log.
    pub fn new(config: SmartConfig) -> Self {
        SmartLog {
            config,
            recent: VecDeque::new(),
            totals: [
                (SmartEvent::Reallocated, 0),
                (SmartEvent::Timeout, 0),
                (SmartEvent::Recovered, 0),
                (SmartEvent::Offline, 0),
            ],
            first_event: None,
            advisory: None,
        }
    }

    fn total_mut(&mut self, e: SmartEvent) -> &mut u64 {
        &mut self.totals.iter_mut().find(|(k, _)| *k == e).expect("all categories present").1
    }

    /// Total events of a category.
    pub fn total(&self, e: SmartEvent) -> u64 {
        self.totals.iter().find(|(k, _)| *k == e).expect("all categories present").1
    }

    /// Records an event at `now`; returns an advisory if this event trips
    /// the rule (at most one advisory per log).
    pub fn record(&mut self, now: SimTime, event: SmartEvent) -> Option<Advisory> {
        self.first_event.get_or_insert(now);
        *self.total_mut(event) += 1;
        self.recent.push_back((now, event));
        let cutoff =
            SimTime::from_nanos(now.as_nanos().saturating_sub(self.config.window.as_nanos()));
        while let Some(&(t, _)) = self.recent.front() {
            if t < cutoff {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if self.advisory.is_some() {
            return None;
        }

        let recent_count = self.recent.iter().filter(|&&(_, e)| e == event).count() as u64;
        if recent_count < self.config.min_events {
            return None;
        }
        // Long-term rate: everything before the window, averaged.
        let first = self.first_event.expect("set above");
        let history = now.saturating_since(first);
        if history <= self.config.window {
            return None; // not enough history to call anything a spike
        }
        let older = self.total(event) - recent_count;
        let windows_of_history =
            (history - self.config.window).as_secs_f64() / self.config.window.as_secs_f64();
        let baseline = older as f64 / windows_of_history.max(1e-9);
        if recent_count as f64 > self.config.factor * baseline.max(0.5) {
            let a = Advisory { at: now, event, recent_count, baseline_per_window: baseline };
            self.advisory = Some(a);
            return Some(a);
        }
        None
    }

    /// The advisory, if one has fired.
    pub fn advisory(&self) -> Option<Advisory> {
        self.advisory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    fn log() -> SmartLog {
        SmartLog::new(SmartConfig::default())
    }

    #[test]
    fn steady_background_rate_never_advises() {
        // One reallocation a day for 90 days: normal aging.
        let mut l = log();
        for d in 0..90 {
            assert_eq!(
                l.record(SimTime::from_secs(d * DAY + 3_600), SmartEvent::Reallocated),
                None,
                "day {d}"
            );
        }
        assert_eq!(l.advisory(), None);
        assert_eq!(l.total(SmartEvent::Reallocated), 90);
    }

    #[test]
    fn acceleration_trips_the_advisory() {
        // A year of one-a-week reallocations, then a burst of a dozen in
        // one day: the drive is dying.
        let mut l = log();
        for w in 0..52u64 {
            l.record(SimTime::from_secs(w * 7 * DAY), SmartEvent::Reallocated);
        }
        let burst_start = 53 * 7 * DAY;
        let mut fired = None;
        for i in 0..12u64 {
            if let Some(a) =
                l.record(SimTime::from_secs(burst_start + i * 3_600), SmartEvent::Reallocated)
            {
                fired = Some(a);
            }
        }
        let a = fired.expect("burst must trip the advisory");
        assert_eq!(a.event, SmartEvent::Reallocated);
        assert!(a.recent_count >= 8);
        assert!(a.baseline_per_window < 1.0, "baseline {}", a.baseline_per_window);
    }

    #[test]
    fn advisory_fires_at_most_once() {
        let mut l = log();
        for w in 0..52u64 {
            l.record(SimTime::from_secs(w * 7 * DAY), SmartEvent::Timeout);
        }
        let mut count = 0;
        for i in 0..100u64 {
            if l.record(SimTime::from_secs(53 * 7 * DAY + i * 600), SmartEvent::Timeout).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn categories_tracked_independently() {
        let mut l = log();
        for w in 0..52u64 {
            l.record(SimTime::from_secs(w * 7 * DAY), SmartEvent::Recovered);
        }
        // A burst of *offline* events must not count against Recovered's
        // baseline check (and has no history of its own → min_events+history
        // gates still apply).
        for i in 0..12u64 {
            l.record(SimTime::from_secs(53 * 7 * DAY + i * 3_600), SmartEvent::Offline);
        }
        // Offline advisory is allowed (zero baseline, enough events, long
        // history since the first Recovered event).
        let adv = l.advisory();
        assert!(adv.is_none_or(|a| a.event == SmartEvent::Offline), "{adv:?}");
        assert_eq!(l.total(SmartEvent::Recovered), 52);
        assert_eq!(l.total(SmartEvent::Offline), 12);
    }

    #[test]
    fn early_burst_without_history_is_ignored() {
        // A brand-new drive throwing events on day one has no baseline to
        // compare against — the rule stays quiet rather than guessing.
        let mut l = log();
        for i in 0..20u64 {
            assert_eq!(l.record(SimTime::from_secs(i * 600), SmartEvent::Timeout), None);
        }
    }
}
