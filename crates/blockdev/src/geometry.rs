//! Zoned disk geometry and the mechanical service-time model.
//!
//! Paper §2.1.2 (Geometry): "disks have multiple zones, with performance
//! across zones differing by up to a factor of two." Outer zones pack more
//! sectors per track, so sequential bandwidth declines from the outer to
//! the inner diameter. [`Geometry`] models a disk as `zones` equal-sized
//! LBA ranges whose transfer rates interpolate between an outer and an
//! inner rate, plus the classical seek/rotation mechanical model.

use simcore::time::SimDuration;

/// Static description of a disk's geometry and mechanics.
#[derive(Clone, Debug)]
pub struct Geometry {
    /// Total number of addressable blocks.
    pub blocks: u64,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Number of zones (constant-bandwidth bands), outermost first.
    pub zones: u32,
    /// Sequential transfer rate in the outermost zone, bytes/second.
    pub outer_rate: f64,
    /// Sequential transfer rate in the innermost zone, bytes/second.
    pub inner_rate: f64,
    /// Number of cylinders (for seek distance computation).
    pub cylinders: u32,
    /// Full-stroke seek time.
    pub full_seek: SimDuration,
    /// Single-track seek time.
    pub track_seek: SimDuration,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
}

impl Geometry {
    /// A model of a mid-1990s 5400-RPM drive, the class measured in the
    /// paper's bad-block experiment (Seagate Hawk: ~5.5 MB/s outer).
    pub fn hawk_5400() -> Self {
        Geometry {
            blocks: 4_000_000, // ~2 GB at 512 B
            block_bytes: 512,
            zones: 8,
            outer_rate: 5.5e6,
            inner_rate: 2.75e6,
            cylinders: 4_000,
            full_seek: SimDuration::from_millis(18),
            track_seek: SimDuration::from_millis(1),
            rpm: 5400,
        }
    }

    /// A model of a modern-for-2001 7200-RPM drive.
    pub fn barracuda_7200() -> Self {
        Geometry {
            blocks: 40_000_000, // ~20 GB at 512 B
            block_bytes: 512,
            zones: 16,
            outer_rate: 40.0e6,
            inner_rate: 20.0e6,
            cylinders: 16_000,
            full_seek: SimDuration::from_millis(12),
            track_seek: SimDuration::from_micros(800),
            rpm: 7200,
        }
    }

    /// The zone containing `lba` (0 = outermost).
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn zone_of(&self, lba: u64) -> u32 {
        assert!(lba < self.blocks, "lba {lba} out of range ({} blocks)", self.blocks);
        let z = (lba as u128 * self.zones as u128 / self.blocks as u128) as u32;
        z.min(self.zones - 1)
    }

    /// Sequential transfer rate (bytes/second) in the given zone,
    /// interpolated linearly from outer to inner.
    pub fn zone_rate(&self, zone: u32) -> f64 {
        assert!(zone < self.zones, "zone {zone} out of range");
        if self.zones == 1 {
            return self.outer_rate;
        }
        let frac = zone as f64 / (self.zones - 1) as f64;
        self.outer_rate + frac * (self.inner_rate - self.outer_rate)
    }

    /// Sequential transfer rate at an LBA.
    pub fn rate_at(&self, lba: u64) -> f64 {
        self.zone_rate(self.zone_of(lba))
    }

    /// The cylinder containing `lba` (uniform blocks-per-cylinder
    /// approximation).
    pub fn cylinder_of(&self, lba: u64) -> u32 {
        assert!(lba < self.blocks, "lba {lba} out of range");
        ((lba as u128 * self.cylinders as u128) / self.blocks as u128) as u32
    }

    /// Seek time between two cylinders: square-root model interpolating
    /// between a single-track and a full-stroke seek, zero for same
    /// cylinder.
    pub fn seek_time(&self, from_cyl: u32, to_cyl: u32) -> SimDuration {
        let dist = from_cyl.abs_diff(to_cyl);
        if dist == 0 {
            return SimDuration::ZERO;
        }
        let frac = (dist as f64 / self.cylinders as f64).sqrt();
        let t = self.track_seek.as_secs_f64()
            + frac * (self.full_seek.as_secs_f64() - self.track_seek.as_secs_f64());
        SimDuration::from_secs_f64(t)
    }

    /// Duration of one full platter rotation.
    pub fn rotation_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Time to transfer `nblocks` sequential blocks starting at `lba`,
    /// accounting for zone crossings.
    pub fn transfer_time(&self, lba: u64, nblocks: u64) -> SimDuration {
        assert!(lba + nblocks <= self.blocks, "transfer beyond end of disk");
        let mut remaining = nblocks;
        let mut cur = lba;
        let mut total = 0.0;
        while remaining > 0 {
            let zone = self.zone_of(cur);
            let zone_end = ((zone as u64 + 1) * self.blocks) / self.zones as u64;
            let span = remaining.min(zone_end - cur).max(1);
            total += span as f64 * self.block_bytes as f64 / self.zone_rate(zone);
            cur += span;
            remaining -= span;
        }
        SimDuration::from_secs_f64(total)
    }

    /// Disk capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.blocks * self.block_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_partition_the_disk() {
        let g = Geometry::hawk_5400();
        assert_eq!(g.zone_of(0), 0);
        assert_eq!(g.zone_of(g.blocks - 1), g.zones - 1);
        let mut last = 0;
        for lba in (0..g.blocks).step_by((g.blocks / 64) as usize) {
            let z = g.zone_of(lba);
            assert!(z >= last, "zones must be monotone in lba");
            last = z;
        }
    }

    #[test]
    fn outer_zone_twice_as_fast_as_inner() {
        let g = Geometry::hawk_5400();
        let ratio = g.zone_rate(0) / g.zone_rate(g.zones - 1);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        assert_eq!(g.rate_at(0), g.outer_rate);
    }

    #[test]
    fn zone_rates_decline_monotonically() {
        let g = Geometry::barracuda_7200();
        for z in 1..g.zones {
            assert!(g.zone_rate(z) < g.zone_rate(z - 1));
        }
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let g = Geometry::hawk_5400();
        assert_eq!(g.seek_time(100, 100), SimDuration::ZERO);
        let near = g.seek_time(100, 101);
        let mid = g.seek_time(0, g.cylinders / 2);
        let full = g.seek_time(0, g.cylinders - 1);
        assert!(near >= g.track_seek);
        assert!(near < mid && mid < full);
        assert!(full <= g.full_seek + SimDuration::from_micros(10));
    }

    #[test]
    fn rotation_time_matches_rpm() {
        let g = Geometry::hawk_5400();
        let ms = g.rotation_time().as_secs_f64() * 1e3;
        assert!((ms - 11.111).abs() < 0.01, "rotation {ms} ms");
    }

    #[test]
    fn transfer_time_uses_zone_rates() {
        let g = Geometry::hawk_5400();
        // 1 MB in the outer zone at 5.5 MB/s.
        let mb_bytes = 1u64 << 20;
        let n = mb_bytes / g.block_bytes as u64;
        let t = g.transfer_time(0, n).as_secs_f64();
        assert!((t - (1 << 20) as f64 / 5.5e6).abs() < 1e-6);
        // The same amount in the innermost zone takes twice as long.
        let inner_start = g.blocks - n;
        let t_inner = g.transfer_time(inner_start, n).as_secs_f64();
        assert!((t_inner / t - 2.0).abs() < 0.05, "ratio {}", t_inner / t);
    }

    #[test]
    fn transfer_time_across_zone_boundary() {
        let g = Geometry::hawk_5400();
        let boundary = g.blocks / g.zones as u64;
        let t = g.transfer_time(boundary - 10, 20);
        let t0 = g.transfer_time(boundary - 10, 10);
        let t1 = g.transfer_time(boundary, 10);
        let sum = t0 + t1;
        let diff = t.as_secs_f64() - sum.as_secs_f64();
        assert!(diff.abs() < 1e-9, "diff {diff}");
    }

    #[test]
    fn cylinder_of_is_monotone() {
        let g = Geometry::hawk_5400();
        assert_eq!(g.cylinder_of(0), 0);
        assert!(
            g.cylinder_of(g.blocks - 1) == g.cylinders - 1
                || g.cylinder_of(g.blocks - 1) == g.cylinders
        );
    }

    #[test]
    fn capacity_is_blocks_times_block_size() {
        let g = Geometry::hawk_5400();
        assert_eq!(g.capacity_bytes(), g.blocks * 512);
    }
}
