//! Property tests for the storage substrate.

use proptest::prelude::*;

use blockdev::prelude::*;
use simcore::rng::Stream;
use simcore::time::SimTime;

proptest! {
    /// Remapped blocks go to distinct spares, and resolution round-trips.
    #[test]
    fn remap_spares_distinct(lbas in proptest::collection::btree_set(0u64..900, 1..64)) {
        let mut t = RemapTable::new(1_000, 100);
        let mut spares = std::collections::BTreeSet::new();
        for &lba in &lbas {
            let spare = t.grow_defect(lba).expect("spares available");
            prop_assert!(spares.insert(spare), "spare reused");
            prop_assert!(spare >= 900, "spare outside spare area");
        }
        for &lba in &lbas {
            prop_assert!(t.is_remapped(lba));
            prop_assert!(t.resolve(lba).is_err());
        }
        prop_assert_eq!(t.defect_count(), lbas.len() as u64);
        // Unremapped blocks resolve to themselves.
        for lba in 0..900 {
            if !lbas.contains(&lba) {
                prop_assert_eq!(t.resolve(lba), Ok(lba));
            }
        }
    }

    /// File-system invariant: allocated files never overlap each other or
    /// the free list, and blocks are conserved.
    #[test]
    fn filesystem_space_is_partitioned(
        sizes in proptest::collection::vec(1u64..2_000, 1..24),
        churn in 0u32..30
    ) {
        let total = 100_000u64;
        let mut fs = FileSystem::new(total, Stream::from_seed(7));
        fs.age(churn);
        let mut created = Vec::new();
        for &s in &sizes {
            if let Ok(idx) = fs.create_file(s) {
                created.push(idx);
            }
        }
        // Collect every allocated extent from the created files plus the
        // free list; they must tile without overlap within the device.
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &idx in &created {
            for e in fs.file(idx).extents() {
                spans.push((e.start, e.len));
            }
        }
        let allocated: u64 = spans.iter().map(|&(_, l)| l).sum();
        let expected: u64 = created.iter().map(|&i| fs.file(i).len_blocks()).sum();
        prop_assert_eq!(allocated, expected);
        prop_assert!(fs.free_blocks() <= total);
        for &(start, len) in &spans {
            prop_assert!(start + len <= total, "extent beyond device");
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlapping extents {w:?}");
        }
    }

    /// Geometry: transfer time is additive over splits, and zone rates are
    /// monotone non-increasing.
    #[test]
    fn geometry_transfer_additive(lba in 0u64..3_000_000, n1 in 1u64..500, n2 in 1u64..500) {
        let g = Geometry::hawk_5400();
        prop_assume!(lba + n1 + n2 <= g.blocks);
        let whole = g.transfer_time(lba, n1 + n2).as_secs_f64();
        let parts = g.transfer_time(lba, n1).as_secs_f64()
            + g.transfer_time(lba + n1, n2).as_secs_f64();
        // Each transfer_time call rounds to whole nanoseconds once.
        prop_assert!((whole - parts).abs() < 3e-9, "whole {whole} vs parts {parts}");
        for z in 1..g.zones {
            prop_assert!(g.zone_rate(z) <= g.zone_rate(z - 1));
        }
    }

    /// Disk requests never overlap in time and never start before arrival.
    #[test]
    fn disk_grants_are_ordered(ops in proptest::collection::vec((0u64..3_000_000, 1u64..256), 1..48)) {
        let mut d = Disk::new(Geometry::hawk_5400(), Stream::from_seed(3));
        let mut t = SimTime::ZERO;
        let mut last_finish = SimTime::ZERO;
        for &(lba, n) in &ops {
            let g = d.read(t, lba, n).expect("healthy");
            prop_assert!(g.start >= t);
            prop_assert!(g.start >= last_finish);
            prop_assert!(g.finish > g.start);
            last_finish = g.finish;
            t = g.finish;
        }
    }

    /// Any schedule policy completes every request exactly once.
    #[test]
    fn schedules_complete_everything(
        reqs in proptest::collection::vec((0u64..5_000, 0u64..3_000_000, 1u64..128), 1..40),
        sstf in any::<bool>()
    ) {
        let policy = if sstf { SchedPolicy::Sstf } else { SchedPolicy::Fcfs };
        let requests: Vec<Request> = reqs
            .iter()
            .map(|&(ms, lba, n)| Request { at: SimTime::from_millis(ms), lba, nblocks: n })
            .collect();
        let mut d = Disk::new(Geometry::hawk_5400(), Stream::from_seed(5));
        let done = run_schedule(&mut d, policy, &requests).expect("healthy");
        prop_assert_eq!(done.len(), requests.len());
        for c in &done {
            prop_assert!(c.finish >= c.request.at);
        }
        let stats = schedule_stats(&done);
        prop_assert!(stats.mean_latency <= stats.max_latency);
    }

    /// The SSTF schedule is a function of the request *set*: permuting the
    /// submission slice changes nothing, because equal-seek-distance ties
    /// are broken by request content, never by queue position. (FCFS is
    /// deliberately not permutation-invariant — "first come" among
    /// simultaneous arrivals means submission order.)
    #[test]
    fn sstf_schedule_is_permutation_invariant(
        reqs in proptest::collection::vec((0u64..2_000, 0u64..3_000_000, 1u64..128), 1..24),
        seed in any::<u64>()
    ) {
        let requests: Vec<Request> = reqs
            .iter()
            .map(|&(ms, lba, n)| Request { at: SimTime::from_millis(ms), lba, nblocks: n })
            .collect();
        let mut shuffled = requests.clone();
        Stream::from_seed(seed).shuffle(&mut shuffled);

        let mut d1 = Disk::new(Geometry::hawk_5400(), Stream::from_seed(5));
        let done = run_schedule(&mut d1, SchedPolicy::Sstf, &requests).expect("healthy");
        let mut d2 = Disk::new(Geometry::hawk_5400(), Stream::from_seed(5));
        let done_shuffled = run_schedule(&mut d2, SchedPolicy::Sstf, &shuffled).expect("healthy");
        prop_assert_eq!(done, done_shuffled);
    }

    /// The drive cache never changes what is read, only when it arrives:
    /// hits are no slower than the same read uncached.
    #[test]
    fn cache_hits_never_slower(lba in 0u64..3_000_000, n in 1u64..128) {
        let disk = Disk::new(Geometry::hawk_5400(), Stream::from_seed(9));
        let mut c = CachedDisk::new(disk, DriveCacheConfig::default());
        let miss = c.read(SimTime::ZERO, lba, n).expect("ok");
        let hit = c.read(miss.finish, lba, n).expect("ok");
        prop_assert!(hit.finish - hit.start <= miss.finish - miss.start);
        prop_assert_eq!(c.stats().hits, 1);
    }

    /// SCSI chains are deterministic per seed and error counts advance
    /// monotonically with time.
    #[test]
    fn scsi_census_monotone(days in 1u64..60, seed in any::<u64>()) {
        let rng = Stream::from_seed(seed);
        let disks = vec![Disk::new(Geometry::hawk_5400(), rng.derive("d"))];
        let mut chain = ScsiChain::new(
            disks,
            ErrorProcess::default(),
            simcore::time::SimDuration::from_secs(days * 86_400),
            &mut rng.derive("e"),
        );
        let mut last = 0;
        for day in 0..days {
            let _ = chain.read(SimTime::from_secs(day * 86_400), 0, 0, 8);
            let now = chain.census().total();
            prop_assert!(now >= last);
            last = now;
        }
        prop_assert!(chain.census().total() <= chain.full_horizon_census().total());
    }
}
