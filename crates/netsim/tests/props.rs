//! Property tests for the network substrate.

use proptest::prelude::*;

use netsim::prelude::*;
use simcore::time::{SimDuration, SimTime};

proptest! {
    /// The switch conserves bytes: everything enqueued is either delivered
    /// or still backlogged, under both arbitration policies.
    #[test]
    fn switch_conserves_bytes(
        packets in proptest::collection::vec(
            (0u64..2_000, 0usize..4, 0usize..2, 1u64..50_000),
            1..64
        ),
        priority in any::<bool>()
    ) {
        let arb = if priority { Arbitration::Priority } else { Arbitration::Fair };
        let mut sw = Switch::new(4, 2, 1e6, arb);
        let mut total = 0u64;
        for &(at_ms, input, output, bytes) in &packets {
            sw.enqueue(Packet { at: SimTime::from_millis(at_ms), input, output, bytes });
            total += bytes;
        }
        let done = sw.drain_until(SimTime::from_secs(2));
        let delivered: u64 = done.iter().map(|f| f.packet.bytes).sum();
        prop_assert_eq!(delivered + sw.backlog_bytes(), total);
        // Completions never precede arrivals.
        for f in &done {
            prop_assert!(f.done >= f.packet.at);
        }
    }

    /// Draining twice with a later deadline only adds packets, in
    /// non-decreasing completion order per output.
    #[test]
    fn incremental_drains_compose(
        packets in proptest::collection::vec((0u64..500, 1u64..20_000), 1..48)
    ) {
        let mut one = Switch::new(1, 1, 1e6, Arbitration::Fair);
        let mut two = Switch::new(1, 1, 1e6, Arbitration::Fair);
        for &(at_ms, bytes) in &packets {
            let p = Packet { at: SimTime::from_millis(at_ms), input: 0, output: 0, bytes };
            one.enqueue(p);
            two.enqueue(p);
        }
        one.drain_until(SimTime::from_secs(10));
        two.drain_until(SimTime::from_secs(1));
        two.drain_until(SimTime::from_secs(10));
        prop_assert_eq!(one.delivered(), two.delivered());
    }

    /// Wormhole message completion is monotone in the inter-packet gap,
    /// and only gaps at or above the threshold trigger deadlocks.
    #[test]
    fn wormhole_monotone_and_thresholded(
        packets in 2u32..20,
        gap_ms in 0u64..200
    ) {
        let cfg = WatchdogConfig::default();
        let mut f = WormholeFabric::new(100e6, cfg);
        let out = f.send_message(SimTime::ZERO, packets, 1_000, SimDuration::from_millis(gap_ms));
        let expect_deadlocks = gap_ms >= 50;
        prop_assert_eq!(out.deadlocks_triggered > 0, expect_deadlocks);
        if expect_deadlocks {
            prop_assert_eq!(out.deadlocks_triggered, packets - 1);
        }

        let mut slower = WormholeFabric::new(100e6, cfg);
        let out2 = slower.send_message(
            SimTime::ZERO,
            packets,
            1_000,
            SimDuration::from_millis(gap_ms + 1),
        );
        prop_assert!(out2.finished >= out.finished);
    }

    /// The transpose delivers every byte: goodput × elapsed = total.
    #[test]
    fn transpose_conserves_bytes(slow in 0.1f64..1.0, which in 0usize..16) {
        let cfg = TransposeConfig::default();
        let mut mult = vec![1.0; cfg.nodes];
        mult[which] = slow;
        let out = run_transpose(&cfg, &mult);
        let total = (cfg.bytes_per_pair * (cfg.nodes * cfg.nodes) as u64) as f64;
        let implied = out.goodput * out.elapsed.as_secs_f64();
        prop_assert!((implied / total - 1.0).abs() < 1e-6);
        // A slow receiver never makes the transpose faster than healthy.
        let healthy = healthy_baseline(&cfg);
        prop_assert!(out.elapsed >= healthy.elapsed);
    }

    /// The adaptive transfer under fair arbitration finishes, conserves
    /// bytes, and unfairness never speeds it up.
    #[test]
    fn adaptive_transfer_sane(routes in 2usize..4, mb_per_route in 50u64..300) {
        let cfg = TransferConfig {
            routes,
            bytes_per_route: mb_per_route as f64 * 1e6,
            ..TransferConfig::default()
        };
        let fair = run_adaptive_transfer(&cfg, PortArbitration::Fair);
        let unfair = run_adaptive_transfer(&cfg, PortArbitration::Priority);
        prop_assert!(fair.goodput > 0.0);
        prop_assert!(unfair.elapsed.as_secs_f64() >= 0.95 * fair.elapsed.as_secs_f64());
        prop_assert_eq!(fair.route_finish.len(), routes);
    }

    /// Links serialise: a batch of sends occupies the link for exactly the
    /// sum of serialisation times.
    #[test]
    fn link_serialisation_adds_up(sizes in proptest::collection::vec(1u64..1_000_000, 1..16)) {
        let mut l = Link::new(1e6, SimDuration::ZERO);
        let mut last = None;
        for &bytes in &sizes {
            last = l.send(SimTime::ZERO, bytes);
        }
        let total: u64 = sizes.iter().sum();
        let expect = SimDuration::from_secs_f64(total as f64 / 1e6);
        let got = last.expect("link up").arrive - SimTime::ZERO;
        let diff = got.as_secs_f64() - expect.as_secs_f64();
        prop_assert!(diff.abs() < 1e-6 * sizes.len() as f64, "diff {diff}");
    }
}

proptest! {
    /// Multicast: group delivery never exceeds the offered stream, and
    /// bimodal delivery is never slower than atomic.
    #[test]
    fn multicast_orderings(
        n in 2usize..10,
        slow in 0.05f64..1.0,
        which in 0usize..10
    ) {
        use netsim::prelude::*;
        use simcore::rng::Stream;
        use stutter::injector::Injector;

        let which = which % n;
        let profile = Injector::StaticSlowdown { factor: slow }
            .timeline(SimDuration::from_secs(240), &mut Stream::from_seed(1));
        let mut members: Vec<Member> = (0..n).map(|_| Member::new(1_000.0)).collect();
        members[which] = Member::new(1_000.0).with_profile(profile);
        let cfg = McastConfig {
            offered_rate: 900.0,
            duration: SimDuration::from_secs(30),
            dt: SimDuration::from_millis(10),
        };
        let atomic = run_multicast(&members, cfg, McastProtocol::Atomic);
        let bimodal = run_multicast(&members, cfg, McastProtocol::Bimodal);
        prop_assert!(atomic.mean_delivery <= 900.0 * 1.001);
        prop_assert!(bimodal.mean_delivery <= 900.0 * 1.001);
        prop_assert!(bimodal.mean_delivery + 1e-6 >= atomic.mean_delivery,
            "bimodal {} < atomic {}", bimodal.mean_delivery, atomic.mean_delivery);
        prop_assert!(atomic.peak_lag >= atomic.final_lag - 1e-6);
    }
}

proptest! {
    /// Slow-port backpressure bounds (§2.1.3): an output port serialises
    /// at `rate`, so (a) bytes delivered through it never exceed
    /// `rate × deadline`, (b) the backlog can shrink no faster than every
    /// port draining flat out, and (c) because queueing is per-output, an
    /// overloaded port's backpressure never leaks into another port's
    /// deliveries.
    #[test]
    fn slow_port_backpressure_bounds(
        packets in proptest::collection::vec((0u64..1_000, 0usize..4, 1u64..60_000), 1..64),
        extra in proptest::collection::vec((0u64..1_000, 0usize..4, 1u64..60_000), 1..64),
        deadline_ms in 100u64..2_000,
    ) {
        let rate = 1e6;
        let deadline = SimTime::from_millis(deadline_ms);
        let mut base = Switch::new(4, 2, rate, Arbitration::Fair);
        let mut loaded = Switch::new(4, 2, rate, Arbitration::Fair);
        let mut offered = 0u64;
        for &(at_ms, input, bytes) in &packets {
            let p = Packet { at: SimTime::from_millis(at_ms), input, output: 0, bytes };
            base.enqueue(p);
            loaded.enqueue(p);
            offered += bytes;
        }
        // Congest output 1 of the loaded switch only.
        for &(at_ms, input, bytes) in &extra {
            loaded.enqueue(Packet { at: SimTime::from_millis(at_ms), input, output: 1, bytes });
            offered += bytes;
        }
        let base_done = base.drain_until(deadline);
        let loaded_done = loaded.drain_until(deadline);

        // (a) serialisation ceiling on the slow port.
        let through_port0: u64 = base_done.iter().map(|f| f.packet.bytes).sum();
        prop_assert!(
            through_port0 as f64 <= rate * deadline.as_secs_f64() * (1.0 + 1e-9) + 1.0,
            "port 0 moved {through_port0} bytes in {deadline_ms} ms"
        );

        // (b) work-conservation floor on the backlog.
        let max_drainable = 2.0 * rate * deadline.as_secs_f64();
        prop_assert!(
            loaded.backlog_bytes() as f64 >= offered as f64 - max_drainable - 1.0,
            "backlog {} below floor", loaded.backlog_bytes()
        );

        // (c) output isolation: identical deliveries on the uncongested path.
        let out0_base: Vec<&Forwarded> =
            base_done.iter().filter(|f| f.packet.output == 0).collect();
        let out0_loaded: Vec<&Forwarded> =
            loaded_done.iter().filter(|f| f.packet.output == 0).collect();
        prop_assert_eq!(out0_base.len(), out0_loaded.len());
        for (a, b) in out0_base.iter().zip(&out0_loaded) {
            prop_assert_eq!(a.packet, b.packet);
            prop_assert_eq!(a.done, b.done);
        }
    }
}
