//! All-to-all transpose with flow control — the CM-5 collapse.
//!
//! Paper §2.1.3 (Flow Control), citing Brewer and Kuszmaul: "once a
//! receiver falls behind the others, messages accumulate in the network and
//! cause excessive network contention, reducing transpose performance by
//! almost a factor of three."
//!
//! [`run_transpose`] is a fluid model of `n` senders performing an all-to-all
//! transpose into `n` receivers through a shared fabric with finite buffer
//! capacity. Senders spray destinations round-robin; a receiver that drains
//! slowly lets its packets pile up in the shared buffer; once they dominate
//! the buffer, head-of-line blocking throttles delivery to *every*
//! receiver — the global collapse is much worse than the slow receiver's
//! own deficit.
//!
//! A barrier-synchronised variant ([`barrier_transpose_time`]) provides the
//! static-parallelism comparison used by the experiments.

use simcore::time::{SimDuration, SimTime};

/// Parameters of the fluid transpose model.
#[derive(Clone, Copy, Debug)]
pub struct TransposeConfig {
    /// Number of nodes (senders = receivers).
    pub nodes: usize,
    /// Bytes each sender must deliver to each receiver.
    pub bytes_per_pair: u64,
    /// Per-node injection rate, bytes/second.
    pub inject_rate: f64,
    /// Per-node drain (receive) rate at nominal speed, bytes/second.
    pub drain_rate: f64,
    /// Shared fabric buffer capacity in bytes.
    pub fabric_buffer: u64,
    /// Simulation time step.
    pub dt: SimDuration,
}

impl Default for TransposeConfig {
    fn default() -> Self {
        TransposeConfig {
            nodes: 16,
            bytes_per_pair: 1 << 20,
            inject_rate: 20e6,
            drain_rate: 20e6,
            fabric_buffer: 4 << 20,
            dt: SimDuration::from_millis(1),
        }
    }
}

/// The result of one transpose run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransposeResult {
    /// Wall-clock (simulated) completion time of the whole transpose.
    pub elapsed: SimDuration,
    /// Aggregate goodput in bytes/second.
    pub goodput: f64,
    /// Peak fabric occupancy observed, in bytes.
    pub peak_occupancy: u64,
}

/// Fluid simulation of an all-to-all transpose through a shared buffer.
///
/// `drain_multipliers[r]` scales receiver `r`'s drain rate (1.0 = nominal);
/// use e.g. `1/3` to reproduce the CM-5 slow-receiver experiment.
pub fn run_transpose(config: &TransposeConfig, drain_multipliers: &[f64]) -> TransposeResult {
    assert_eq!(drain_multipliers.len(), config.nodes, "one multiplier per node");
    let n = config.nodes;
    let dt = config.dt.as_secs_f64();
    let total_per_receiver = config.bytes_per_pair as f64 * n as f64;

    // Remaining bytes to inject for, and in-fabric backlog of, each receiver.
    let mut to_send = vec![total_per_receiver; n];
    let mut backlog = vec![0.0f64; n];
    let mut received = vec![0.0f64; n];
    let mut peak = 0.0f64;
    let mut t = 0.0f64;
    let total_bytes = total_per_receiver * n as f64;
    // Hard stop so a zero-drain receiver cannot loop forever.
    let max_time = 1000.0 * total_bytes / (config.drain_rate * n as f64);

    while received.iter().sum::<f64>() < total_bytes - 0.5 && t < max_time {
        t += dt;
        let occupancy: f64 = backlog.iter().sum();
        peak = peak.max(occupancy);
        let free = (config.fabric_buffer as f64 - occupancy).max(0.0);

        // Injection: every sender sprays all receivers equally, so the
        // aggregate offered injection to receiver r is `inject_rate` (n
        // senders × rate/n each), limited by remaining data and by free
        // buffer shared proportionally to demand.
        let mut demand = vec![0.0f64; n];
        let mut total_demand = 0.0;
        for r in 0..n {
            let want = (config.inject_rate * dt).min(to_send[r]);
            demand[r] = want;
            total_demand += want;
        }
        let admit_scale = if total_demand > 0.0 { (free / total_demand).min(1.0) } else { 0.0 };
        for r in 0..n {
            let injected = demand[r] * admit_scale;
            to_send[r] -= injected;
            backlog[r] += injected;
        }

        // Drain with head-of-line blocking. While the fabric is lightly
        // loaded packets flow freely; past a congestion knee, a receiver's
        // pull rate is throttled by the fraction of the buffer occupied by
        // *other* receivers' stuck packets (its own arrive in order and
        // drain fine). One lagging receiver thereby slows everyone —
        // the CM-5 observation.
        let occupancy_after: f64 = backlog.iter().sum();
        let congestion = occupancy_after / config.fabric_buffer as f64;
        const KNEE: f64 = 0.7;
        let pressure = ((congestion - KNEE) / (1.0 - KNEE)).clamp(0.0, 1.0);
        for r in 0..n {
            let foreign_frac = if occupancy_after > 0.0 {
                (occupancy_after - backlog[r]) / occupancy_after
            } else {
                0.0
            };
            let hol = (1.0 - pressure * foreign_frac).clamp(0.35, 1.0);
            let rate = config.drain_rate * drain_multipliers[r] * hol;
            let pulled = (rate * dt).min(backlog[r]);
            backlog[r] -= pulled;
            received[r] += pulled;
        }
    }

    let elapsed = SimDuration::from_secs_f64(t);
    TransposeResult { elapsed, goodput: total_bytes / t, peak_occupancy: peak.round() as u64 }
}

/// Completion time of a barrier-synchronised transpose: `n` phases, each
/// gated by its slowest receiver — the static-parallelism reference model.
pub fn barrier_transpose_time(config: &TransposeConfig, drain_multipliers: &[f64]) -> SimDuration {
    assert_eq!(drain_multipliers.len(), config.nodes, "one multiplier per node");
    let slowest = drain_multipliers.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
    assert!(slowest > 0.0, "a zero-rate receiver never finishes");
    let phase =
        config.bytes_per_pair as f64 / (config.drain_rate * slowest).min(config.inject_rate);
    SimDuration::from_secs_f64(phase * config.nodes as f64)
}

/// Convenience: elapsed time of a fully healthy transpose.
pub fn healthy_baseline(config: &TransposeConfig) -> TransposeResult {
    run_transpose(config, &vec![1.0; config.nodes])
}

/// Convenience alias so experiment code can speak in `SimTime`.
pub fn finish_time(result: &TransposeResult) -> SimTime {
    SimTime::ZERO + result.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_transpose_hits_wire_speed() {
        let cfg = TransposeConfig::default();
        let r = healthy_baseline(&cfg);
        // 16 nodes × 16 MB at an aggregate 320 MB/s ≈ 0.8 s.
        let ideal = (cfg.bytes_per_pair * cfg.nodes as u64 * cfg.nodes as u64) as f64
            / (cfg.drain_rate * cfg.nodes as f64);
        let ratio = r.elapsed.as_secs_f64() / ideal;
        assert!((1.0..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn one_slow_receiver_collapses_global_throughput() {
        // The headline CM-5 result: a receiver at 1/3 speed costs the whole
        // transpose close to 3x.
        let cfg = TransposeConfig::default();
        let healthy = healthy_baseline(&cfg);
        let mut mult = vec![1.0; cfg.nodes];
        mult[5] = 1.0 / 3.0;
        let degraded = run_transpose(&cfg, &mult);
        let slowdown = degraded.elapsed.as_secs_f64() / healthy.elapsed.as_secs_f64();
        assert!(slowdown > 2.0, "slowdown {slowdown}");
        assert!(slowdown < 4.5, "slowdown {slowdown}");
    }

    #[test]
    fn slow_receiver_fills_the_fabric() {
        let cfg = TransposeConfig::default();
        let mut mult = vec![1.0; cfg.nodes];
        mult[0] = 0.2;
        let r = run_transpose(&cfg, &mult);
        assert!(
            r.peak_occupancy > cfg.fabric_buffer / 2,
            "peak {} of {}",
            r.peak_occupancy,
            cfg.fabric_buffer
        );
    }

    #[test]
    fn bigger_buffers_absorb_more_stutter() {
        let small = TransposeConfig { fabric_buffer: 1 << 20, ..Default::default() };
        let large = TransposeConfig { fabric_buffer: 64 << 20, ..Default::default() };
        let mut mult = vec![1.0; small.nodes];
        mult[3] = 0.5;
        let t_small = run_transpose(&small, &mult).elapsed;
        let t_large = run_transpose(&large, &mult).elapsed;
        assert!(t_large < t_small, "large {t_large} vs small {t_small}");
    }

    #[test]
    fn barrier_model_tracks_slowest() {
        let cfg = TransposeConfig::default();
        let healthy = barrier_transpose_time(&cfg, &vec![1.0; cfg.nodes]);
        let mut mult = vec![1.0; cfg.nodes];
        mult[0] = 0.5;
        let degraded = barrier_transpose_time(&cfg, &mult);
        let ratio = degraded.as_secs_f64() / healthy.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn goodput_is_consistent_with_elapsed() {
        let cfg = TransposeConfig::default();
        let r = healthy_baseline(&cfg);
        let total = (cfg.bytes_per_pair * (cfg.nodes * cfg.nodes) as u64) as f64;
        let recomputed = total / r.elapsed.as_secs_f64();
        assert!((recomputed / r.goodput - 1.0).abs() < 1e-9);
    }
}
