//! # netsim — the network substrate
//!
//! Link, switch and fabric models reproducing the network phenomena of
//! §2.1.3 of *"Fail-Stutter Fault Tolerance"*:
//!
//! * [`link`] — serialising links carrying fail-stutter timelines.
//! * [`mesh`] — a full mesh of directed links (the carrier a control
//!   plane gossips over).
//! * [`switch`] — an output-queued switch whose arbitration can be unfair
//!   under load (the Myrinet route-preference observation).
//! * [`wormhole`] — wormhole routing with a deadlock watchdog whose
//!   recovery halts all traffic for seconds (the Myrinet deadlock).
//! * [`transpose`] — an all-to-all transpose through a finite shared
//!   buffer, where one slow receiver congests everyone (the CM-5 flow
//!   control collapse).
//!
//! # Examples
//!
//! ```
//! use netsim::transpose::{healthy_baseline, run_transpose, TransposeConfig};
//!
//! let cfg = TransposeConfig::default();
//! let healthy = healthy_baseline(&cfg);
//! let mut mult = vec![1.0; cfg.nodes];
//! mult[0] = 1.0 / 3.0; // one receiver at a third of its speed
//! let degraded = run_transpose(&cfg, &mult);
//! let slowdown = degraded.elapsed.as_secs_f64() / healthy.elapsed.as_secs_f64();
//! assert!(slowdown > 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive_transfer;
pub mod link;
pub mod mesh;
pub mod multicast;
pub mod switch;
pub mod transpose;
pub mod wormhole;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::adaptive_transfer::{
        run_adaptive_transfer, PortArbitration, TransferConfig, TransferOutcome,
    };
    pub use crate::link::{Delivery, Link};
    pub use crate::mesh::Mesh;
    pub use crate::multicast::{run_multicast, McastConfig, McastOutcome, McastProtocol, Member};
    pub use crate::switch::{Arbitration, Forwarded, Packet, Switch};
    pub use crate::transpose::{
        barrier_transpose_time, healthy_baseline, run_transpose, TransposeConfig, TransposeResult,
    };
    pub use crate::wormhole::{MessageOutcome, WatchdogConfig, WormholeFabric};
}
