//! A full mesh of directed links — the carrier for control-plane traffic.
//!
//! A cluster-wide performance-state plane (or any other gossip protocol)
//! needs point-to-point transport between every pair of nodes, where each
//! direction is its own serialising [`Link`] that can carry its own
//! fail-stutter timeline. [`Mesh`] provides exactly that: `n·(n−1)`
//! directed links, individually profilable, so the control plane's own
//! carrier can be slowed, black-holed, or partitioned like any §2
//! component.

use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

use crate::link::{Delivery, Link};

/// A full mesh of directed point-to-point links between `n` nodes.
#[derive(Clone, Debug)]
pub struct Mesh {
    n: usize,
    rate: f64,
    latency: SimDuration,
    links: Vec<Link>,
}

impl Mesh {
    /// Creates a homogeneous mesh: every directed link runs at `rate`
    /// bytes/second with propagation `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `rate` is not positive.
    pub fn homogeneous(n: usize, rate: f64, latency: SimDuration) -> Self {
        assert!(n >= 2, "a mesh needs at least two nodes, got {n}");
        let links = (0..n * n).map(|_| Link::new(rate, latency)).collect();
        Mesh { n, rate, latency, links }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    fn idx(&self, from: usize, to: usize) -> usize {
        assert!(from < self.n && to < self.n && from != to, "bad link ({from} -> {to})");
        from * self.n + to
    }

    /// Attaches a fail-stutter timeline to the directed link `from → to`.
    pub fn set_profile(&mut self, from: usize, to: usize, profile: SlowdownProfile) {
        let i = self.idx(from, to);
        self.links[i] = Link::new(self.rate, self.latency).with_profile(profile);
    }

    /// The directed link `from → to`.
    pub fn link(&self, from: usize, to: usize) -> &Link {
        &self.links[self.idx(from, to)]
    }

    /// Transmits `bytes` over the directed link `from → to`, queueing
    /// behind earlier transmissions. Returns `None` if that link is
    /// permanently down (the message is lost).
    pub fn send(&mut self, from: usize, to: usize, now: SimTime, bytes: u64) -> Option<Delivery> {
        let i = self.idx(from, to);
        self.links[i].send(now, bytes)
    }

    /// Total payload bytes accepted across every link.
    pub fn bytes_sent(&self) -> u64 {
        self.links.iter().map(Link::bytes_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_independent() {
        let mut m = Mesh::homogeneous(3, 1e6, SimDuration::ZERO);
        let a = m.send(0, 1, SimTime::ZERO, 500_000).expect("up");
        let b = m.send(0, 2, SimTime::ZERO, 500_000).expect("up");
        // Different directed links do not queue behind each other.
        assert_eq!(a.arrive, SimTime::from_millis(500));
        assert_eq!(b.arrive, SimTime::from_millis(500));
        assert_eq!(m.bytes_sent(), 1_000_000);
    }

    #[test]
    fn profiled_link_slows_only_its_direction() {
        let mut m = Mesh::homogeneous(2, 1e6, SimDuration::ZERO);
        let half = SlowdownProfile::from_breakpoints(vec![(SimTime::ZERO, 0.5)]);
        m.set_profile(0, 1, half);
        let fwd = m.send(0, 1, SimTime::ZERO, 1_000_000).expect("up");
        let rev = m.send(1, 0, SimTime::ZERO, 1_000_000).expect("up");
        assert_eq!(fwd.arrive, SimTime::from_secs(2));
        assert_eq!(rev.arrive, SimTime::from_secs(1));
    }

    #[test]
    fn dead_link_drops_the_message() {
        let mut m = Mesh::homogeneous(2, 1e6, SimDuration::ZERO);
        m.set_profile(0, 1, SlowdownProfile::nominal().with_failure_at(SimTime::ZERO));
        assert!(m.send(0, 1, SimTime::from_secs(1), 64).is_none());
        assert!(m.send(1, 0, SimTime::from_secs(1), 64).is_some());
    }

    #[test]
    #[should_panic]
    fn self_link_is_rejected() {
        let m = Mesh::homogeneous(2, 1e6, SimDuration::ZERO);
        let _ = m.link(1, 1);
    }
}
