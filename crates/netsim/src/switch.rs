//! An output-queued switch with pluggable (and possibly unfair) arbitration.
//!
//! Paper §2.1.3 (Unfairness): "if enough load is placed on a Myrinet
//! switch, certain routes receive preference; the result is that the nodes
//! behind disfavored links appear 'slower' to a sender, even though they
//! are fully capable of receiving data at link rate."
//!
//! [`Switch`] accepts per-input packet demands destined to output ports and
//! arbitrates each output's bandwidth among competing inputs. Under
//! [`Arbitration::Fair`], backlogged inputs share an output equally; under
//! [`Arbitration::Priority`], lower-numbered inputs always win — which is
//! invisible at low load and starves disfavoured inputs at high load,
//! exactly the observed behaviour.

use std::collections::VecDeque;

use simcore::time::{SimDuration, SimTime};

/// How an output port divides its bandwidth among backlogged inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arbitration {
    /// Round-robin over backlogged inputs: equal shares.
    Fair,
    /// Strict priority by input index: the pathological favouritism
    /// observed in loaded Myrinet switches.
    Priority,
}

/// A packet queued at the switch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    /// Arrival time at the switch.
    pub at: SimTime,
    /// Input port it arrived on.
    pub input: usize,
    /// Output port it must leave through.
    pub output: usize,
    /// Size in bytes.
    pub bytes: u64,
}

/// A delivered packet with its departure time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Forwarded {
    /// The packet.
    pub packet: Packet,
    /// When its last byte left the output port.
    pub done: SimTime,
}

/// An output-queued crossbar switch.
#[derive(Clone, Debug)]
pub struct Switch {
    inputs: usize,
    outputs: usize,
    rate: f64,
    arbitration: Arbitration,
    // Per-output, per-input FIFO of pending packets.
    queues: Vec<Vec<VecDeque<Packet>>>,
    // Per-output progress clock and round-robin pointer, persisted across
    // drain calls.
    out_clock: Vec<SimTime>,
    rr: Vec<usize>,
    delivered: Vec<Forwarded>,
}

impl Switch {
    /// Creates a switch with `inputs × outputs` ports, each output draining
    /// at `rate` bytes/second.
    pub fn new(inputs: usize, outputs: usize, rate: f64, arbitration: Arbitration) -> Self {
        assert!(inputs > 0 && outputs > 0, "ports must be positive");
        assert!(rate > 0.0, "rate must be positive");
        Switch {
            inputs,
            outputs,
            rate,
            arbitration,
            queues: vec![vec![VecDeque::new(); inputs]; outputs],
            out_clock: vec![SimTime::ZERO; outputs],
            rr: vec![0; outputs],
            delivered: Vec::new(),
        }
    }

    /// Enqueues a packet.
    ///
    /// # Panics
    ///
    /// Panics if the ports are out of range.
    pub fn enqueue(&mut self, p: Packet) {
        assert!(p.input < self.inputs, "input {} out of range", p.input);
        assert!(p.output < self.outputs, "output {} out of range", p.output);
        self.queues[p.output][p.input].push_back(p);
    }

    /// Drains every output until `deadline`, consuming queued packets
    /// according to the arbitration policy. Returns packets completed in
    /// this call.
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<Forwarded> {
        let mut out = Vec::new();
        for output in 0..self.outputs {
            self.drain_output(output, deadline, &mut out);
        }
        self.delivered.extend(out.iter().copied());
        out
    }

    fn drain_output(&mut self, output: usize, deadline: SimTime, out: &mut Vec<Forwarded>) {
        let per_byte = SimDuration::from_secs_f64(1.0 / self.rate);
        let mut clock = self.out_clock[output];
        let mut rr_next = self.rr[output];
        loop {
            // Find the candidate input whose head packet has arrived by
            // `clock` (or the earliest future arrival if the port is idle).
            let queues = &self.queues[output];
            let mut earliest: Option<SimTime> = None;
            let mut candidates: Vec<usize> = Vec::new();
            for (input, queue) in queues.iter().enumerate() {
                if let Some(p) = queue.front() {
                    earliest = Some(earliest.map_or(p.at, |e: SimTime| e.min(p.at)));
                    if p.at <= clock {
                        candidates.push(input);
                    }
                }
            }
            if candidates.is_empty() {
                match earliest {
                    // Idle: jump to the next arrival.
                    Some(t) if t < deadline => {
                        clock = clock.max(t);
                        continue;
                    }
                    _ => break,
                }
            }
            let input = match self.arbitration {
                Arbitration::Priority => *candidates.iter().min().expect("non-empty"),
                Arbitration::Fair => {
                    // Pick the first candidate at or after the round-robin
                    // pointer, wrapping.
                    let pick =
                        candidates.iter().copied().find(|&i| i >= rr_next).unwrap_or(candidates[0]);
                    rr_next = (pick + 1) % self.inputs;
                    pick
                }
            };
            let p = self.queues[output][input].pop_front().expect("candidate has head");
            let start = clock.max(p.at);
            let done = start + per_byte * p.bytes;
            if done > deadline {
                // Cannot finish before the deadline; put it back.
                self.queues[output][input].push_front(p);
                break;
            }
            clock = done;
            out.push(Forwarded { packet: p, done });
        }
        self.out_clock[output] = clock.min(deadline);
        self.rr[output] = rr_next;
    }

    /// Every packet delivered so far.
    pub fn delivered(&self) -> &[Forwarded] {
        &self.delivered
    }

    /// Per-input delivered byte counts (across all outputs).
    pub fn delivered_bytes_by_input(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.inputs];
        for f in &self.delivered {
            v[f.packet.input] += f.packet.bytes;
        }
        v
    }

    /// Bytes still queued.
    pub fn backlog_bytes(&self) -> u64 {
        self.queues
            .iter()
            .flat_map(|per_in| per_in.iter())
            .flat_map(|q| q.iter())
            .map(|p| p.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(at_ms: u64, input: usize, output: usize, bytes: u64) -> Packet {
        Packet { at: SimTime::from_millis(at_ms), input, output, bytes }
    }

    /// Loads two inputs with heavy traffic to one output and returns the
    /// delivered byte ratio input0 : input1 after one second.
    fn contended_ratio(arb: Arbitration) -> f64 {
        let mut sw = Switch::new(2, 1, 1e6, arb);
        // Each input offers 1 MB/s to a single 1 MB/s output: 2x overload.
        for i in 0..100 {
            sw.enqueue(pkt(i * 10, 0, 0, 10_000));
            sw.enqueue(pkt(i * 10, 1, 0, 10_000));
        }
        sw.drain_until(SimTime::from_secs(1));
        let by_input = sw.delivered_bytes_by_input();
        by_input[0] as f64 / by_input[1].max(1) as f64
    }

    #[test]
    fn fair_arbitration_splits_evenly_under_load() {
        let r = contended_ratio(Arbitration::Fair);
        assert!((r - 1.0).abs() < 0.1, "ratio {r}");
    }

    #[test]
    fn priority_arbitration_starves_disfavoured_input() {
        let r = contended_ratio(Arbitration::Priority);
        assert!(r > 5.0, "ratio {r}");
    }

    #[test]
    fn light_load_hides_unfairness() {
        // At 20% load both inputs get everything through regardless of
        // policy — the paper's point that the fault only appears under load.
        for arb in [Arbitration::Fair, Arbitration::Priority] {
            let mut sw = Switch::new(2, 1, 1e6, arb);
            for i in 0..10 {
                sw.enqueue(pkt(i * 100, 0, 0, 10_000));
                sw.enqueue(pkt(i * 100, 1, 0, 10_000));
            }
            sw.drain_until(SimTime::from_secs(1));
            let by_input = sw.delivered_bytes_by_input();
            assert_eq!(by_input[0], 100_000, "{arb:?}");
            assert_eq!(by_input[1], 100_000, "{arb:?}");
        }
    }

    #[test]
    fn packets_respect_arrival_times() {
        let mut sw = Switch::new(1, 1, 1e6, Arbitration::Fair);
        sw.enqueue(pkt(500, 0, 0, 1_000));
        let done = sw.drain_until(SimTime::from_secs(1));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].done, SimTime::from_millis(501));
    }

    #[test]
    fn undrained_packets_stay_backlogged() {
        let mut sw = Switch::new(1, 1, 1e3, Arbitration::Fair);
        sw.enqueue(pkt(0, 0, 0, 10_000)); // needs 10 s
        let done = sw.drain_until(SimTime::from_secs(1));
        assert!(done.is_empty());
        assert_eq!(sw.backlog_bytes(), 10_000);
    }

    #[test]
    fn separate_outputs_do_not_contend() {
        let mut sw = Switch::new(2, 2, 1e6, Arbitration::Priority);
        sw.enqueue(pkt(0, 0, 0, 1_000_000));
        sw.enqueue(pkt(0, 1, 1, 1_000_000));
        let done = sw.drain_until(SimTime::from_secs(1));
        assert_eq!(done.len(), 2);
        for f in done {
            assert_eq!(f.done, SimTime::from_secs(1));
        }
    }
}
