//! Wormhole routing with a deadlock watchdog — the Myrinet halt.
//!
//! Paper §2.1.3 (Deadlock): "by waiting too long between packets that form
//! a logical 'message', the deadlock-detection hardware triggers and begins
//! the deadlock recovery process, halting all switch traffic for two
//! seconds."
//!
//! In wormhole routing a message holds its route open from first to last
//! packet. [`WormholeFabric::send_message`] models a message as a packet
//! train with a configurable inter-packet gap; if any gap reaches the
//! watchdog threshold, the fabric declares deadlock and halts *all*
//! traffic for the recovery time. The victim is not just the guilty
//! message: every message in flight pays.

use simcore::time::{SimDuration, SimTime};

/// Configuration of the fabric's deadlock watchdog.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Gap between packets of one message that triggers deadlock detection.
    pub threshold: SimDuration,
    /// How long deadlock recovery halts all traffic (Myrinet: two seconds).
    pub recovery: SimDuration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            threshold: SimDuration::from_millis(50),
            recovery: SimDuration::from_secs(2),
        }
    }
}

/// Outcome of sending one message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageOutcome {
    /// When the last packet was delivered.
    pub finished: SimTime,
    /// How many deadlock recoveries this message triggered.
    pub deadlocks_triggered: u32,
}

/// A shared wormhole fabric with one global watchdog.
#[derive(Clone, Debug)]
pub struct WormholeFabric {
    rate: f64,
    config: WatchdogConfig,
    // No traffic moves before this instant (recovery in progress).
    halted_until: SimTime,
    deadlocks: u64,
    bytes_delivered: u64,
}

impl WormholeFabric {
    /// Creates a fabric draining `rate` bytes/second per route.
    pub fn new(rate: f64, config: WatchdogConfig) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        WormholeFabric {
            rate,
            config,
            halted_until: SimTime::ZERO,
            deadlocks: 0,
            bytes_delivered: 0,
        }
    }

    /// Sends one logical message of `packets` packets of `packet_bytes`
    /// each, with the sender pausing `gap` between consecutive packets
    /// (the communication-software structure that provoked the Myrinet
    /// deadlock).
    ///
    /// Returns when the message finished and how many deadlocks it caused.
    pub fn send_message(
        &mut self,
        now: SimTime,
        packets: u32,
        packet_bytes: u64,
        gap: SimDuration,
    ) -> MessageOutcome {
        assert!(packets > 0, "empty message");
        let per_packet = SimDuration::from_secs_f64(packet_bytes as f64 / self.rate);
        let mut t = now.max(self.halted_until);
        let mut deadlocks_triggered = 0;
        for i in 0..packets {
            if i > 0 {
                // The route sits open and idle during the gap; the watchdog
                // measures exactly this idleness.
                if gap >= self.config.threshold {
                    // Deadlock detected mid-gap: recovery halts everything,
                    // the message's route is torn down and re-established,
                    // and only then does the next packet flow.
                    let detect_at = t + self.config.threshold;
                    self.halted_until = detect_at + self.config.recovery;
                    self.deadlocks += 1;
                    deadlocks_triggered += 1;
                    t = self.halted_until.max(t + gap);
                } else {
                    t += gap;
                }
            }
            t = t.max(self.halted_until);
            t += per_packet;
            self.bytes_delivered += packet_bytes;
        }
        MessageOutcome { finished: t, deadlocks_triggered }
    }

    /// Total deadlock recoveries so far.
    pub fn deadlocks(&self) -> u64 {
        self.deadlocks
    }

    /// Total bytes delivered.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// True if the fabric is halted (recovering) at `t`.
    pub fn halted_at(&self, t: SimTime) -> bool {
        t < self.halted_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> WormholeFabric {
        // 100 MB/s fabric, 50 ms watchdog, 2 s recovery.
        WormholeFabric::new(100e6, WatchdogConfig::default())
    }

    #[test]
    fn tight_message_never_deadlocks() {
        let mut f = fabric();
        let out = f.send_message(SimTime::ZERO, 100, 100_000, SimDuration::from_micros(10));
        assert_eq!(out.deadlocks_triggered, 0);
        assert_eq!(f.deadlocks(), 0);
        // 10 MB at 100 MB/s plus 99 tiny gaps ≈ 0.1 s.
        assert!(out.finished < SimTime::from_millis(200), "{}", out.finished);
    }

    #[test]
    fn slow_pacing_triggers_recovery_per_gap() {
        let mut f = fabric();
        let out = f.send_message(SimTime::ZERO, 3, 1_000, SimDuration::from_millis(60));
        assert_eq!(out.deadlocks_triggered, 2);
        // Each of the two gaps cost a 2 s recovery.
        assert!(out.finished > SimTime::from_secs(4), "{}", out.finished);
    }

    #[test]
    fn threshold_is_a_cliff() {
        let mut below = fabric();
        let mut above = fabric();
        let b = below.send_message(SimTime::ZERO, 50, 10_000, SimDuration::from_millis(49));
        let a = above.send_message(SimTime::ZERO, 50, 10_000, SimDuration::from_millis(50));
        let slowdown =
            (a.finished - SimTime::ZERO).as_secs_f64() / (b.finished - SimTime::ZERO).as_secs_f64();
        assert!(slowdown > 10.0, "crossing the watchdog must be a cliff: {slowdown}");
    }

    #[test]
    fn recovery_halts_innocent_traffic() {
        let mut f = fabric();
        // A guilty sender deadlocks the fabric...
        f.send_message(SimTime::ZERO, 2, 1_000, SimDuration::from_millis(60));
        assert!(f.halted_at(SimTime::from_millis(100)));
        // ...and an innocent message issued during recovery must wait.
        let out = f.send_message(SimTime::from_millis(100), 1, 1_000, SimDuration::ZERO);
        assert!(out.finished > SimTime::from_secs(2), "{}", out.finished);
        assert_eq!(out.deadlocks_triggered, 0);
    }

    #[test]
    fn bytes_accounting() {
        let mut f = fabric();
        f.send_message(SimTime::ZERO, 10, 500, SimDuration::ZERO);
        assert_eq!(f.bytes_delivered(), 5_000);
    }
}
