//! A global adaptive data transfer over an unfair switch.
//!
//! Paper §2.1.3 (Unfairness): "the nodes behind disfavored links appear
//! 'slower' to a sender, even though they are fully capable of receiving
//! data at link rate. In that work, the unfairness resulted in a 50%
//! slowdown to a global adaptive data transfer."
//!
//! The mechanism is subtle: an *adaptive* sender probes each route with
//! AIMD-style control and backs off where it observes congestion. A
//! priority arbiter starves the disfavoured route, so the controller
//! (correctly!) collapses that route's rate — and when the favoured route
//! finishes, the starved route must ramp back up additively from its
//! floor, wasting capacity the whole time. Work-conserving arbitration
//! with non-adaptive senders would not lose a byte; the combination of
//! unfairness and adaptation does.

use simcore::time::SimDuration;

/// How the shared output port divides its capacity among offered loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortArbitration {
    /// Max-min fair sharing.
    Fair,
    /// Strict priority: route 0 first, then route 1, etc.
    Priority,
}

/// Configuration of the adaptive transfer.
#[derive(Clone, Copy, Debug)]
pub struct TransferConfig {
    /// Number of routes (destinations) the transfer spans.
    pub routes: usize,
    /// Bytes that must be delivered on each route.
    pub bytes_per_route: f64,
    /// Shared port capacity, bytes/second.
    pub capacity: f64,
    /// Controller epoch length.
    pub epoch: SimDuration,
    /// Additive increase per epoch, bytes/second.
    pub increase: f64,
    /// Multiplicative decrease on congestion.
    pub decrease: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            routes: 2,
            bytes_per_route: 1e9,
            capacity: 100e6,
            epoch: SimDuration::from_millis(100),
            increase: 1e6,
            decrease: 0.5,
        }
    }
}

/// Result of one transfer run.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferOutcome {
    /// End-to-end completion time.
    pub elapsed: SimDuration,
    /// Mean goodput over the transfer, bytes/second.
    pub goodput: f64,
    /// When each route finished.
    pub route_finish: Vec<SimDuration>,
}

/// Runs the adaptive transfer to completion (bounded at 10⁶ epochs).
pub fn run_adaptive_transfer(config: &TransferConfig, arb: PortArbitration) -> TransferOutcome {
    assert!(config.routes >= 1, "need at least one route");
    let dt = config.epoch.as_secs_f64();
    let floor = config.increase; // rates never fall below one increment
    let mut rate = vec![floor; config.routes];
    let mut remaining = vec![config.bytes_per_route; config.routes];
    // Per-route port queue: congestion is signalled by standing backlog,
    // which keeps the port busy through AIMD sawteeth (as real buffers do).
    let mut queue = vec![0.0f64; config.routes];
    let queue_threshold = config.capacity * dt; // one epoch of data
    let mut finish = vec![None::<u64>; config.routes];
    // Retransmission-timeout state: a starved route backs off
    // exponentially before probing again (capped at 32 epochs).
    let mut backoff_exp = vec![0u32; config.routes];
    let mut backoff_until = vec![0u64; config.routes];
    let mut epoch = 0u64;

    while remaining.iter().any(|&r| r > 0.0) || queue.iter().any(|&q| q > 0.0) {
        epoch += 1;
        assert!(epoch < 1_000_000, "transfer failed to converge");
        // Enqueue this epoch's offered load (routes in timeout stay quiet).
        for i in 0..config.routes {
            if epoch < backoff_until[i] {
                continue;
            }
            let offer = (rate[i] * dt).min(remaining[i]);
            queue[i] += offer;
            remaining[i] -= offer;
        }
        // Arbitrate the shared port over the queues.
        let budget = config.capacity * dt;
        let served: Vec<f64> = match arb {
            PortArbitration::Fair => max_min_share(&queue, budget),
            PortArbitration::Priority => {
                let mut left = budget;
                queue
                    .iter()
                    .map(|&q| {
                        let s = q.min(left);
                        left -= s;
                        s
                    })
                    .collect()
            }
        };
        // Deliver and adapt.
        for i in 0..config.routes {
            queue[i] -= served[i];
            if remaining[i] <= 0.0 && queue[i] <= 1e-9 && finish[i].is_none() {
                finish[i] = Some(epoch);
            }
            if remaining[i] <= 0.0 && queue[i] <= 1e-9 {
                continue;
            }
            if epoch < backoff_until[i] {
                continue;
            }
            if served[i] <= 1e-9 && queue[i] > 1e-9 {
                // Completely starved: a retransmission timeout. Reset to
                // the floor and back off exponentially before probing.
                rate[i] = floor;
                backoff_exp[i] = (backoff_exp[i] + 1).min(5);
                backoff_until[i] = epoch + (1u64 << backoff_exp[i]);
            } else if queue[i] > queue_threshold {
                // Standing backlog: this route is congested — back off.
                backoff_exp[i] = 0;
                rate[i] = (rate[i] * config.decrease).max(floor);
            } else {
                backoff_exp[i] = 0;
                rate[i] = (rate[i] + config.increase).min(config.capacity);
            }
        }
    }

    let route_finish: Vec<SimDuration> =
        finish.iter().map(|f| config.epoch * f.expect("all routes finished")).collect();
    let elapsed = route_finish.iter().copied().max().expect("non-empty");
    let total = config.bytes_per_route * config.routes as f64;
    TransferOutcome { elapsed, goodput: total / elapsed.as_secs_f64(), route_finish }
}

/// Max-min fair allocation of `budget` among `demands`.
fn max_min_share(demands: &[f64], budget: f64) -> Vec<f64> {
    let mut alloc = vec![0.0; demands.len()];
    let mut left = budget;
    let mut active: Vec<usize> = (0..demands.len()).filter(|&i| demands[i] > 0.0).collect();
    while !active.is_empty() && left > 1e-12 {
        let share = left / active.len() as f64;
        let mut satisfied = Vec::new();
        for &i in &active {
            let want = demands[i] - alloc[i];
            if want <= share {
                alloc[i] = demands[i];
                left -= want;
                satisfied.push(i);
            }
        }
        if satisfied.is_empty() {
            for &i in &active {
                alloc[i] += share;
            }
            left = 0.0;
        } else {
            active.retain(|i| !satisfied.contains(i));
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_min_respects_demands_and_budget() {
        let a = max_min_share(&[10.0, 50.0, 100.0], 90.0);
        assert!((a.iter().sum::<f64>() - 90.0).abs() < 1e-9);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 40.0).abs() < 1e-9);
        assert!((a[2] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_underload_serves_everything() {
        let a = max_min_share(&[10.0, 20.0], 100.0);
        assert_eq!(a, vec![10.0, 20.0]);
    }

    #[test]
    fn fair_arbitration_reaches_near_capacity() {
        let cfg = TransferConfig::default();
        let out = run_adaptive_transfer(&cfg, PortArbitration::Fair);
        // 2 GB at up to 100 MB/s: ideal 20 s; AIMD sawtooth costs some.
        let ideal = 2e9 / 100e6;
        let ratio = out.elapsed.as_secs_f64() / ideal;
        assert!((1.0..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn priority_arbitration_slows_the_adaptive_transfer() {
        // The headline shape: the *same* adaptive transfer is materially
        // slower when the switch arbitrates unfairly — the controller
        // collapses the disfavoured route's rate and pays timeouts plus a
        // cold ramp after the favoured route drains. (The 1999 system
        // measured 50%; our AIMD recovers from starvation faster than its
        // transport did, so the penalty lands lower but on the same
        // mechanism.)
        let cfg = TransferConfig::default();
        let fair = run_adaptive_transfer(&cfg, PortArbitration::Fair);
        let unfair = run_adaptive_transfer(&cfg, PortArbitration::Priority);
        let slowdown = unfair.elapsed.as_secs_f64() / fair.elapsed.as_secs_f64();
        assert!((1.15..2.0).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn disfavoured_route_finishes_last_under_priority() {
        let cfg = TransferConfig::default();
        let out = run_adaptive_transfer(&cfg, PortArbitration::Priority);
        assert!(out.route_finish[1] > out.route_finish[0]);
    }

    #[test]
    fn fair_routes_finish_together() {
        let cfg = TransferConfig::default();
        let out = run_adaptive_transfer(&cfg, PortArbitration::Fair);
        let diff = (out.route_finish[0].as_secs_f64() - out.route_finish[1].as_secs_f64()).abs();
        assert!(diff < 1.0, "finish gap {diff}");
    }

    #[test]
    fn goodput_consistent_with_elapsed() {
        let cfg = TransferConfig::default();
        let out = run_adaptive_transfer(&cfg, PortArbitration::Fair);
        let recomputed = 2e9 / out.elapsed.as_secs_f64();
        assert!((recomputed / out.goodput - 1.0).abs() < 1e-9);
    }
}
