//! Point-to-point links.
//!
//! A [`Link`] is a serialising resource with bandwidth and propagation
//! latency, optionally carrying a fail-stutter timeline (a flaky cable or
//! congested uplink is a performance-faulty component like any other).

use simcore::resource::FcfsServer;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// The outcome of a transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the first bit left the sender.
    pub depart: SimTime,
    /// When the last bit arrived at the receiver.
    pub arrive: SimTime,
}

/// A serialising link with bandwidth, latency, and a stutter timeline.
#[derive(Clone, Debug)]
pub struct Link {
    rate: f64,
    latency: SimDuration,
    profile: SlowdownProfile,
    server: FcfsServer,
    bytes_sent: u64,
}

impl Link {
    /// Creates a link with `rate` bytes/second and propagation `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64, latency: SimDuration) -> Self {
        assert!(rate > 0.0, "link rate must be positive, got {rate}");
        Link {
            rate,
            latency,
            profile: SlowdownProfile::nominal(),
            server: FcfsServer::new(),
            bytes_sent: 0,
        }
    }

    /// Attaches a fail-stutter timeline.
    pub fn with_profile(mut self, profile: SlowdownProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Nominal rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The effective rate at `t` under the stutter timeline.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.rate * self.profile.multiplier_at(t)
    }

    /// Transmits `bytes`, queueing behind earlier transmissions.
    ///
    /// Returns `None` if the link is permanently down at the queue time.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> Option<Delivery> {
        let queue_start = now.max(self.server.next_free());
        let start = self.profile.next_active(queue_start)?;
        let m = self.profile.multiplier_at(start);
        let serialisation = SimDuration::from_secs_f64(bytes as f64 / (self.rate * m));
        self.server.block_until(start);
        let grant = self.server.serve(now, serialisation);
        self.bytes_sent += bytes;
        Some(Delivery { depart: grant.start, arrive: grant.finish + self.latency })
    }

    /// Stalls the link until `t` (e.g. a switch-wide deadlock recovery).
    pub fn block_until(&mut self, t: SimTime) {
        self.server.block_until(t);
    }

    /// The earliest instant a new transmission could begin.
    pub fn next_free(&self) -> SimTime {
        self.server.next_free()
    }

    /// Total payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::Injector;

    #[test]
    fn serialisation_plus_latency() {
        let mut l = Link::new(1e6, SimDuration::from_millis(1));
        let d = l.send(SimTime::ZERO, 1_000_000).expect("up");
        assert_eq!(d.depart, SimTime::ZERO);
        assert_eq!(d.arrive, SimTime::from_secs(1) + SimDuration::from_millis(1));
    }

    #[test]
    fn back_to_back_sends_queue() {
        let mut l = Link::new(1e6, SimDuration::ZERO);
        let a = l.send(SimTime::ZERO, 500_000).expect("up");
        let b = l.send(SimTime::ZERO, 500_000).expect("up");
        assert_eq!(a.arrive, SimTime::from_millis(500));
        assert_eq!(b.depart, SimTime::from_millis(500));
        assert_eq!(b.arrive, SimTime::from_secs(1));
        assert_eq!(l.bytes_sent(), 1_000_000);
    }

    #[test]
    fn slow_profile_stretches_serialisation() {
        let profile = Injector::StaticSlowdown { factor: 0.5 }
            .timeline(SimDuration::from_secs(100), &mut Stream::from_seed(1));
        let mut l = Link::new(1e6, SimDuration::ZERO).with_profile(profile);
        let d = l.send(SimTime::ZERO, 1_000_000).expect("up");
        assert_eq!(d.arrive, SimTime::from_secs(2));
        assert_eq!(l.rate_at(SimTime::ZERO), 0.5e6);
    }

    #[test]
    fn dead_link_returns_none() {
        let profile = SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(1));
        let mut l = Link::new(1e6, SimDuration::ZERO).with_profile(profile);
        assert!(l.send(SimTime::ZERO, 100).is_some());
        assert!(l.send(SimTime::from_secs(2), 100).is_none());
    }
}
