//! Multicast under stutter: atomic delivery vs Birman's bimodal approach.
//!
//! Paper §4: "Birman's recent work on Bimodal Multicast also addresses the
//! issue of nodes that 'stutter' in the context of multicast-based
//! applications. Birman's solution is to change the semantics of multicast
//! from absolute delivery requirements to probabilistic ones, and thus
//! gracefully degrade when nodes begin to perform poorly."
//!
//! Fluid model of a process group: each member applies messages at a
//! (possibly stuttering) rate.
//!
//! * **Atomic** multicast delivers a message only when *every* member has
//!   applied it, so the group's delivery rate is the minimum member rate —
//!   one stutterer stalls the group.
//! * **Bimodal** multicast delivers at the healthy majority's pace and
//!   lets lagging members repair via background gossip; the cost is a
//!   transient *delivery gap* at the laggards, not group throughput.

use simcore::stats::Series;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// Multicast semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McastProtocol {
    /// Deliver when all members have applied (virtual synchrony).
    Atomic,
    /// Deliver at the majority's pace; laggards gossip-repair.
    Bimodal,
}

/// One group member.
#[derive(Clone, Debug)]
pub struct Member {
    rate: f64,
    profile: SlowdownProfile,
}

impl Member {
    /// A member applying `rate` messages/second when healthy.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Member { rate, profile: SlowdownProfile::nominal() }
    }

    /// Attaches a stutter timeline.
    pub fn with_profile(mut self, profile: SlowdownProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Effective apply rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.rate * self.profile.multiplier_at(t)
    }
}

/// Configuration of a multicast run.
#[derive(Clone, Copy, Debug)]
pub struct McastConfig {
    /// Offered message rate from the sender, messages/second.
    pub offered_rate: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Time step.
    pub dt: SimDuration,
}

impl Default for McastConfig {
    fn default() -> Self {
        McastConfig {
            offered_rate: 900.0,
            duration: SimDuration::from_secs(120),
            dt: SimDuration::from_millis(10),
        }
    }
}

/// The outcome of a multicast run.
#[derive(Clone, Debug)]
pub struct McastOutcome {
    /// Group delivery rate over time (messages/second).
    pub delivery_rate: Series,
    /// Mean group delivery rate.
    pub mean_delivery: f64,
    /// Largest lag (messages) any member accumulated behind the group.
    pub peak_lag: f64,
    /// Lag remaining at the end of the run.
    pub final_lag: f64,
}

/// Runs the group under the chosen protocol.
pub fn run_multicast(
    members: &[Member],
    config: McastConfig,
    protocol: McastProtocol,
) -> McastOutcome {
    assert!(members.len() >= 2, "a group needs at least two members");
    let dt = config.dt.as_secs_f64();
    let steps = (config.duration.as_secs_f64() / dt).round() as u64;
    let sample_every = (steps / 600).max(1);

    // Messages the group has delivered, and each member's applied count.
    let mut group_delivered = 0.0f64;
    let mut applied = vec![0.0f64; members.len()];
    let mut peak_lag = 0.0f64;
    let mut series = Series::new();
    let mut last_sample = (SimTime::ZERO, 0.0f64);
    let mut t = SimTime::ZERO;
    let mut offered = 0.0f64;

    for step in 0..steps {
        t += config.dt;
        offered += config.offered_rate * dt;
        // Each member applies at its own pace, bounded by what exists.
        for (i, m) in members.iter().enumerate() {
            let capacity = m.rate_at(t) * dt;
            applied[i] = (applied[i] + capacity).min(offered);
        }
        let min_applied = applied.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
        let new_group = match protocol {
            McastProtocol::Atomic => min_applied,
            McastProtocol::Bimodal => {
                // Deliver at the majority's pace: the median applied count.
                let mut sorted = applied.clone();
                sorted.sort_by(f64::total_cmp);
                sorted[sorted.len() / 2]
            }
        };
        group_delivered = group_delivered.max(new_group);
        let lag = group_delivered - min_applied;
        peak_lag = peak_lag.max(lag);
        if step % sample_every == 0 && t > last_sample.0 {
            let rate = (group_delivered - last_sample.1) / (t - last_sample.0).as_secs_f64();
            series.push(t, rate);
            last_sample = (t, group_delivered);
        }
    }

    let min_applied = applied.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
    McastOutcome {
        mean_delivery: group_delivered / config.duration.as_secs_f64(),
        peak_lag,
        final_lag: group_delivered - min_applied,
        delivery_rate: series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::{DurationDist, Injector};

    fn group_with_stutterer(n: usize, seed: u64) -> Vec<Member> {
        let gc = Injector::Blackouts {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(10) },
            duration: DurationDist::Const(SimDuration::from_secs(2)),
        };
        let mut members: Vec<Member> = (0..n).map(|_| Member::new(1_000.0)).collect();
        members[1] = Member::new(1_000.0)
            .with_profile(gc.timeline(SimDuration::from_secs(240), &mut Stream::from_seed(seed)));
        members
    }

    #[test]
    fn healthy_group_delivers_offered_rate_both_ways() {
        let members: Vec<Member> = (0..8).map(|_| Member::new(1_000.0)).collect();
        for p in [McastProtocol::Atomic, McastProtocol::Bimodal] {
            let out = run_multicast(&members, McastConfig::default(), p);
            assert!((out.mean_delivery / 900.0 - 1.0).abs() < 0.02, "{p:?}: {}", out.mean_delivery);
            assert!(out.peak_lag < 50.0, "{p:?}: lag {}", out.peak_lag);
        }
    }

    #[test]
    fn atomic_multicast_stalls_with_the_stutterer() {
        let members = group_with_stutterer(8, 1);
        let out = run_multicast(&members, McastConfig::default(), McastProtocol::Atomic);
        // Repeated 2 s pauses leave the laggard's applied total short of
        // the offered stream → delivery drops below offered.
        assert!(out.mean_delivery < 850.0, "{}", out.mean_delivery);
        // And the delivery-rate series shows stalls.
        assert!(out.delivery_rate.min() < 500.0, "{}", out.delivery_rate.min());
    }

    #[test]
    fn bimodal_multicast_degrades_gracefully() {
        // One member pauses for 5 s mid-run and then recovers.
        let pause = SlowdownProfile::from_breakpoints(vec![
            (SimTime::ZERO, 1.0),
            (SimTime::from_secs(30), 0.0),
            (SimTime::from_secs(35), 1.0),
        ]);
        let mut members: Vec<Member> = (0..8).map(|_| Member::new(1_000.0)).collect();
        members[1] = Member::new(1_000.0).with_profile(pause);
        let out = run_multicast(&members, McastConfig::default(), McastProtocol::Bimodal);
        assert!((out.mean_delivery / 900.0 - 1.0).abs() < 0.02, "{}", out.mean_delivery);
        // The pausing member lags ~4500 messages during the pause...
        assert!(out.peak_lag > 4_000.0, "peak lag {}", out.peak_lag);
        // ...and gossip-repairs to parity before the run ends.
        assert!(out.final_lag < 100.0, "final lag {}", out.final_lag);
    }

    #[test]
    fn bimodal_beats_atomic_under_persistent_stutter() {
        // A member at half speed forever: atomic tracks it, bimodal does
        // not — "gracefully degrade when nodes begin to perform poorly."
        let slow = Injector::StaticSlowdown { factor: 0.5 }
            .timeline(SimDuration::from_secs(240), &mut Stream::from_seed(3));
        let mut members: Vec<Member> = (0..12).map(|_| Member::new(1_000.0)).collect();
        members[4] = Member::new(1_000.0).with_profile(slow);
        let atomic = run_multicast(&members, McastConfig::default(), McastProtocol::Atomic);
        let bimodal = run_multicast(&members, McastConfig::default(), McastProtocol::Bimodal);
        assert!((atomic.mean_delivery / 500.0 - 1.0).abs() < 0.05, "{}", atomic.mean_delivery);
        assert!((bimodal.mean_delivery / 900.0 - 1.0).abs() < 0.02, "{}", bimodal.mean_delivery);
    }

    #[test]
    fn permanently_failed_member_blocks_atomic_forever() {
        let mut members: Vec<Member> = (0..4).map(|_| Member::new(1_000.0)).collect();
        members[2] = Member::new(1_000.0)
            .with_profile(SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(10)));
        let atomic = run_multicast(&members, McastConfig::default(), McastProtocol::Atomic);
        let bimodal = run_multicast(&members, McastConfig::default(), McastProtocol::Bimodal);
        // Atomic delivery freezes at the failure point: ~10 s of 120 s.
        assert!(atomic.mean_delivery < 100.0, "{}", atomic.mean_delivery);
        // Bimodal keeps the living majority going; the dead member's gap
        // grows without bound.
        assert!((bimodal.mean_delivery / 900.0 - 1.0).abs() < 0.02);
        assert!(bimodal.final_lag > 90_000.0);
    }
}
