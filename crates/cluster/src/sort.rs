//! A parallel external sort in the NOW-Sort mould.
//!
//! Paper §2.2.2 (CPU Hogs), quoting the NOW-Sort experience: "The
//! performance of NOW-Sort is quite sensitive to various disturbances and
//! requires a dedicated system to achieve 'peak' results. A node with
//! excess CPU load reduces global sorting performance by a factor of two."
//!
//! [`run_sort`] models the classic one-pass parallel sort: a read/partition
//! phase (disk-bound), an in-memory sort phase (CPU-bound) and a write
//! phase (disk-bound), with a global barrier between phases — every node
//! holds the keys destined for it, so nobody can proceed until everybody
//! is done. Under [`Placement::Static`], records are split evenly; under
//! [`Placement::Adaptive`], record counts are proportional to measured node
//! speed (the fail-stutter-tolerant variant).

use simcore::time::{SimDuration, SimTime};

use crate::node::Node;

/// How records are apportioned across nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Equal shares — assumes identical nodes (fail-stop thinking).
    Static,
    /// Shares proportional to each node's measured end-to-end rate at
    /// sort-start (one level of fail-stutter awareness).
    Adaptive,
}

/// A sort workload.
#[derive(Clone, Copy, Debug)]
pub struct SortJob {
    /// Total records to sort.
    pub records: u64,
    /// Record size in bytes.
    pub record_bytes: u64,
}

impl SortJob {
    /// The canonical one-pass benchmark input: N million 100-byte records.
    pub fn minute_sort(records: u64) -> Self {
        SortJob { records, record_bytes: 100 }
    }
}

/// Per-phase and total timing of a sort run.
#[derive(Clone, Debug, PartialEq)]
pub struct SortOutcome {
    /// Read + partition phase (disk-bound).
    pub read_phase: SimDuration,
    /// In-memory sort phase (CPU-bound).
    pub sort_phase: SimDuration,
    /// Write phase (disk-bound).
    pub write_phase: SimDuration,
    /// End-to-end time.
    pub total: SimDuration,
    /// Records assigned to each node.
    pub per_node: Vec<u64>,
}

/// Runs the sort over `nodes` starting at `start`.
///
/// Phase time for a node integrates its (possibly stuttering) rate, and
/// every phase ends at the *slowest* node's finish — the barrier that makes
/// parallel sorts so sensitive to one perturbed machine.
pub fn run_sort(nodes: &[Node], job: SortJob, placement: Placement, start: SimTime) -> SortOutcome {
    assert!(!nodes.is_empty(), "need at least one node");
    let n = nodes.len() as u64;

    let per_node: Vec<u64> = match placement {
        Placement::Static => (0..nodes.len())
            .map(|i| job.records / n + u64::from((i as u64) < job.records % n))
            .collect(),
        Placement::Adaptive => {
            // Gauge each node's end-to-end records/second at sort start:
            // the harmonic composition of disk (2 passes) and CPU (1 pass).
            let speeds: Vec<f64> = nodes
                .iter()
                .map(|node| {
                    let disk = node.disk_rate_at(start) / job.record_bytes as f64;
                    let cpu = node.cpu_rate_at(start);
                    if disk <= 0.0 || cpu <= 0.0 {
                        0.0
                    } else {
                        1.0 / (2.0 / disk + 1.0 / cpu)
                    }
                })
                .collect();
            apportion(job.records, &speeds)
        }
    };
    run_phases(nodes, job, per_node, start)
}

/// Runs the sort with record shares proportional to externally supplied
/// `weights` — straggler-aware placement fed by a performance-state plane.
///
/// Where [`Placement::Adaptive`] gauges each node locally at sort start
/// (which a real coordinator often cannot do), this variant plans from
/// whatever a [gossiped view](https://en.wikipedia.org/wiki/Gossip_protocol)
/// of node speed says: one weight per node, typically
/// `StalenessView::estimated_rate` with the node's nominal rate as the
/// fallback for `Unknown`. A node weighted 0.0 (believed failed) gets no
/// records. Weights must be non-negative with a positive sum.
pub fn run_sort_informed(
    nodes: &[Node],
    job: SortJob,
    weights: &[f64],
    start: SimTime,
) -> SortOutcome {
    assert!(!nodes.is_empty(), "need at least one node");
    assert_eq!(nodes.len(), weights.len(), "one weight per node");
    assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0), "weights must be non-negative");
    let per_node = apportion(job.records, weights);
    run_phases(nodes, job, per_node, start)
}

/// The three barrier-separated phases over a fixed record assignment.
fn run_phases(nodes: &[Node], job: SortJob, per_node: Vec<u64>, start: SimTime) -> SortOutcome {
    let horizon = SimDuration::from_secs(1 << 20);

    // Phase 1: read + partition (disk).
    let mut t_read = SimDuration::ZERO;
    for (node, &recs) in nodes.iter().zip(&per_node) {
        if recs == 0 {
            continue;
        }
        let bytes = (recs * job.record_bytes) as f64;
        let dt = node.disk_rate_profile(horizon).time_to_transfer(start, bytes).unwrap_or(horizon);
        t_read = t_read.max(dt);
    }
    let after_read = start + t_read;

    // Phase 2: sort (CPU).
    let mut t_sort = SimDuration::ZERO;
    for (node, &recs) in nodes.iter().zip(&per_node) {
        if recs == 0 {
            continue;
        }
        let dt = node
            .cpu_rate_profile(horizon)
            .time_to_transfer(after_read, recs as f64)
            .unwrap_or(horizon);
        t_sort = t_sort.max(dt);
    }
    let after_sort = after_read + t_sort;

    // Phase 3: write (disk).
    let mut t_write = SimDuration::ZERO;
    for (node, &recs) in nodes.iter().zip(&per_node) {
        if recs == 0 {
            continue;
        }
        let bytes = (recs * job.record_bytes) as f64;
        let dt =
            node.disk_rate_profile(horizon).time_to_transfer(after_sort, bytes).unwrap_or(horizon);
        t_write = t_write.max(dt);
    }

    SortOutcome {
        read_phase: t_read,
        sort_phase: t_sort,
        write_phase: t_write,
        total: t_read + t_sort + t_write,
        per_node,
    }
}

/// Largest-remainder apportionment of `total` items by `weights`.
fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "no usable nodes");
    let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut out: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    let mut left = total - out.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let fi = quotas[i] - quotas[i].floor();
        let fj = quotas[j] - quotas[j].floor();
        fj.total_cmp(&fi)
    });
    for &i in &order {
        if left == 0 {
            break;
        }
        out[i] += 1;
        left -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::Injector;

    /// Eight nodes: 1 M records/s CPU, 10 MB/s disk.
    fn cluster() -> Vec<Node> {
        (0..8).map(|_| Node::new(1e6, 10e6)).collect()
    }

    fn job() -> SortJob {
        SortJob::minute_sort(8_000_000) // 0.8 GB across 8 nodes
    }

    #[test]
    fn dedicated_cluster_balances_perfectly() {
        let out = run_sort(&cluster(), job(), Placement::Static, SimTime::ZERO);
        // Per node: 1 M records = 100 MB → read 10 s, sort 1 s, write 10 s.
        assert_eq!(out.read_phase, SimDuration::from_secs(10));
        assert_eq!(out.sort_phase, SimDuration::from_secs(1));
        assert_eq!(out.write_phase, SimDuration::from_secs(10));
        assert_eq!(out.total, SimDuration::from_secs(21));
    }

    #[test]
    fn cpu_hog_on_one_node_halves_global_performance() {
        // The NOW-Sort observation: one node at 50% CPU... the sort phase
        // doubles; with a disk hog too, the whole pipeline doubles.
        let hog = Injector::StaticSlowdown { factor: 0.5 };
        let mut nodes = cluster();
        let profile = hog.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
        nodes[3] =
            Node::new(1e6, 10e6).with_cpu_profile(profile.clone()).with_disk_profile(profile);
        let clean = run_sort(&cluster(), job(), Placement::Static, SimTime::ZERO);
        let dirty = run_sort(&nodes, job(), Placement::Static, SimTime::ZERO);
        let slowdown = dirty.total.as_secs_f64() / clean.total.as_secs_f64();
        assert!((slowdown - 2.0).abs() < 0.05, "slowdown {slowdown}");
    }

    #[test]
    fn adaptive_placement_absorbs_the_hog() {
        let hog = Injector::StaticSlowdown { factor: 0.5 };
        let mut nodes = cluster();
        let profile = hog.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
        nodes[3] =
            Node::new(1e6, 10e6).with_cpu_profile(profile.clone()).with_disk_profile(profile);
        let static_out = run_sort(&nodes, job(), Placement::Static, SimTime::ZERO);
        let adaptive_out = run_sort(&nodes, job(), Placement::Adaptive, SimTime::ZERO);
        assert!(
            adaptive_out.total.as_secs_f64() < 0.6 * static_out.total.as_secs_f64(),
            "adaptive {} vs static {}",
            adaptive_out.total,
            static_out.total
        );
        // The hogged node received roughly half the records of the others.
        let hogged = adaptive_out.per_node[3] as f64;
        let healthy = adaptive_out.per_node[0] as f64;
        assert!((hogged / healthy - 0.5).abs() < 0.05, "{hogged} vs {healthy}");
    }

    #[test]
    fn informed_placement_matches_adaptive_when_weights_are_true_rates() {
        let hog = Injector::StaticSlowdown { factor: 0.5 };
        let mut nodes = cluster();
        let profile = hog.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
        nodes[3] =
            Node::new(1e6, 10e6).with_cpu_profile(profile.clone()).with_disk_profile(profile);
        let adaptive = run_sort(&nodes, job(), Placement::Adaptive, SimTime::ZERO);
        // A plane that learned the truth: same harmonic speeds as gauging.
        let weights: Vec<f64> = nodes
            .iter()
            .map(|n| {
                let disk = n.disk_rate_at(SimTime::ZERO) / 100.0;
                let cpu = n.cpu_rate_at(SimTime::ZERO);
                1.0 / (2.0 / disk + 1.0 / cpu)
            })
            .collect();
        let informed = run_sort_informed(&nodes, job(), &weights, SimTime::ZERO);
        assert_eq!(informed.per_node, adaptive.per_node);
        assert_eq!(informed.total, adaptive.total);
    }

    #[test]
    fn informed_placement_with_uniform_weights_is_static() {
        let mut nodes = cluster();
        let hog = Injector::StaticSlowdown { factor: 0.5 };
        let profile = hog.timeline(SimDuration::from_secs(3600), &mut Stream::from_seed(1));
        nodes[3] = Node::new(1e6, 10e6).with_disk_profile(profile);
        let stat = run_sort(&nodes, job(), Placement::Static, SimTime::ZERO);
        let uninformed = run_sort_informed(&nodes, job(), &[1.0; 8], SimTime::ZERO);
        assert_eq!(uninformed.total, stat.total, "a know-nothing plane buys nothing");
    }

    #[test]
    fn informed_placement_routes_around_a_believed_failure() {
        let nodes = cluster();
        let mut weights = vec![1.0; 8];
        weights[5] = 0.0; // the plane holds a tombstone for node 5
        let out = run_sort_informed(&nodes, job(), &weights, SimTime::ZERO);
        assert_eq!(out.per_node[5], 0);
        assert_eq!(out.per_node.iter().sum::<u64>(), job().records);
    }

    #[test]
    fn records_are_conserved() {
        for placement in [Placement::Static, Placement::Adaptive] {
            let out =
                run_sort(&cluster(), SortJob::minute_sort(1_000_003), placement, SimTime::ZERO);
            assert_eq!(out.per_node.iter().sum::<u64>(), 1_000_003, "{placement:?}");
        }
    }

    #[test]
    fn single_node_sort_works() {
        let nodes = vec![Node::new(1e6, 10e6)];
        let out =
            run_sort(&nodes, SortJob::minute_sort(1_000_000), Placement::Static, SimTime::ZERO);
        assert_eq!(out.total, SimDuration::from_secs(21));
    }
}
