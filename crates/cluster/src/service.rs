//! A partitioned network service: harvest vs yield under stutter.
//!
//! The paper's introduction names search engines among the systems built
//! on parallel-performance assumptions (Fox et al.'s cluster-based
//! scalable network services — Inktomi). A query fans out to every index
//! partition and, naively, completes when the *slowest* partition answers
//! — so one stuttering worker inflates every query's tail latency.
//!
//! The fail-stutter-tolerant design is Fox et al.'s harvest/yield
//! trade-off: answer by a deadline with whatever partitions have
//! responded. Yield (queries answered acceptably) stays high; harvest
//! (fraction of the index consulted) degrades only while the stutter
//! lasts.

use simcore::resource::FcfsServer;
use simcore::stats::Histogram;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// One index partition server.
#[derive(Clone, Debug)]
pub struct Partition {
    rate: f64,
    profile: SlowdownProfile,
    server: FcfsServer,
}

impl Partition {
    /// A partition serving `rate` queries/second when healthy.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Partition { rate, profile: SlowdownProfile::nominal(), server: FcfsServer::new() }
    }

    /// Attaches a stutter timeline.
    pub fn with_profile(mut self, profile: SlowdownProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Serves one query arriving at `now`; returns the completion time, or
    /// `None` if the partition has fail-stopped.
    fn serve(&mut self, now: SimTime) -> Option<SimTime> {
        let queue_start = now.max(self.server.next_free());
        let start = self.profile.next_active(queue_start)?;
        let m = self.profile.multiplier_at(start);
        let service = SimDuration::from_secs_f64(1.0 / (self.rate * m));
        self.server.block_until(start);
        Some(self.server.serve(now, service).finish)
    }
}

/// Response policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ResponsePolicy {
    /// Wait for every partition (full harvest, unbounded tail).
    Full,
    /// Answer at the deadline with the partitions that made it.
    PartialHarvest {
        /// Per-query response deadline.
        deadline: SimDuration,
    },
}

/// Aggregate metrics of a service run.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Latency distribution (milliseconds).
    pub latency_ms: Histogram,
    /// Mean harvest: fraction of partitions included per response.
    pub mean_harvest: f64,
    /// Yield: fraction of queries answered within `acceptable`.
    pub yield_fraction: f64,
}

/// Runs `queries` queries arriving every `interarrival` against the
/// partitions, with acceptability threshold `acceptable`.
pub fn run_service(
    partitions: &mut [Partition],
    queries: u64,
    interarrival: SimDuration,
    policy: ResponsePolicy,
    acceptable: SimDuration,
) -> ServiceOutcome {
    assert!(!partitions.is_empty(), "a service needs partitions");
    assert!(queries > 0, "no queries offered");
    let n = partitions.len() as f64;
    let mut latency_ms = Histogram::new();
    let mut harvest_sum = 0.0;
    let mut acceptable_count = 0u64;
    let mut t = SimTime::ZERO;

    for _ in 0..queries {
        t += interarrival;
        let mut answered = 0u64;
        let mut slowest = t;
        let mut slowest_within_deadline = t;
        let deadline = match policy {
            ResponsePolicy::Full => None,
            ResponsePolicy::PartialHarvest { deadline } => Some(t + deadline),
        };
        for p in partitions.iter_mut() {
            match p.serve(t) {
                Some(done) => match deadline {
                    Some(d) if done > d => {
                        // Response misses the cut: excluded from harvest.
                    }
                    _ => {
                        answered += 1;
                        slowest = slowest.max(done);
                        slowest_within_deadline = slowest_within_deadline.max(done);
                    }
                },
                None => {
                    // Fail-stopped partition: under Full the query can
                    // never be complete; treat as an unbounded straggler.
                    if deadline.is_none() {
                        slowest = SimTime::MAX;
                    }
                }
            }
        }
        let (latency, harvest) = match policy {
            ResponsePolicy::Full => {
                let lat = if slowest == SimTime::MAX {
                    // Never completes: record a 100 s timeout disaster.
                    SimDuration::from_secs(100)
                } else {
                    slowest - t
                };
                (lat, 1.0)
            }
            ResponsePolicy::PartialHarvest { deadline } => {
                let lat = (slowest_within_deadline - t).min(deadline);
                (lat, answered as f64 / n)
            }
        };
        latency_ms.record(latency.as_secs_f64() * 1e3);
        harvest_sum += harvest;
        if latency <= acceptable {
            acceptable_count += 1;
        }
    }

    ServiceOutcome {
        latency_ms,
        mean_harvest: harvest_sum / queries as f64,
        yield_fraction: acceptable_count as f64 / queries as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::{DurationDist, Injector};

    const ACCEPTABLE: SimDuration = SimDuration::from_millis(200);

    fn healthy(n: usize) -> Vec<Partition> {
        (0..n).map(|_| Partition::new(100.0)).collect()
    }

    fn with_stutterer(n: usize, seed: u64) -> Vec<Partition> {
        let gc = Injector::Episodes {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(10) },
            duration: DurationDist::Const(SimDuration::from_secs(2)),
            factor: 0.02,
        };
        let mut parts = healthy(n);
        parts[3] = Partition::new(100.0)
            .with_profile(gc.timeline(SimDuration::from_secs(600), &mut Stream::from_seed(seed)));
        parts
    }

    #[test]
    fn healthy_service_fast_and_complete() {
        for policy in [
            ResponsePolicy::Full,
            ResponsePolicy::PartialHarvest { deadline: SimDuration::from_millis(100) },
        ] {
            let mut parts = healthy(8);
            let out =
                run_service(&mut parts, 2_000, SimDuration::from_millis(20), policy, ACCEPTABLE);
            assert_eq!(out.yield_fraction, 1.0, "{policy:?}");
            assert!((out.mean_harvest - 1.0).abs() < 1e-9, "{policy:?}");
            assert!(out.latency_ms.quantile(0.99) < 50.0, "{policy:?}");
        }
    }

    #[test]
    fn full_policy_tail_tracks_the_stutterer() {
        let mut parts = with_stutterer(8, 1);
        let out = run_service(
            &mut parts,
            5_000,
            SimDuration::from_millis(20),
            ResponsePolicy::Full,
            ACCEPTABLE,
        );
        // Episodes at 2% speed stretch a 10 ms query to ~500 ms and queue
        // behind each other: the tail explodes and yield collapses.
        assert!(out.latency_ms.quantile(0.99) > 400.0, "p99 {}", out.latency_ms.quantile(0.99));
        assert!(out.yield_fraction < 0.9, "yield {}", out.yield_fraction);
        assert!((out.mean_harvest - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_harvest_trades_completeness_for_yield() {
        let mut parts = with_stutterer(8, 1);
        let out = run_service(
            &mut parts,
            5_000,
            SimDuration::from_millis(20),
            ResponsePolicy::PartialHarvest { deadline: SimDuration::from_millis(100) },
            ACCEPTABLE,
        );
        assert_eq!(out.yield_fraction, 1.0, "every query answered on time");
        // Harvest dips only during the episodes: one of eight partitions,
        // a fraction of the time.
        assert!(out.mean_harvest > 0.9, "harvest {}", out.mean_harvest);
        assert!(out.mean_harvest < 1.0, "harvest must show the stutter");
    }

    #[test]
    fn failed_partition_kills_full_but_not_partial() {
        let mut parts = healthy(4);
        parts[2] = Partition::new(100.0)
            .with_profile(SlowdownProfile::nominal().with_failure_at(SimTime::from_secs(1)));
        let mut full_parts = parts.clone();
        let full = run_service(
            &mut full_parts,
            500,
            SimDuration::from_millis(20),
            ResponsePolicy::Full,
            ACCEPTABLE,
        );
        assert!(full.yield_fraction < 0.2, "{}", full.yield_fraction);

        let partial = run_service(
            &mut parts,
            500,
            SimDuration::from_millis(20),
            ResponsePolicy::PartialHarvest { deadline: SimDuration::from_millis(100) },
            ACCEPTABLE,
        );
        assert_eq!(partial.yield_fraction, 1.0);
        // Harvest settles at 3/4 once the partition dies.
        assert!(partial.mean_harvest < 0.85, "{}", partial.mean_harvest);
        assert!(partial.mean_harvest > 0.70, "{}", partial.mean_harvest);
    }
}
