//! # cluster — cluster nodes and parallel workloads
//!
//! The application-level workloads whose sensitivity to one slow component
//! motivates *"Fail-Stutter Fault Tolerance"*:
//!
//! * [`node`] — cluster nodes with CPU and disk rates under fail-stutter
//!   timelines.
//! * [`sort`] — a NOW-Sort-style barrier-synchronised parallel sort: one
//!   CPU-hogged node halves global performance; adaptive record placement
//!   absorbs it.
//! * [`dds`] — a replicated hash table whose garbage-collecting replica
//!   stalls mirrored updates and then over-saturates (the Gribble et al.
//!   observation).
//!
//! # Examples
//!
//! ```
//! use cluster::prelude::*;
//! use simcore::prelude::*;
//!
//! let nodes: Vec<Node> = (0..4).map(|_| Node::new(1e6, 10e6)).collect();
//! let out = run_sort(&nodes, SortJob::minute_sort(4_000_000), Placement::Static, SimTime::ZERO);
//! assert_eq!(out.total, SimDuration::from_secs(21));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dds;
pub mod node;
pub mod service;
pub mod sort;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dds::{run_dds, Brick, DdsConfig, DdsOutcome};
    pub use crate::node::Node;
    pub use crate::service::{run_service, Partition, ResponsePolicy, ServiceOutcome};
    pub use crate::sort::{run_sort, run_sort_informed, Placement, SortJob, SortOutcome};
}
