//! A replicated in-memory hash table — the DDS garbage-collection stutter.
//!
//! Paper §2.2.1 (Background Operations), citing Gribble et al.: "untimely
//! garbage collection causes one node to fall behind its mirror in a
//! replicated update. The result is that one machine over-saturates and
//! thus is the bottleneck."
//!
//! [`run_dds`] time-steps a cluster of *bricks* grouped into mirror pairs.
//! Every write goes to both replicas of its pair and is acknowledged when
//! the slower replica applies it. A replica under GC applies nothing; its
//! partner keeps applying but the pair's acknowledged throughput stalls,
//! queues grow on the GC'd node, and after the pause it over-saturates
//! draining the backlog.

use simcore::stats::Series;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// One storage brick: an apply-rate source with a stutter timeline.
#[derive(Clone, Debug)]
pub struct Brick {
    rate: f64,
    profile: SlowdownProfile,
}

impl Brick {
    /// Creates a brick applying `rate` operations/second when healthy.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Brick { rate, profile: SlowdownProfile::nominal() }
    }

    /// Attaches a stutter timeline (e.g. GC pauses).
    pub fn with_profile(mut self, profile: SlowdownProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Effective apply rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.rate * self.profile.multiplier_at(t)
    }
}

/// Configuration of the replicated hash-table run.
#[derive(Clone, Copy, Debug)]
pub struct DdsConfig {
    /// Offered write load in operations/second (spread evenly over pairs).
    pub offered_load: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Time step.
    pub dt: SimDuration,
}

impl Default for DdsConfig {
    fn default() -> Self {
        DdsConfig {
            offered_load: 8_000.0,
            duration: SimDuration::from_secs(60),
            dt: SimDuration::from_millis(10),
        }
    }
}

/// Result of a DDS run.
#[derive(Clone, Debug)]
pub struct DdsOutcome {
    /// Acknowledged operations per second, sampled over time.
    pub throughput: Series,
    /// Maximum backlog (unacknowledged operations) on any replica.
    pub peak_backlog: f64,
    /// Total acknowledged operations.
    pub acked: f64,
    /// Mean acknowledged throughput over the run.
    pub mean_throughput: f64,
}

/// Runs the replicated hash table over mirror pairs of bricks.
///
/// # Panics
///
/// Panics if `bricks` is empty or odd-sized (bricks mirror in pairs).
pub fn run_dds(bricks: &[Brick], config: DdsConfig) -> DdsOutcome {
    assert!(!bricks.is_empty() && bricks.len().is_multiple_of(2), "bricks must form pairs");
    let pairs = bricks.len() / 2;
    let dt = config.dt.as_secs_f64();
    let per_pair_load = config.offered_load / pairs as f64;

    // Per-replica backlog of writes accepted but not yet applied.
    let mut backlog = vec![0.0f64; bricks.len()];
    // Per-pair count of operations applied by each replica (monotone).
    let mut applied = vec![0.0f64; bricks.len()];
    // A pair's acknowledged ops = min(applied a, applied b).
    let mut acked_so_far = 0.0f64;
    let mut throughput = Series::new();
    let mut peak_backlog = 0.0f64;

    let steps = (config.duration.as_secs_f64() / dt).round() as u64;
    let mut t = SimTime::ZERO;
    // Sample throughput every ~100 steps.
    let sample_every = (steps / 600).max(1);
    let mut last_sample_acked = 0.0;
    let mut last_sample_t = SimTime::ZERO;

    for step in 0..steps {
        t += config.dt;
        for p in 0..pairs {
            let (a, b) = (2 * p, 2 * p + 1);
            let incoming = per_pair_load * dt;
            backlog[a] += incoming;
            backlog[b] += incoming;
            for &r in &[a, b] {
                let capacity = bricks[r].rate_at(t) * dt;
                let done = capacity.min(backlog[r]);
                backlog[r] -= done;
                applied[r] += done;
                peak_backlog = peak_backlog.max(backlog[r]);
            }
        }
        let acked: f64 = (0..pairs).map(|p| applied[2 * p].min(applied[2 * p + 1])).sum();
        acked_so_far = acked;
        if step % sample_every == 0 && t > last_sample_t {
            let rate = (acked - last_sample_acked) / (t - last_sample_t).as_secs_f64();
            throughput.push(t, rate);
            last_sample_acked = acked;
            last_sample_t = t;
        }
    }

    let mean_throughput = acked_so_far / config.duration.as_secs_f64();
    DdsOutcome { throughput, peak_backlog, acked: acked_so_far, mean_throughput }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::{DurationDist, Injector};

    /// Four pairs of 2 kop/s bricks.
    fn healthy_bricks() -> Vec<Brick> {
        (0..8).map(|_| Brick::new(2_000.0)).collect()
    }

    fn gc_profile(seed: u64) -> SlowdownProfile {
        // A 2-second full GC pause every ~10 s.
        Injector::Blackouts {
            interarrival: DurationDist::Exp { mean: SimDuration::from_secs(10) },
            duration: DurationDist::Const(SimDuration::from_secs(2)),
        }
        .timeline(SimDuration::from_secs(120), &mut Stream::from_seed(seed))
    }

    #[test]
    fn healthy_table_carries_offered_load() {
        let out = run_dds(&healthy_bricks(), DdsConfig::default());
        // Offered 8 kop/s over 8 kop/s aggregate pair capacity.
        assert!((out.mean_throughput / 8_000.0 - 1.0).abs() < 0.02, "{}", out.mean_throughput);
        assert!(out.peak_backlog < 100.0, "backlog {}", out.peak_backlog);
    }

    #[test]
    fn gc_pauses_stall_acknowledgements_and_grow_backlog() {
        let mut bricks = healthy_bricks();
        bricks[2] = Brick::new(2_000.0).with_profile(gc_profile(1));
        let out = run_dds(&bricks, DdsConfig::default());
        // During each 2 s pause the paused replica accumulates ~2 s of its
        // pair's load.
        assert!(out.peak_backlog > 2_000.0, "backlog {}", out.peak_backlog);
        // Mean throughput drops below offered load.
        assert!(out.mean_throughput < 7_800.0, "{}", out.mean_throughput);
        // The time series shows stalls (samples well below offered rate).
        let min_rate = out.throughput.min();
        assert!(min_rate < 6_500.0, "min sampled rate {min_rate}");
    }

    #[test]
    fn recovery_oversaturates_after_the_pause() {
        // After GC ends, the node drains backlog at full rate while new
        // load keeps arriving: sampled pair throughput spikes above the
        // offered per-pair load.
        let mut bricks = healthy_bricks();
        // Give the GC'd brick headroom so over-saturation is visible.
        bricks[2] = Brick::new(3_000.0).with_profile(gc_profile(2));
        let out = run_dds(&bricks, DdsConfig::default());
        let max_rate = out.throughput.max();
        assert!(max_rate > 8_100.0, "max sampled rate {max_rate}");
    }

    #[test]
    fn one_pair_gates_only_its_own_share() {
        // Unlike the transpose, a partitioned hash table localises the
        // stutter: other pairs keep serving their shares.
        let mut bricks = healthy_bricks();
        bricks[0] = Brick::new(2_000.0).with_profile(
            Injector::StaticSlowdown { factor: 0.25 }
                .timeline(SimDuration::from_secs(120), &mut Stream::from_seed(3)),
        );
        let out = run_dds(&bricks, DdsConfig::default());
        // Pair 0 delivers 25% of its 2 kop/s share; others full: ~6.5 kop/s.
        assert!((out.mean_throughput / 6_500.0 - 1.0).abs() < 0.05, "{}", out.mean_throughput);
    }

    #[test]
    #[should_panic]
    fn odd_brick_count_rejected() {
        let bricks = vec![Brick::new(1.0); 3];
        let _ = run_dds(&bricks, DdsConfig::default());
    }
}
