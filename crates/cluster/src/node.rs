//! Cluster nodes: CPU and disk rate sources with fail-stutter timelines.

use simcore::resource::RateProfile;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::SlowdownProfile;

/// A cluster node with CPU and disk bandwidth, each under its own
/// fail-stutter timeline.
#[derive(Clone, Debug)]
pub struct Node {
    cpu_rate: f64,
    disk_rate: f64,
    cpu_profile: SlowdownProfile,
    disk_profile: SlowdownProfile,
}

impl Node {
    /// Creates a healthy node with `cpu_rate` (records/second it can sort)
    /// and `disk_rate` (bytes/second it can stream).
    pub fn new(cpu_rate: f64, disk_rate: f64) -> Self {
        assert!(cpu_rate > 0.0 && disk_rate > 0.0, "rates must be positive");
        Node {
            cpu_rate,
            disk_rate,
            cpu_profile: SlowdownProfile::nominal(),
            disk_profile: SlowdownProfile::nominal(),
        }
    }

    /// Attaches a CPU timeline (hogs, scheduling interference).
    pub fn with_cpu_profile(mut self, profile: SlowdownProfile) -> Self {
        self.cpu_profile = profile;
        self
    }

    /// Attaches a disk timeline.
    pub fn with_disk_profile(mut self, profile: SlowdownProfile) -> Self {
        self.disk_profile = profile;
        self
    }

    /// Effective CPU rate at `t`.
    pub fn cpu_rate_at(&self, t: SimTime) -> f64 {
        self.cpu_rate * self.cpu_profile.multiplier_at(t)
    }

    /// Effective disk rate at `t`.
    pub fn disk_rate_at(&self, t: SimTime) -> f64 {
        self.disk_rate * self.disk_profile.multiplier_at(t)
    }

    /// Nominal CPU rate.
    pub fn cpu_nominal(&self) -> f64 {
        self.cpu_rate
    }

    /// Nominal disk rate.
    pub fn disk_nominal(&self) -> f64 {
        self.disk_rate
    }

    /// The node's CPU capacity as a [`RateProfile`] over `[0, horizon]`.
    pub fn cpu_rate_profile(&self, horizon: SimDuration) -> RateProfile {
        self.cpu_profile.to_rate_profile(self.cpu_rate).clipped(horizon)
    }

    /// The node's disk capacity as a [`RateProfile`] over `[0, horizon]`.
    pub fn disk_rate_profile(&self, horizon: SimDuration) -> RateProfile {
        self.disk_profile.to_rate_profile(self.disk_rate).clipped(horizon)
    }
}

/// Extension helper: clip is a no-op for our piecewise profiles, but keeps
/// the intent explicit at call sites.
trait Clip {
    fn clipped(self, horizon: SimDuration) -> Self;
}

impl Clip for RateProfile {
    fn clipped(self, _horizon: SimDuration) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::Stream;
    use stutter::injector::Injector;

    #[test]
    fn healthy_node_runs_at_nominal() {
        let n = Node::new(1e6, 10e6);
        assert_eq!(n.cpu_rate_at(SimTime::from_secs(5)), 1e6);
        assert_eq!(n.disk_rate_at(SimTime::from_secs(5)), 10e6);
    }

    #[test]
    fn profiles_scale_rates_independently() {
        let hog = Injector::StaticSlowdown { factor: 0.5 }
            .timeline(SimDuration::from_secs(100), &mut Stream::from_seed(1));
        let n = Node::new(1e6, 10e6).with_cpu_profile(hog);
        assert_eq!(n.cpu_rate_at(SimTime::ZERO), 0.5e6);
        assert_eq!(n.disk_rate_at(SimTime::ZERO), 10e6, "disk unaffected");
    }

    #[test]
    fn rate_profile_export() {
        let n = Node::new(2.0, 4.0);
        let p = n.cpu_rate_profile(SimDuration::from_secs(10));
        assert_eq!(p.rate_at(SimTime::from_secs(3)), 2.0);
    }
}
