//! Property tests for the cluster workloads.

use proptest::prelude::*;

use cluster::prelude::*;
use simcore::rng::Stream;
use simcore::time::{SimDuration, SimTime};
use stutter::injector::Injector;

proptest! {
    /// The sort conserves records under both placements and any mix of
    /// node speeds.
    #[test]
    fn sort_conserves_records(
        speeds in proptest::collection::vec(0.1f64..1.0, 1..12),
        records in 1u64..5_000_000,
        adaptive in any::<bool>()
    ) {
        let nodes: Vec<Node> = speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let p = Injector::StaticSlowdown { factor: s }
                    .timeline(SimDuration::from_secs(1 << 20), &mut Stream::from_seed(i as u64));
                Node::new(1e6, 10e6).with_cpu_profile(p.clone()).with_disk_profile(p)
            })
            .collect();
        let placement = if adaptive { Placement::Adaptive } else { Placement::Static };
        let out = run_sort(&nodes, SortJob::minute_sort(records), placement, SimTime::ZERO);
        prop_assert_eq!(out.per_node.iter().sum::<u64>(), records);
        prop_assert_eq!(out.total, out.read_phase + out.sort_phase + out.write_phase);
    }

    /// Adaptive placement never loses to static placement under static
    /// (time-invariant) node speeds, up to apportionment rounding.
    #[test]
    fn adaptive_placement_never_materially_worse(
        speeds in proptest::collection::vec(0.2f64..1.0, 2..10),
        millions in 1u64..8
    ) {
        let nodes: Vec<Node> = speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let p = Injector::StaticSlowdown { factor: s }
                    .timeline(SimDuration::from_secs(1 << 20), &mut Stream::from_seed(i as u64));
                Node::new(1e6, 10e6).with_cpu_profile(p.clone()).with_disk_profile(p)
            })
            .collect();
        const RECORDS_PER_MILLION: u64 = 1_000_000;
        let job = SortJob::minute_sort(millions * RECORDS_PER_MILLION);
        let s = run_sort(&nodes, job, Placement::Static, SimTime::ZERO);
        let a = run_sort(&nodes, job, Placement::Adaptive, SimTime::ZERO);
        // One record per phase of slack on the slowest node.
        let slowest = speeds.iter().copied().min_by(f64::total_cmp).unwrap_or(f64::INFINITY);
        let slack = 3.0 * 100.0 / (10e6 * slowest);
        prop_assert!(
            a.total.as_secs_f64() <= s.total.as_secs_f64() * 1.001 + slack,
            "adaptive {} vs static {}",
            a.total,
            s.total
        );
    }

    /// The replicated hash table never acknowledges more than it was
    /// offered, and throughput samples are non-negative.
    #[test]
    fn dds_conservation(pairs in 1usize..5, load in 100.0f64..5_000.0, slow in 0.1f64..1.0) {
        let mut bricks: Vec<Brick> = (0..2 * pairs).map(|_| Brick::new(2_000.0)).collect();
        bricks[0] = Brick::new(2_000.0).with_profile(
            Injector::StaticSlowdown { factor: slow }
                .timeline(SimDuration::from_secs(120), &mut Stream::from_seed(1)),
        );
        let cfg = DdsConfig {
            offered_load: load,
            duration: SimDuration::from_secs(20),
            dt: SimDuration::from_millis(10),
        };
        let out = run_dds(&bricks, cfg);
        let offered = load * 20.0;
        prop_assert!(out.acked <= offered * 1.001, "acked {} offered {offered}", out.acked);
        for &(_, v) in out.throughput.points() {
            prop_assert!(v >= -1e-9);
        }
        prop_assert!(out.peak_backlog >= 0.0);
    }

    /// Node rate profiles agree with point queries.
    #[test]
    fn node_profile_consistency(cpu in 0.1f64..10.0, disk in 0.1f64..10.0, t in 0u64..1_000) {
        let n = Node::new(cpu * 1e6, disk * 1e6);
        let at = SimTime::from_secs(t);
        let horizon = SimDuration::from_secs(2_000);
        prop_assert_eq!(n.cpu_rate_at(at), n.cpu_rate_profile(horizon).rate_at(at));
        prop_assert_eq!(n.disk_rate_at(at), n.disk_rate_profile(horizon).rate_at(at));
    }
}
