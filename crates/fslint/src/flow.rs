//! Interprocedural taint analysis: prove the digest is deterministic.
//!
//! The token and semantic rules flag nondeterminism *sources* wherever
//! they appear; this module answers the stronger question the golden
//! pyramid actually rests on: does a nondeterministic value **flow into**
//! a digest fold, a golden assertion, a bench metric, or an oracle
//! verdict? It is a summary-based taint analysis over the existing
//! workspace call graph ([`crate::graph`]):
//!
//! * **Sources** — wall-clock reads (`Instant`, `SystemTime`,
//!   `thread::sleep`), ambient RNG (`thread_rng`, `from_entropy`,
//!   `OsRng`, `getrandom`, `rand::random`), unordered-collection
//!   iteration (`HashMap`/`HashSet`), pointer/address formatting
//!   (`{:p}`, `ptr::addr_of`), thread identity (`thread::current`),
//!   environment reads (`env::var`/`var_os`/`vars`), and NaN-sensitive
//!   float folds (`fold`/`reduce` over `f64::min`/`max`).
//! * **Per-function summaries** — a function is *tainted* when its body
//!   reads a source directly, calls a tainted function, or reads a
//!   struct field a tainted value was assigned into (the
//!   field-laundering case). Summaries are computed to a fixpoint over
//!   the call-graph edges; each records the hop it arrived through, so a
//!   finding can print the full source→sink path.
//! * **Per-sink local tracking** — inside the function containing a
//!   sink, `let` and `for` bindings whose initialiser is tainted carry
//!   the taint forward by name; an explicit `sort*()` on an
//!   unordered-iteration local *sanitises* it (a sorted collection has a
//!   deterministic order again).
//! * **Sinks** — digest folds (`write`/`write_u64`/`write_f64`/
//!   `write_str` in files that name `Fnv64`), golden assertions
//!   (`assert*!` whose arguments name a `GOLDEN_*` constant or whose
//!   enclosing fn is `golden*`), bench metric emission (`Finding::new`,
//!   `.row(..)` in files that name `Table`), and oracle verdicts (calls
//!   into functions defined in `oracle` modules). Sinks apply in test
//!   code too — that is where goldens live.
//!
//! Three rules come out of this: `digest-taint` (source reaches a
//! digest/golden/bench sink, with the interprocedural path in the
//! message), `oracle-taint` (source reaches an oracle verdict), and
//! `rng-lineage` (`from_seed` must be rooted on a literal or a
//! `*seed*`-named value, never a loop index or shard id — a stream keyed
//! on iteration order silently changes when the loop does).
//!
//! Like the rest of fs-lint the analysis is conservative and name-based
//! where resolution is ambiguous: free-call taint matches only within
//! the same module or through a matching qualifier segment, and method
//! taint is gated on the caller's file mentioning the owner type or
//! trait — the same gate the graph uses for dispatch edges. Known
//! under-approximations: closure-parameter calls are invisible (a
//! workload closure passed *into* a helper taints the call site's
//! argument span, not the helper), struct-literal field initialisers do
//! not taint fields (only `.field = value` assignments do), and bare
//! function references contribute no value taint.

use crate::graph::{FileUnit, Graph};
use crate::lexer::{TokKind, Token};
use crate::parse::{self, FnItem};
use crate::rules::{id, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Root source kind: a wall-clock read (`Instant::now`, `SystemTime`).
pub const K_WALL: &str = "wall-clock";
/// Root source kind: ambient RNG (`thread_rng`, `from_entropy`, OS entropy).
pub const K_RNG: &str = "ambient-rng";
/// Root source kind: iteration order of an unordered collection.
pub const K_UNORD: &str = "unordered-iter";
/// Root source kind: pointer/address formatting (`{:p}`, `addr_of`).
pub const K_PTR: &str = "ptr-format";
/// Root source kind: the host thread's identity (`thread::current().id()`).
pub const K_TID: &str = "thread-id";
/// Root source kind: an environment read (`env::var` and friends).
pub const K_ENV: &str = "env-read";
/// Root source kind: a NaN-sensitive float fold (`fold(f64::min)`-shape).
pub const K_NAN: &str = "nan-fold";

/// One function's taint summary: how nondeterminism enters its body.
/// `None` in the per-node vector means the function is clean.
#[derive(Debug, Clone)]
pub struct TaintSummary {
    /// Root source kind ([`K_WALL`], [`K_RNG`], …), propagated unchanged
    /// along call chains.
    pub kind: &'static str,
    /// 1-based line of the source read, or of the call/field-read that
    /// imported the taint.
    pub line: u32,
    /// The callee node id the taint arrived through, `None` at the root.
    pub via: Option<usize>,
    /// Human description of this hop.
    pub what: String,
}

/// One directly-read source occurrence.
#[derive(Debug, Clone)]
struct Src {
    kind: &'static str,
    tok: usize,
    line: u32,
    desc: String,
}

/// Why an expression is tainted.
#[derive(Debug, Clone)]
enum Cause {
    /// A source token inside the expression itself.
    Direct(Src),
    /// A call to a tainted function.
    Call { node: usize },
    /// A read of a struct field a tainted value was assigned into.
    Field { name: String },
}

/// An expression's taint: the cause plus the locals it flowed through.
#[derive(Debug, Clone)]
struct Taint {
    cause: Cause,
    via_locals: Vec<String>,
}

/// One tainted local binding, live on `[from, until]` token indices.
#[derive(Debug, Clone)]
struct Local {
    name: String,
    from: usize,
    until: usize,
    taint: Taint,
    root: &'static str,
}

/// What a tainted struct field carries.
#[derive(Debug, Clone)]
struct FieldTaint {
    kind: &'static str,
    desc: String,
}

/// Digest-fold method names (gated on the file naming `Fnv64`).
const DIGEST_METHODS: &[&str] = &["write", "write_u64", "write_f64", "write_str"];

/// Runs the flow analysis: the `digest-taint` / `oracle-taint` /
/// `rng-lineage` findings plus the per-node taint summaries, aligned
/// with `graph.nodes` for the `--graph-out` export. Works with or
/// without graph entry points — taint needs edges, not roots.
pub fn analyze(units: &[FileUnit], graph: &Graph) -> (Vec<Finding>, Vec<Option<TaintSummary>>) {
    let mut flow = Flow::new(units, graph);
    flow.fixpoint();
    let mut findings = flow.sink_findings();
    findings.extend(flow.rng_lineage());
    (findings, flow.summaries)
}

/// The analysis state: summaries and tainted fields grow monotonically
/// to a fixpoint.
struct Flow<'a> {
    units: &'a [FileUnit],
    graph: &'a Graph,
    /// Every identifier each file mentions (the method-taint gate).
    file_idents: Vec<BTreeSet<&'a str>>,
    /// Precomputed NaN-fold sources per file.
    nan_srcs: Vec<Vec<Src>>,
    /// Per-node taint summaries, aligned with `graph.nodes`.
    summaries: Vec<Option<TaintSummary>>,
    /// Tainted node ids by function name (rebuilt each round).
    by_name: BTreeMap<String, Vec<usize>>,
    /// Tainted struct fields by field name (global, name-based).
    fields: BTreeMap<String, FieldTaint>,
}

impl<'a> Flow<'a> {
    fn new(units: &'a [FileUnit], graph: &'a Graph) -> Flow<'a> {
        let file_idents = units
            .iter()
            .map(|u| {
                u.lexed
                    .tokens
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect()
            })
            .collect();
        let nan_srcs = units.iter().map(nan_fold_sources).collect();
        let mut flow = Flow {
            units,
            graph,
            file_idents,
            nan_srcs,
            summaries: vec![None; graph.nodes.len()],
            by_name: BTreeMap::new(),
            fields: BTreeMap::new(),
        };
        for n in 0..graph.nodes.len() {
            if let Some(src) = flow.direct_source(n) {
                flow.summaries[n] = Some(TaintSummary {
                    kind: src.kind,
                    line: src.line,
                    via: None,
                    what: src.desc,
                });
            }
        }
        flow
    }

    /// The earliest source token inside node `n`'s body, if any.
    fn direct_source(&self, n: usize) -> Option<Src> {
        let node = &self.graph.nodes[n];
        let toks = &self.units[node.file].lexed.tokens;
        let (b0, b1) = node.body;
        let mut best: Option<Src> = None;
        for i in b0..=b1.min(toks.len().saturating_sub(1)) {
            if let Some(s) = lexical_source(toks, i) {
                best = Some(s);
                break;
            }
        }
        for s in &self.nan_srcs[node.file] {
            if s.tok >= b0 && s.tok <= b1 && best.as_ref().is_none_or(|b| s.tok < b.tok) {
                best = Some(s.clone());
            }
        }
        best
    }

    /// Iterates summary propagation and field discovery to a fixpoint.
    /// Both sets only grow, so this terminates.
    fn fixpoint(&mut self) {
        loop {
            self.rebuild_by_name();
            let mut changed = self.discover_fields();
            let mut updates: Vec<(usize, TaintSummary)> = Vec::new();
            for n in 0..self.graph.nodes.len() {
                if self.summaries[n].is_some() {
                    continue;
                }
                if let Some(&m) =
                    self.graph.edges[n].iter().find(|&&m| m != n && self.summaries[m].is_some())
                {
                    let kind = self.summaries[m].as_ref().map(|s| s.kind).unwrap_or(K_WALL);
                    updates.push((
                        n,
                        TaintSummary {
                            kind,
                            line: self.call_line(n, m),
                            via: Some(m),
                            what: format!("calls `{}`", self.graph.nodes[m].name),
                        },
                    ));
                    continue;
                }
                if let Some((fname, line)) = self.body_field_read(n) {
                    let ft = self.fields[&fname].clone();
                    updates.push((
                        n,
                        TaintSummary {
                            kind: ft.kind,
                            line,
                            via: None,
                            what: format!("reads tainted field `.{fname}` ({})", ft.desc),
                        },
                    ));
                }
            }
            if !updates.is_empty() {
                changed = true;
                for (n, s) in updates {
                    self.summaries[n] = Some(s);
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn rebuild_by_name(&mut self) {
        self.by_name.clear();
        for (n, s) in self.summaries.iter().enumerate() {
            if s.is_some() {
                self.by_name.entry(self.graph.nodes[n].name.clone()).or_default().push(n);
            }
        }
    }

    /// The line of a call from node `n` to node `m`, for the hop record.
    fn call_line(&self, n: usize, m: usize) -> u32 {
        let node = &self.graph.nodes[n];
        let callee = &self.graph.nodes[m];
        let u = &self.units[node.file];
        let (b0, b1) = node.body;
        let found = if callee.owner.is_some() {
            u.model
                .calls
                .iter()
                .find(|c| c.dot >= b0 && c.dot <= b1 && c.name == callee.name)
                .map(|c| c.line)
        } else {
            u.model
                .free_calls
                .iter()
                .find(|c| c.tok >= b0 && c.tok <= b1 && c.name == callee.name)
                .map(|c| c.line)
        };
        found.unwrap_or(node.line)
    }

    /// A read of a tainted field inside node `n`'s body (`.f` not
    /// followed by `(` or `=`), if any.
    fn body_field_read(&self, n: usize) -> Option<(String, u32)> {
        if self.fields.is_empty() {
            return None;
        }
        let node = &self.graph.nodes[n];
        let toks = &self.units[node.file].lexed.tokens;
        let (b0, b1) = node.body;
        for i in b0..=b1.min(toks.len().saturating_sub(2)) {
            if !toks[i].is_punct('.') {
                continue;
            }
            let nt = &toks[i + 1];
            if nt.kind != TokKind::Ident || !self.fields.contains_key(&nt.text) {
                continue;
            }
            if field_read_shape(toks, i) {
                return Some((nt.text.clone(), nt.line));
            }
        }
        None
    }

    /// One round of `.field = RHS` discovery: any assignment whose RHS is
    /// tainted marks the field (by name, workspace-global). Returns true
    /// when a new field was learned.
    fn discover_fields(&mut self) -> bool {
        let mut learned: Vec<(String, FieldTaint)> = Vec::new();
        for file in 0..self.units.len() {
            let u = &self.units[file];
            let toks = &u.lexed.tokens;
            let mut locals_cache: BTreeMap<usize, Vec<Local>> = BTreeMap::new();
            let mut i = 0usize;
            while i + 2 < toks.len() {
                if !toks[i].is_punct('.')
                    || toks[i + 1].kind != TokKind::Ident
                    || !toks[i + 2].is_punct('=')
                    || toks.get(i + 3).is_some_and(|t| t.is_punct('='))
                {
                    i += 1;
                    continue;
                }
                let fname = toks[i + 1].text.clone();
                if self.fields.contains_key(&fname) || learned.iter().any(|(n, _)| *n == fname) {
                    i += 1;
                    continue;
                }
                let Some(end) = rhs_end(toks, i + 3) else {
                    i += 1;
                    continue;
                };
                let taint = match u.model.enclosing_fn_idx(i) {
                    Some(fk) => {
                        let ls = locals_cache
                            .entry(fk)
                            .or_insert_with(|| self.locals_for(file, u.model.fns[fk].body));
                        self.taint_in(file, i + 3, end, ls)
                    }
                    None => self.taint_in(file, i + 3, end, &[]),
                };
                if let Some(t) = taint {
                    let kind = self.root_kind(&t.cause);
                    let desc = self.describe(file, &t);
                    learned.push((fname, FieldTaint { kind, desc }));
                }
                i += 1;
            }
        }
        let changed = !learned.is_empty();
        for (name, ft) in learned {
            self.fields.entry(name).or_insert(ft);
        }
        changed
    }

    /// The root source kind behind a cause.
    fn root_kind(&self, c: &Cause) -> &'static str {
        match c {
            Cause::Direct(s) => s.kind,
            Cause::Call { node } => {
                self.summaries[*node].as_ref().map(|s| s.kind).unwrap_or(K_WALL)
            }
            Cause::Field { name } => self.fields.get(name).map(|f| f.kind).unwrap_or(K_WALL),
        }
    }

    /// Tainted `let`/`for` bindings of the function body at `body`, with
    /// `sort*()` sanitisation applied in textual order.
    fn locals_for(&self, file: usize, body: (usize, usize)) -> Vec<Local> {
        let u = &self.units[file];
        let toks = &u.lexed.tokens;
        let (b0, b1) = body;
        // `recv.sort*()` sites: re-establish a deterministic order on an
        // unordered-iteration local, killing its taint from that point.
        let sorts: Vec<(usize, String)> = u
            .model
            .calls
            .iter()
            .filter(|c| c.dot > b0 && c.dot < b1 && c.name.starts_with("sort"))
            .filter_map(|c| {
                let r = toks.get(c.dot.checked_sub(1)?)?;
                (r.kind == TokKind::Ident).then(|| (c.dot, r.text.clone()))
            })
            .collect();
        let mut next_sort = 0usize;
        let mut locals: Vec<Local> = param_taint(toks, b0);
        let mut i = b0;
        while i <= b1 && i < toks.len() {
            while next_sort < sorts.len() && sorts[next_sort].0 < i {
                let (dot, recv) = &sorts[next_sort];
                for l in locals.iter_mut() {
                    if l.name == *recv && l.root == K_UNORD && *dot > l.from && *dot < l.until {
                        l.until = *dot;
                    }
                }
                next_sort += 1;
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text == "let" {
                let (eq, semi) = let_bounds(toks, i + 1, b1);
                let Some(semi) = semi else {
                    i += 1;
                    continue;
                };
                if let Some(eq) = eq {
                    let names = pattern_names(toks, i + 1, eq);
                    if !names.is_empty() {
                        // The scan covers the whole statement so a type
                        // ascription (`: HashMap<..>`) taints too.
                        let taint = self.taint_in(file, i + 1, semi, &locals);
                        for name in &names {
                            // Shadowing: a rebinding ends the old local's
                            // range whether or not the new one is tainted.
                            for l in locals.iter_mut() {
                                if l.name == *name && l.until > semi {
                                    l.until = semi;
                                }
                            }
                        }
                        if let Some(t) = taint {
                            let root = self.root_kind(&t.cause);
                            for name in names {
                                locals.push(Local {
                                    name,
                                    from: semi,
                                    until: usize::MAX,
                                    taint: t.clone(),
                                    root,
                                });
                            }
                        }
                    }
                }
                i = semi + 1;
                continue;
            }
            if t.kind == TokKind::Ident && t.text == "for" {
                if let Some((names, expr_end, brace)) = for_binding(toks, i, b1) {
                    if let Some(t) = self.taint_in(file, i + 1, expr_end, &locals) {
                        let root = self.root_kind(&t.cause);
                        for name in names {
                            locals.push(Local {
                                name,
                                from: brace,
                                until: usize::MAX,
                                taint: t.clone(),
                                root,
                            });
                        }
                    }
                    i = brace.max(i + 1);
                    continue;
                }
            }
            i += 1;
        }
        locals
    }

    /// The earliest taint inside the token span `[lo, hi]`: a direct
    /// source, a tainted local mention, a tainted field read, or a call
    /// to a tainted function.
    fn taint_in(&self, file: usize, lo: usize, hi: usize, locals: &[Local]) -> Option<Taint> {
        let u = &self.units[file];
        let toks = &u.lexed.tokens;
        if toks.is_empty() || lo > hi {
            return None;
        }
        let hi = hi.min(toks.len() - 1);
        let mut best: Option<(usize, Taint)> = None;
        let consider = |tok: usize, t: Taint, best: &mut Option<(usize, Taint)>| {
            if best.as_ref().is_none_or(|(b, _)| tok < *b) {
                *best = Some((tok, t));
            }
        };
        for i in lo..=hi {
            let t = &toks[i];
            if let Some(src) = lexical_source(toks, i) {
                consider(i, Taint { cause: Cause::Direct(src), via_locals: Vec::new() }, &mut best);
                continue;
            }
            if t.kind == TokKind::Ident {
                // Skip method names and path interiors (`a::b`); a single
                // `:` (struct-literal init) still counts as a mention.
                let after_dot = i > 0 && toks[i - 1].is_punct('.');
                let in_path = i > 1 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                if !after_dot && !in_path {
                    if let Some(l) = locals
                        .iter()
                        .rev()
                        .find(|l| l.name == t.text && i >= l.from && i <= l.until)
                    {
                        let mut via = l.taint.via_locals.clone();
                        if via.last() != Some(&l.name) {
                            via.push(l.name.clone());
                        }
                        consider(
                            i,
                            Taint { cause: l.taint.cause.clone(), via_locals: via },
                            &mut best,
                        );
                    }
                }
            }
            if t.is_punct('.') && !self.fields.is_empty() {
                if let Some(nt) = toks.get(i + 1) {
                    if nt.kind == TokKind::Ident
                        && self.fields.contains_key(&nt.text)
                        && field_read_shape(toks, i)
                    {
                        consider(
                            i,
                            Taint {
                                cause: Cause::Field { name: nt.text.clone() },
                                via_locals: Vec::new(),
                            },
                            &mut best,
                        );
                    }
                }
            }
        }
        for mc in u.model.calls.iter().filter(|c| c.dot >= lo && c.dot <= hi) {
            let Some(cands) = self.by_name.get(&mc.name) else { continue };
            for &n in cands {
                let node = &self.graph.nodes[n];
                if node.owner.is_none() {
                    continue;
                }
                let mentioned =
                    node.owner.as_deref().is_some_and(|o| self.file_idents[file].contains(o))
                        || node
                            .trait_name
                            .as_deref()
                            .is_some_and(|tr| self.file_idents[file].contains(tr));
                if mentioned {
                    consider(
                        mc.dot,
                        Taint { cause: Cause::Call { node: n }, via_locals: Vec::new() },
                        &mut best,
                    );
                    break;
                }
            }
        }
        for fc in u.model.free_calls.iter().filter(|c| c.called && c.tok >= lo && c.tok <= hi) {
            let Some(cands) = self.by_name.get(&fc.name) else { continue };
            for &n in cands {
                let node = &self.graph.nodes[n];
                let matched = if fc.qual.is_empty() {
                    // Unqualified: only a tainted free fn of the SAME
                    // module — prevents `catalog::all()` matching an
                    // unrelated tainted `all()` elsewhere.
                    node.owner.is_none() && node.abs_module == u.mp.abs()
                } else {
                    let q = fc.qual.last().map(String::as_str).unwrap_or("");
                    (node.owner.is_none() && node.abs_module.last().map(String::as_str) == Some(q))
                        || node.owner.as_deref() == Some(q)
                };
                if matched {
                    consider(
                        fc.tok,
                        Taint { cause: Cause::Call { node: n }, via_locals: Vec::new() },
                        &mut best,
                    );
                    break;
                }
            }
        }
        best.map(|(_, t)| t)
    }

    /// The human-readable source→here path for a taint.
    fn describe(&self, file: usize, t: &Taint) -> String {
        let mut parts: Vec<String> = Vec::new();
        match &t.cause {
            Cause::Direct(s) => {
                parts.push(format!("{} ({}:{})", s.desc, self.units[file].path, s.line));
            }
            Cause::Field { name } => {
                let desc = self.fields.get(name).map(|f| f.desc.as_str()).unwrap_or("?");
                parts.push(format!("{desc} -> field `.{name}`"));
            }
            Cause::Call { node } => parts.extend(self.chain(*node)),
        }
        for l in &t.via_locals {
            parts.push(format!("local `{l}`"));
        }
        parts.join(" -> ")
    }

    /// The call chain from the root source down to node `from`, one hop
    /// per entry. `via` links never cycle (a summary's provider was
    /// always assigned in an earlier round), but a depth cap guards the
    /// walk anyway.
    fn chain(&self, from: usize) -> Vec<String> {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = from;
        for _ in 0..16 {
            let Some(s) = self.summaries[cur].as_ref() else { break };
            let n = &self.graph.nodes[cur];
            hops.push(format!("`{}` ({}:{})", n.name, self.units[n.file].path, n.line));
            match s.via {
                Some(v) if v != cur => cur = v,
                _ => {
                    hops.push(format!("{} ({}:{})", s.what, self.units[n.file].path, s.line));
                    break;
                }
            }
        }
        hops.reverse();
        hops
    }

    /// The sink pass: `digest-taint` and `oracle-taint` findings.
    fn sink_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        // Free functions defined inside `oracle` modules: calling one
        // constructs a verdict.
        let oracle_fns: BTreeSet<&str> = self
            .graph
            .nodes
            .iter()
            .filter(|n| n.owner.is_none() && n.abs_module.iter().skip(1).any(|m| m == "oracle"))
            .map(|n| n.name.as_str())
            .collect();
        for (file, u) in self.units.iter().enumerate() {
            let toks = &u.lexed.tokens;
            let mut locals_cache: BTreeMap<Option<usize>, Vec<Local>> = BTreeMap::new();
            let check = |flow: &Self,
                         site_tok: usize,
                         line: u32,
                         args: (usize, usize),
                         rule: &'static str,
                         sink: String,
                         cache: &mut BTreeMap<Option<usize>, Vec<Local>>,
                         out: &mut Vec<Finding>| {
                let (a0, a1) = args;
                if a1 <= a0 {
                    return;
                }
                let fk = u.model.enclosing_fn_idx(site_tok);
                let locals = cache.entry(fk).or_insert_with(|| match fk {
                    Some(k) => flow.locals_for(file, u.model.fns[k].body),
                    None => Vec::new(),
                });
                if let Some(t) = flow.taint_in(file, a0 + 1, a1 - 1, locals) {
                    let path = flow.describe(file, &t);
                    let message = if rule == id::DIGEST_TAINT {
                        format!(
                            "nondeterministic value flows into {sink}: {path} -> {sink}; every \
                             byte reaching a digest, golden, or bench artifact must be a pure \
                             function of the scenario labels — derive it from simulated time or \
                             a labeled Stream (or suppress citing the invariant that pins it)"
                        )
                    } else {
                        format!(
                            "nondeterministic value flows into {sink}: {path} -> {sink}; a \
                             verdict that depends on the host machine verifies nothing"
                        )
                    };
                    out.push(Finding { path: u.path.clone(), line, rule, message });
                }
            };
            // Digest folds, gated on the file naming the digest type.
            if self.file_idents[file].contains("Fnv64") {
                for mc in &u.model.calls {
                    if DIGEST_METHODS.contains(&mc.name.as_str()) {
                        check(
                            self,
                            mc.dot,
                            mc.line,
                            mc.args,
                            id::DIGEST_TAINT,
                            format!("digest fold `{}`", mc.name),
                            &mut locals_cache,
                            &mut out,
                        );
                    }
                }
            }
            // Golden assertions.
            for mac in &u.model.macros {
                if !matches!(mac.name.as_str(), "assert" | "assert_eq" | "assert_ne") {
                    continue;
                }
                let open = mac.tok + 2;
                if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                let close = parse::match_delim(toks, open);
                let named_golden = toks[open..=close]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text.starts_with("GOLDEN"));
                let in_golden_fn = u
                    .model
                    .enclosing_fn(mac.tok)
                    .is_some_and(|f: &FnItem| f.name.starts_with("golden"));
                if named_golden || in_golden_fn {
                    check(
                        self,
                        mac.tok,
                        mac.line,
                        (open, close),
                        id::DIGEST_TAINT,
                        format!("golden assertion `{}!`", mac.name),
                        &mut locals_cache,
                        &mut out,
                    );
                }
            }
            // Bench metric emission.
            for fc in &u.model.free_calls {
                if fc.name == "new"
                    && fc.called
                    && fc.qual.last().map(String::as_str) == Some("Finding")
                {
                    if let Some(args) = call_args(toks, fc.tok) {
                        check(
                            self,
                            fc.tok,
                            fc.line,
                            args,
                            id::DIGEST_TAINT,
                            "bench metric `Finding::new`".to_string(),
                            &mut locals_cache,
                            &mut out,
                        );
                    }
                }
            }
            if self.file_idents[file].contains("Table") {
                for mc in &u.model.calls {
                    if mc.name == "row" {
                        check(
                            self,
                            mc.dot,
                            mc.line,
                            mc.args,
                            id::DIGEST_TAINT,
                            "bench table `row`".to_string(),
                            &mut locals_cache,
                            &mut out,
                        );
                    }
                }
            }
            // Oracle verdicts: calls into oracle-module functions, gated
            // on the call actually referencing an oracle module (path
            // qualifier or a `use` with an oracle segment) so shared
            // names elsewhere never match.
            let file_uses_oracle = u.model.uses.iter().any(|d| {
                d.segs.iter().any(|s| s.contains("oracle"))
                    || d.alias.as_deref().is_some_and(|a| a.contains("oracle"))
            });
            for fc in &u.model.free_calls {
                if !fc.called || !oracle_fns.contains(fc.name.as_str()) {
                    continue;
                }
                let qual_oracle = fc.qual.iter().any(|q| q.contains("oracle"));
                if !qual_oracle && !file_uses_oracle {
                    continue;
                }
                if let Some(args) = call_args(toks, fc.tok) {
                    check(
                        self,
                        fc.tok,
                        fc.line,
                        args,
                        id::ORACLE_TAINT,
                        format!("oracle check `{}`", fc.name),
                        &mut locals_cache,
                        &mut out,
                    );
                }
            }
        }
        out
    }

    /// The `rng-lineage` pass: every `from_seed(..)` argument must be a
    /// literal or a `*seed*`-named value. Test code (and files under
    /// `tests/` trees, where proptest-generated fns carry no `#[test]`
    /// marker) is exempt — a test may explore seeds freely.
    fn rng_lineage(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for u in self.units.iter() {
            if u.path.starts_with("tests/") || u.path.contains("/tests/") {
                continue;
            }
            let toks = &u.lexed.tokens;
            for fc in u.model.free_calls.iter().filter(|c| c.name == "from_seed" && c.called) {
                if u.model.in_test_span(fc.tok)
                    || u.model.enclosing_fn(fc.tok).is_some_and(|f| f.in_test)
                {
                    continue;
                }
                let Some((open, close)) = call_args(toks, fc.tok) else { continue };
                let rooted = toks[open + 1..close].iter().any(|t| {
                    t.kind == TokKind::Num
                        || (t.kind == TokKind::Ident
                            && t.text.to_ascii_lowercase().contains("seed"))
                });
                if !rooted {
                    let arg: Vec<&str> =
                        toks[open + 1..close].iter().take(8).map(|t| t.text.as_str()).collect();
                    out.push(Finding {
                        path: u.path.clone(),
                        line: fc.line,
                        rule: id::RNG_LINEAGE,
                        message: format!(
                            "`from_seed({})` is not rooted on a literal or master seed — RNG \
                             streams must be label-rooted \
                             (`Stream::from_seed(SEED).derive(\"component.use\")` or \
                             `.derive_index(i)` under a labeled parent), never seeded from loop \
                             indices or shard ids: a stream keyed on iteration order silently \
                             changes when the loop does",
                            arg.join(" ")
                        ),
                    });
                }
            }
        }
        out
    }
}

/// A direct nondeterminism source at token `i`, if one starts here.
fn lexical_source(toks: &[Token], i: usize) -> Option<Src> {
    let t = &toks[i];
    let prefixed = |head: &str| {
        i >= 3
            && toks[i - 3].is_ident(head)
            && toks[i - 2].is_punct(':')
            && toks[i - 1].is_punct(':')
    };
    match t.kind {
        TokKind::Ident => {
            let (kind, desc) = match t.text.as_str() {
                "Instant" | "SystemTime" => (K_WALL, format!("`{}` wall-clock read", t.text)),
                "sleep" | "sleep_ms" if prefixed("thread") => {
                    (K_WALL, "`thread::sleep` wall-clock wait".to_string())
                }
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                    (K_RNG, format!("ambient RNG `{}`", t.text))
                }
                "random" if prefixed("rand") => (K_RNG, "ambient RNG `rand::random`".to_string()),
                "HashMap" | "HashSet" => {
                    (K_UNORD, format!("`{}` unordered iteration order", t.text))
                }
                "addr_of" | "addr_of_mut" => (K_PTR, format!("raw address `ptr::{}`", t.text)),
                "current" if prefixed("thread") => {
                    (K_TID, "`thread::current()` identity".to_string())
                }
                "var" | "var_os" | "vars" if prefixed("env") => {
                    (K_ENV, format!("environment read `env::{}`", t.text))
                }
                _ => return None,
            };
            Some(Src { kind, tok: i, line: t.line, desc })
        }
        // The needle is assembled with `concat!` so this file's own string
        // literal does not register as a pointer-format source when
        // fs-lint lints itself.
        TokKind::Str if t.text.contains(concat!(":", "p}")) => Some(Src {
            kind: K_PTR,
            tok: i,
            line: t.line,
            // Same concat! dodge as the needle above.
            desc: concat!("`{", ":", "p}` pointer formatting").to_string(),
        }),
        _ => None,
    }
}

/// NaN-sensitive float folds in one file: `fold`/`reduce` whose argument
/// span mentions `f64::min`/`f64::max` (or `f32`). The fold's value
/// depends on NaN placement, which depends on evaluation order.
fn nan_fold_sources(u: &FileUnit) -> Vec<Src> {
    let toks = &u.lexed.tokens;
    let mut out = Vec::new();
    for mc in &u.model.calls {
        if mc.name != "fold" && mc.name != "reduce" {
            continue;
        }
        let (a0, a1) = mc.args;
        if a1 <= a0 + 3 || a1 >= toks.len() {
            continue;
        }
        let nan_prone = toks[a0..=a1].windows(4).any(|w| {
            (w[0].is_ident("f64") || w[0].is_ident("f32"))
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && (w[3].is_ident("min") || w[3].is_ident("max"))
        });
        if nan_prone {
            out.push(Src {
                kind: K_NAN,
                tok: mc.dot,
                line: mc.line,
                desc: format!("NaN-sensitive `{}` over float min/max", mc.name),
            });
        }
    }
    out
}

/// True when the `.` at `i` reads a field: next token is an identifier
/// not followed by `(` (a method call) or a plain `=` (a write; `==`
/// still reads).
pub(crate) fn field_read_shape(toks: &[Token], i: usize) -> bool {
    if !toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
        return false;
    }
    let Some(after) = toks.get(i + 2) else { return true };
    if after.is_punct('(') {
        return false;
    }
    if after.is_punct('=') && !toks.get(i + 3).is_some_and(|t| t.is_punct('=')) {
        return false;
    }
    true
}

/// The argument parens of the call whose name token is `tok`, skipping a
/// turbofish; `None` for bare references.
pub(crate) fn call_args(toks: &[Token], tok: usize) -> Option<(usize, usize)> {
    let mut k = tok + 1;
    if toks.get(k).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 2).is_some_and(|t| t.is_punct('<'))
    {
        let close = parse::skip_angles(toks, k + 2);
        if close == k + 2 {
            return None;
        }
        k = close + 1;
    }
    if !toks.get(k).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    Some((k, parse::match_delim(toks, k)))
}

/// The bounds of a `let` statement starting after the `let` at `from-1`:
/// the depth-0 `=` (skipping `==`/compound operators) and the depth-0 `;`.
pub(crate) fn let_bounds(
    toks: &[Token],
    from: usize,
    limit: usize,
) -> (Option<usize>, Option<usize>) {
    let mut depth = 0i32;
    let mut eq = None;
    let mut i = from;
    while i <= limit && i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && eq.is_none() => {
                    // `>` is NOT compound here: before a let's binding `=`
                    // it can only be a generic close (`let k: Vec<u64> =`) —
                    // a real `>=` cannot appear in pattern/type position.
                    let compound = i > 0
                        && toks[i - 1].kind == TokKind::Punct
                        && matches!(
                            toks[i - 1].text.as_str(),
                            "=" | "<" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                        );
                    let double = toks.get(i + 1).is_some_and(|t| t.is_punct('='));
                    if !compound && !double {
                        eq = Some(i);
                    }
                }
                ";" if depth == 0 => return (eq, Some(i)),
                _ => {}
            }
        }
        i += 1;
    }
    (eq, None)
}

/// Lower-case identifiers bound by the pattern between `from` and the
/// `=` at `eq`, stopping at a depth-0 `:` (type ascription). CamelCase
/// names are enum/struct constructors, not bindings.
pub(crate) fn pattern_names(toks: &[Token], from: usize, eq: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for t in toks.iter().take(eq.min(toks.len())).skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ":" if depth == 0 => break,
                _ => {}
            }
        } else if t.kind == TokKind::Ident
            && !parse::is_keyword(&t.text)
            && t.text.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        {
            out.push(t.text.clone());
        }
    }
    out
}

/// `for PAT in EXPR {` starting at the `for` at `i`: the bound names,
/// the last token of EXPR, and the index of the opening `{`.
pub(crate) fn for_binding(
    toks: &[Token],
    i: usize,
    limit: usize,
) -> Option<(Vec<String>, usize, usize)> {
    let mut j = i + 1;
    let mut names = Vec::new();
    while j <= limit && j < i + 24 && j < toks.len() {
        let t = &toks[j];
        if t.is_ident("in") {
            break;
        }
        if t.is_punct('{') || t.is_punct(';') {
            return None;
        }
        if t.kind == TokKind::Ident
            && !parse::is_keyword(&t.text)
            && t.text.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        {
            names.push(t.text.clone());
        }
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("in")) {
        return None;
    }
    let mut k = j + 1;
    let mut depth = 0i32;
    while k <= limit && k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    if k > j + 1 {
                        return Some((names, k - 1, k));
                    }
                    return None;
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Parameters of the fn whose body opens at `b0` that are typed on an
/// unordered collection (`fn fold(m: &HashMap<..>)`): each becomes a
/// tainted local live across the whole body. Only container types make
/// sense here — a `HashMap` parameter's *iteration* is what the caller
/// cannot pin, whereas an `Instant` parameter was already flagged at the
/// caller's read site.
fn param_taint(toks: &[Token], b0: usize) -> Vec<Local> {
    let mut out = Vec::new();
    // The signature's `fn` keyword is the nearest one before the body.
    let Some(sig) = (0..b0).rev().find(|&k| toks[k].is_ident("fn")) else { return out };
    let Some(open) = (sig..b0).find(|&k| toks[k].is_punct('(')) else { return out };
    let close = parse::match_delim(toks, open);
    if close >= b0 {
        return out;
    }
    let mut k = open + 1;
    while k < close {
        let named = toks[k].kind == TokKind::Ident
            && !parse::is_keyword(&toks[k].text)
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && !toks[k - 1].is_punct(':');
        if !named {
            k += 1;
            continue;
        }
        // The type span runs to the next depth-0 comma (commas inside a
        // generic's angles may cut it short — that only under-taints).
        let mut depth = 0i32;
        let mut j = k + 2;
        let mut src = None;
        while j < close {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                src = Some(Src {
                    kind: K_UNORD,
                    tok: j,
                    line: t.line,
                    desc: format!("`{}`-typed parameter `{}`", t.text, toks[k].text),
                });
            }
            j += 1;
        }
        if let Some(s) = src {
            out.push(Local {
                name: toks[k].text.clone(),
                from: b0,
                until: usize::MAX,
                taint: Taint { cause: Cause::Direct(s), via_locals: Vec::new() },
                root: K_UNORD,
            });
        }
        k = j + 1;
    }
    out
}

/// Token end of an assignment RHS starting at `from`: the depth-0 `;`,
/// `,`, or closing delimiter.
pub(crate) fn rhs_end(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return if j > from { Some(j - 1) } else { None };
                    }
                    depth -= 1;
                }
                ";" | "," if depth == 0 => {
                    return if j > from { Some(j - 1) } else { None };
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{FileUnit, Graph};

    fn unit(path: &str, src: &str) -> FileUnit {
        FileUnit::new(path.to_string(), src)
    }

    fn run(units: &[FileUnit]) -> (Vec<Finding>, Vec<Option<TaintSummary>>) {
        let graph = Graph::build(units);
        analyze(units, &graph)
    }

    #[test]
    fn direct_wall_clock_into_digest_fold_fires() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "pub struct Fnv64(u64); impl Fnv64 { pub fn write_u64(&mut self, v: u64) {} } \
             pub fn fold() { let mut h = Fnv64(0); \
             let t = std::time::Instant::now().elapsed().as_nanos() as u64; h.write_u64(t); }",
        )];
        let (findings, _) = run(&units);
        let f = findings.iter().find(|f| f.rule == id::DIGEST_TAINT).expect("digest-taint");
        assert!(f.message.contains("wall-clock"), "{}", f.message);
        assert!(f.message.contains("local `t`"), "{}", f.message);
    }

    #[test]
    fn two_hop_flow_reports_the_call_path() {
        let units = [
            unit(
                "crates/alpha/src/lib.rs",
                "pub fn now_nanos() -> u64 { \
                 std::time::Instant::now().elapsed().as_nanos() as u64 }\n\
                 pub fn stamp() -> u64 { now_nanos() ^ 1 }",
            ),
            unit(
                "crates/beta/src/lib.rs",
                "use alpha::stamp; pub struct Fnv64(u64); \
                 impl Fnv64 { pub fn write_u64(&mut self, v: u64) {} } \
                 pub fn fold() { let mut h = Fnv64(0); let s = alpha::stamp(); h.write_u64(s); }",
            ),
        ];
        let (findings, summaries) = run(&units);
        let f = findings.iter().find(|f| f.rule == id::DIGEST_TAINT).expect("digest-taint");
        for hop in ["now_nanos", "stamp", "local `s`", "->"] {
            assert!(f.message.contains(hop), "missing {hop} in: {}", f.message);
        }
        // `stamp` carries an interprocedural summary via `now_nanos`.
        let stamped = summaries
            .iter()
            .flatten()
            .any(|s| s.kind == K_WALL && s.via.is_some() && s.what.contains("now_nanos"));
        assert!(stamped, "{summaries:?}");
    }

    #[test]
    fn sorted_unordered_local_is_sanitized() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "pub struct Fnv64(u64); impl Fnv64 { pub fn write_u64(&mut self, v: u64) {} } \
             pub fn fold(m: &std::collections::HashMap<u64, u64>) { let mut h = Fnv64(0); \
             let mut keys: Vec<u64> = m.keys().copied().collect(); keys.sort_unstable(); \
             for k in keys { h.write_u64(k); } }",
        )];
        let (findings, _) = run(&units);
        assert!(
            findings.iter().all(|f| f.rule != id::DIGEST_TAINT),
            "sorted keys are deterministic: {findings:?}"
        );
    }

    #[test]
    fn unsorted_unordered_local_fires() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "pub struct Fnv64(u64); impl Fnv64 { pub fn write_u64(&mut self, v: u64) {} } \
             pub fn fold(m: &std::collections::HashMap<u64, u64>) { let mut h = Fnv64(0); \
             let keys: Vec<u64> = m.keys().copied().collect(); \
             for k in keys { h.write_u64(k); } }",
        )];
        let (findings, _) = run(&units);
        assert!(findings.iter().any(|f| f.rule == id::DIGEST_TAINT), "{findings:?}");
    }

    #[test]
    fn field_laundering_is_tracked() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "pub struct Fnv64(u64); impl Fnv64 { pub fn write_u64(&mut self, v: u64) {} } \
             pub struct Cache { pub stamp: u64 } \
             impl Cache { pub fn refresh(&mut self) { \
             let t = std::time::Instant::now().elapsed().as_nanos() as u64; self.stamp = t; } } \
             pub fn fold(c: &Cache) { let mut h = Fnv64(0); h.write_u64(c.stamp); }",
        )];
        let (findings, _) = run(&units);
        let f = findings.iter().find(|f| f.rule == id::DIGEST_TAINT).expect("laundered taint");
        assert!(f.message.contains("field `.stamp`"), "{}", f.message);
    }

    #[test]
    fn rng_lineage_flags_loop_index_seeds_only() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "pub fn seeds(master_seed: u64) { for i in 0..4u64 { \
             let bad = Stream::from_seed(i); \
             let good = Stream::from_seed(master_seed); \
             let lit = Stream::from_seed(42); } }\n\
             #[cfg(test)] mod tests { #[test] fn t() { let x = Stream::from_seed(7 + 1); } }",
        )];
        let (findings, _) = run(&units);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == id::RNG_LINEAGE).collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("from_seed(i)"), "{}", hits[0].message);
    }

    #[test]
    // Not named `golden_*`: a fn declared with that prefix would itself
    // trip `golden-regen-note` (and the flow golden-sink gate) when
    // fs-lint lints this file.
    fn assertions_on_goldens_and_bench_rows_are_sinks() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "const GOLDEN_X: u64 = 7; \
             pub fn golden_check() { \
             let t = std::time::Instant::now().elapsed().as_nanos() as u64; \
             assert_eq!(t, GOLDEN_X); } \
             pub fn bench() { \
             let t = std::time::Instant::now().elapsed().as_nanos() as u64; \
             let f = Finding::new(t); }",
        )];
        let (findings, _) = run(&units);
        let digest: Vec<_> = findings.iter().filter(|f| f.rule == id::DIGEST_TAINT).collect();
        assert!(digest.iter().any(|f| f.message.contains("golden assertion")), "{digest:?}");
        assert!(digest.iter().any(|f| f.message.contains("Finding::new")), "{digest:?}");
    }

    #[test]
    fn oracle_taint_fires_only_through_oracle_references() {
        let units = [
            unit(
                "crates/alpha/src/oracle.rs",
                "pub fn check_conserved(total: u64) -> bool { total == 0 }",
            ),
            unit(
                "crates/alpha/src/run.rs",
                "use crate::oracle; pub fn verdict() { \
                 let t = std::time::Instant::now().elapsed().as_nanos() as u64; \
                 let ok = oracle::check_conserved(t); }",
            ),
            unit(
                "crates/beta/src/lib.rs",
                "pub fn check_conserved(total: u64) -> bool { total == 0 } \
                 pub fn local_use() { \
                 let t = std::time::Instant::now().elapsed().as_nanos() as u64; \
                 let ok = check_conserved(t); }",
            ),
        ];
        let (findings, _) = run(&units);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == id::ORACLE_TAINT).collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].path.ends_with("run.rs"), "{hits:?}");
    }

    #[test]
    fn clean_code_has_no_summaries_or_findings() {
        let units = [unit(
            "crates/alpha/src/lib.rs",
            "pub struct Fnv64(u64); impl Fnv64 { pub fn write_u64(&mut self, v: u64) {} } \
             pub fn fold(vals: &[u64]) { let mut h = Fnv64(0); \
             for v in vals { h.write_u64(*v); } }",
        )];
        let (findings, summaries) = run(&units);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(summaries.iter().all(Option::is_none));
    }
}
