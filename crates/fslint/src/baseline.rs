//! Finding baselines: adopt the linter on a dirty tree without losing the
//! gate on *new* debt.
//!
//! `fs-lint --write-baseline FILE` records the current findings grouped by
//! `(rule, path)` with a count. A later run with `--baseline FILE` then:
//!
//! * **add semantics** — any finding beyond a key's recorded count fails
//!   the gate and is reported normally; the baseline never grows by itself;
//! * **remove semantics** — keys whose findings have (partly) disappeared
//!   are reported as *stale* so the baseline can be re-written smaller, but
//!   they do not fail the gate.
//!
//! Counts are keyed on `(rule, path)` rather than line numbers so that
//! unrelated edits shifting a file do not churn the baseline; the cost is
//! that a fix and a regression in the same file cancel out, which is why
//! stale entries are surfaced on every run.
//!
//! The file is JSON, read back by the hand-rolled parser below (this crate
//! builds offline, with no serde):
//!
//! ```text
//! { "baseline": [ {"rule": "panic-path", "path": "crates/x.rs", "count": 3} ] }
//! ```

use crate::rules::Finding;
use std::collections::BTreeMap;

/// A recorded set of accepted findings, counted per `(rule, path)`.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// The result of filtering a run through a baseline.
#[derive(Debug)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// `(rule, path, unused)` keys whose recorded count exceeds what the
    /// run produced; the baseline should be re-written without them.
    pub stale: Vec<(String, String, u64)>,
}

impl Baseline {
    /// Builds a baseline covering exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule.to_string(), f.path.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of `(rule, path)` keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline covers nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(rule, path)` keys this baseline records debt for. The engine
    /// uses these to spot suppressions that only silence baselined
    /// findings ([`crate::rules::id::SUPPRESSION_STALE`]).
    pub fn keys(&self) -> impl Iterator<Item = &(String, String)> {
        self.entries.keys()
    }

    /// Splits `findings` into new (beyond the recorded counts) and reports
    /// under-used keys as stale.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineDiff {
        let mut used: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut new = Vec::new();
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone());
            let budget = self.entries.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_insert(0);
            if *u < budget {
                *u += 1;
            } else {
                new.push(f);
            }
        }
        let mut stale = Vec::new();
        for ((rule, path), &count) in &self.entries {
            let u = used.get(&(rule.clone(), path.clone())).copied().unwrap_or(0);
            if u < count {
                stale.push((rule.clone(), path.clone(), count - u));
            }
        }
        BaselineDiff { new, stale }
    }

    /// A copy of this baseline with the `stale` unused counts subtracted;
    /// keys whose count reaches zero are dropped entirely. This is
    /// `--prune-baseline`: re-recording only the debt that still exists,
    /// without re-admitting anything new.
    pub fn pruned(&self, stale: &[(String, String, u64)]) -> Baseline {
        let mut entries = self.entries.clone();
        for (rule, path, unused) in stale {
            let key = (rule.clone(), path.clone());
            let emptied = entries
                .get_mut(&key)
                .map(|c| {
                    *c = c.saturating_sub(*unused);
                    *c == 0
                })
                .unwrap_or(false);
            if emptied {
                entries.remove(&key);
            }
        }
        Baseline { entries }
    }

    /// Renders the baseline file.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"baseline\": [");
        for (i, ((rule, path), count)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"count\": {}}}",
                json_str(rule),
                json_str(path),
                count
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a baseline file written by [`render`](Self::render).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.ws();
        p.eat(b'{')?;
        let key = p.string()?;
        if key != "baseline" {
            return Err(format!("expected \"baseline\" key, found {key:?}"));
        }
        p.eat(b':')?;
        p.eat(b'[')?;
        let mut entries = BTreeMap::new();
        p.ws();
        if !p.peek(b']') {
            loop {
                let (rule, path, count) = p.entry()?;
                *entries.entry((rule, path)).or_insert(0) += count;
                p.ws();
                if p.peek(b',') {
                    p.eat(b',')?;
                } else {
                    break;
                }
            }
        }
        p.eat(b']')?;
        p.eat(b'}')?;
        Ok(Baseline { entries })
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader for the one document shape this module writes.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn peek(&mut self, c: u8) -> bool {
        self.ws();
        self.b.get(self.i) == Some(&c)
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.b.get(self.i).ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex =
                                self.b.get(self.i..self.i + 4).ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a count at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())
    }

    /// One `{"rule": …, "path": …, "count": …}` object, keys in any order.
    fn entry(&mut self) -> Result<(String, String, u64), String> {
        self.eat(b'{')?;
        let (mut rule, mut path, mut count) = (None, None, None);
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "path" => path = Some(self.string()?),
                "count" => count = Some(self.number()?),
                other => return Err(format!("unknown baseline key {other:?}")),
            }
            if self.peek(b',') {
                self.eat(b',')?;
            } else {
                break;
            }
        }
        self.eat(b'}')?;
        Ok((
            rule.ok_or("entry missing \"rule\"")?,
            path.ok_or("entry missing \"path\"")?,
            count.unwrap_or(1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding { path: path.to_string(), line: 1, rule, message: String::new() }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = Baseline::from_findings(&[
            finding("panic-path", "crates/a.rs"),
            finding("panic-path", "crates/a.rs"),
            finding("float-total-order", "crates/b \"quoted\".rs"),
        ]);
        let parsed = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn covered_findings_pass_and_excess_is_new() {
        let b = Baseline::from_findings(&[finding("panic-path", "crates/a.rs")]);
        let diff = b.apply(vec![
            finding("panic-path", "crates/a.rs"),
            finding("panic-path", "crates/a.rs"),
        ]);
        assert_eq!(diff.new.len(), 1, "one finding beyond the recorded count");
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn different_rule_or_path_is_not_covered() {
        let b = Baseline::from_findings(&[finding("panic-path", "crates/a.rs")]);
        assert_eq!(b.apply(vec![finding("panic-path", "crates/b.rs")]).new.len(), 1);
        assert_eq!(b.apply(vec![finding("float-total-order", "crates/a.rs")]).new.len(), 1);
    }

    #[test]
    fn fixed_findings_surface_as_stale() {
        let b = Baseline::from_findings(&[
            finding("panic-path", "crates/a.rs"),
            finding("panic-path", "crates/a.rs"),
        ]);
        let diff = b.apply(vec![finding("panic-path", "crates/a.rs")]);
        assert!(diff.new.is_empty());
        assert_eq!(diff.stale, vec![("panic-path".into(), "crates/a.rs".into(), 1)]);
    }

    #[test]
    fn pruning_subtracts_stale_counts_and_drops_empty_keys() {
        let b = Baseline::from_findings(&[
            finding("panic-path", "crates/a.rs"),
            finding("panic-path", "crates/a.rs"),
            finding("float-total-order", "crates/b.rs"),
        ]);
        // One of the two a.rs findings is fixed; b.rs is fully fixed.
        let diff = b.apply(vec![finding("panic-path", "crates/a.rs")]);
        let pruned = b.pruned(&diff.stale);
        assert_eq!(pruned.len(), 1, "{pruned:?}");
        assert!(pruned.apply(vec![finding("panic-path", "crates/a.rs")]).new.is_empty());
        assert_eq!(pruned.apply(vec![finding("float-total-order", "crates/b.rs")]).new.len(), 1);
    }

    #[test]
    fn empty_baseline_parses_and_covers_nothing() {
        let b = Baseline::parse("{ \"baseline\": [] }").expect("parses");
        assert!(b.is_empty());
        assert_eq!(b.apply(vec![finding("panic-path", "x.rs")]).new.len(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        for bad in ["", "{}", "{\"baseline\": [{\"rule\": 3}]}", "{\"other\": []}"] {
            assert!(Baseline::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn missing_count_defaults_to_one() {
        let b = Baseline::parse("{\"baseline\": [{\"rule\": \"panic-path\", \"path\": \"a.rs\"}]}")
            .expect("parses");
        assert!(b.apply(vec![finding("panic-path", "a.rs")]).new.is_empty());
    }
}
