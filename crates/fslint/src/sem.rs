//! The semantic rules: event-ordering tiebreaks, float total-order, and
//! panic-path determinism.
//!
//! These three rules run on the parsed shape of each file
//! ([`crate::parse`]) rather than on raw tokens, because what they check is
//! contextual: the same `sort_by_key` is fine in a report formatter and a
//! determinism hazard in the event queue; the same `unwrap` is fine in a
//! test and an unscheduled fail-stop in injector-reachable code.
//!
//! ## Scopes
//!
//! Where each rule applies is decided by a [`crate::graph::FileScope`],
//! which the engine derives from the workspace call graph
//! ([`crate::graph`]):
//!
//! * **Scheduling set `S`** (`stable-tiebreak`, full battery): functions
//!   that own or drive an event queue, per the call graph. In the rest of
//!   the injector-reachable set only the *weak* check runs — a key closure
//!   that is literally a bare time field (`|e| e.at`) — because a
//!   single-key selection in ordinary model code is not a scheduling
//!   hazard. `Ord` impls are in scope when their type is a `BinaryHeap`
//!   element anywhere in the workspace; heap declarations are always in
//!   scope (every `BinaryHeap` is scheduling infrastructure).
//! * **Injector-reachable set `R`** (`panic-path`): the fixpoint from the
//!   injector/detector/scheduler entry points. Test modules are exempt: a
//!   test that panics is a test that fails, which is the point.
//! * **Digest-feeding code** (`float-total-order`): everywhere. Every float
//!   in this workspace is either model state or a measurement, and both
//!   end up in goldens or the campaign digest.
//!
//! When the scanned set has no entry points (single-file runs, fixture
//! subsets) the engine passes the empty scope
//! ([`crate::graph::FileScope::unscoped`]): `S` and `R` are empty and
//! only the everywhere rules apply.
//!
//! ## Documented exemptions
//!
//! `panic-path` deliberately does not flag `assert!`/`debug_assert!`
//! (asserted contracts are *specified* fail-stops, documented under
//! `# Panics`, and the suite leans on them), literal subscripts like
//! `w[0]` (fixed-shape data: `windows(2)` pairs, parity pairs, statically
//! sized tables), or subscripts that are a bare identifier bound in the
//! enclosing function — a parameter, `let` binding, `for`-loop variable,
//! or closure parameter — because a bare bound index was established one
//! hop away in scope and re-litigating it at every use is noise. What
//! remains — `unwrap`, `expect`, `panic!`-family macros, and *computed*
//! subscripts (`v[i - 1]`, `v[self.cursor]`, `v[idx % n]`) — each encodes
//! an arithmetic or state claim an injected fault can falsify, and must be
//! handled or carry a written `fslint: allow(panic-path)` reason.

use crate::graph::FileScope;
use crate::lexer::{TokKind, Token};
use crate::parse::{self, FileModel, MethodCall};
use crate::rules::{id, FileCtx, Finding};

/// Identifier names a comparator key may end with that mark it as "the
/// event's time": ordering on one of these alone leaves ties to container
/// order.
const TIME_KEYS: &[&str] = &["at", "time", "when", "deadline", "arrival", "start", "finish", "t"];

/// Runs the three semantic rules over one parsed file under `scope`.
pub fn check_file(
    ctx: &FileCtx<'_>,
    model: &FileModel,
    scope: &FileScope,
    findings: &mut Vec<Finding>,
) {
    float_total_order(ctx, model, findings);
    stable_tiebreak(ctx, model, scope, findings);
    panic_path(ctx, model, scope, findings);
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileCtx<'_>,
    line: u32,
    rule: &'static str,
    msg: String,
) {
    findings.push(Finding { path: ctx.path.clone(), line, rule, message: msg });
}

// ---------------------------------------------------------------------------
// stable-tiebreak
// ---------------------------------------------------------------------------

/// Sort/selection methods whose first argument is a *key* closure.
const KEYED: &[&str] = &["sort_by_key", "sort_unstable_by_key", "min_by_key", "max_by_key"];
/// Sort/selection methods whose first argument is a *comparator* closure.
const COMPARED: &[&str] = &["sort_by", "sort_unstable_by", "min_by", "max_by"];

fn stable_tiebreak(
    ctx: &FileCtx<'_>,
    model: &FileModel,
    scope: &FileScope,
    findings: &mut Vec<Finding>,
) {
    let toks = &ctx.lexed.tokens;
    for call in &model.calls {
        if KEYED.contains(&call.name.as_str()) {
            let Some(body) = closure_body(toks, call) else { continue };
            if scope.in_sched(call.dot) {
                if !is_tuple_expr(toks, body) {
                    push(
                        findings,
                        ctx,
                        call.line,
                        id::STABLE_TIEBREAK,
                        format!(
                            "`{}` keys scheduling order on a single expression; equal keys fall \
                             back to container/iterator order, which is insertion-order dependence \
                             the campaign digest cannot localise — key on a tuple with a stable \
                             secondary (sequence number, index, or label)",
                            call.name
                        ),
                    );
                } else if span_mentions_float(toks, body, model, call.dot) {
                    push_float_key(findings, ctx, call.line, &call.name);
                }
            } else if scope.weak_tiebreak(call.dot) && bare_time_key(toks, body) {
                push(
                    findings,
                    ctx,
                    call.line,
                    id::STABLE_TIEBREAK,
                    format!(
                        "`{}` in injector-reachable code keys on a bare time field; equal \
                         times fall back to container order, which an injected stutter can \
                         reorder — key on a (time, stable-secondary) tuple",
                        call.name
                    ),
                );
            }
        } else if COMPARED.contains(&call.name.as_str()) {
            if !scope.in_sched(call.dot) {
                continue;
            }
            let Some(body) = closure_body(toks, call) else { continue };
            check_comparator_body(ctx, model, toks, body, call.line, &call.name, findings);
        }
    }
    // `impl Ord`/`impl PartialOrd` for heap-element types: the `cmp` body
    // must not order on a bare time field.
    for im in &model.ord_impls {
        if !scope.ord_in_scope(&im.type_name) {
            continue;
        }
        check_comparator_body(
            ctx,
            model,
            toks,
            im.body,
            im.line,
            &format!("impl {} for {}", im.trait_name, im.type_name),
            findings,
        );
    }
    // A heap keyed on bare SimTime pops equal-time entries in heap order.
    for heap in &model.heaps {
        if !scope.heap_in_scope(heap.angles.0) {
            continue;
        }
        let (open, close) = heap.angles;
        let mentions_time = toks[open..=close].iter().any(|t| t.is_ident("SimTime"));
        // Any comma in the element type means the time is paired with
        // something — `Reverse<(SimTime, u64)>` nests the tuple arbitrarily
        // deep, so depth is not checked here.
        let has_comma = toks[open..=close].iter().any(|t| t.is_punct(','));
        if mentions_time && !has_comma {
            push(
                findings,
                ctx,
                heap.line,
                id::STABLE_TIEBREAK,
                "`BinaryHeap` keyed on `SimTime` alone pops equal-time entries in arbitrary \
                 heap order; pair the time with a sequence number (`(SimTime, u64)`)"
                    .to_string(),
            );
        }
    }
}

/// Flags a comparator body (closure or `cmp` impl) that orders on a bare
/// time field or on floats.
fn check_comparator_body(
    ctx: &FileCtx<'_>,
    model: &FileModel,
    toks: &[Token],
    body: (usize, usize),
    line: u32,
    what: &str,
    findings: &mut Vec<Finding>,
) {
    let has_then = toks[body.0..=body.1]
        .iter()
        .any(|t| t.is_ident("then") || t.is_ident("then_with") || t.is_ident("then_cmp"));
    // Any float comparison inside a scheduling comparator is a finding,
    // tiebreak or not: float keys belong outside the scheduler.
    let float_cmp = model.calls.iter().any(|c| {
        c.dot >= body.0 && c.dot <= body.1 && matches!(c.name.as_str(), "partial_cmp" | "total_cmp")
    }) || span_mentions_float(toks, body, model, body.0);
    if float_cmp {
        push_float_key(findings, ctx, line, what);
        return;
    }
    if has_then {
        return;
    }
    // `X.cmp(&Y)` where X is a non-tuple chain ending in a time name.
    for c in model.calls.iter().filter(|c| c.name == "cmp") {
        if c.dot < body.0 || c.dot > body.1 {
            continue;
        }
        if receiver_is_tuple(toks, c.dot) {
            continue;
        }
        if let Some(last) = receiver_tail_ident(toks, c.dot) {
            if TIME_KEYS.contains(&last.as_str()) {
                push(
                    findings,
                    ctx,
                    c.line,
                    id::STABLE_TIEBREAK,
                    format!(
                        "{what} orders on `{last}` alone; same-`{last}` ties are broken by \
                         insertion order — compare a (time, sequence) tuple, or chain \
                         `.then(...)` on a stable key"
                    ),
                );
            }
        }
    }
}

/// True when a key-closure body is a bare chain ending in a time name
/// (`|e| e.at`, `|e| *e.start`) — the weak-scope tiebreak check.
fn bare_time_key(toks: &[Token], (start, end): (usize, usize)) -> bool {
    let plain_chain = toks[start..=end].iter().all(|t| match t.kind {
        TokKind::Ident => true,
        TokKind::Punct => matches!(t.text.as_str(), "." | "&" | "*"),
        _ => false,
    });
    plain_chain && toks[end].kind == TokKind::Ident && TIME_KEYS.contains(&toks[end].text.as_str())
}

fn push_float_key(findings: &mut Vec<Finding>, ctx: &FileCtx<'_>, line: u32, what: &str) {
    push(
        findings,
        ctx,
        line,
        id::STABLE_TIEBREAK,
        format!(
            "{what} keys scheduling order on a float; rounding and NaN make float order a \
             determinism hazard in a scheduler — use an integer key (e.g. SimTime nanos) \
             with a stable tiebreak"
        ),
    );
}

// ---------------------------------------------------------------------------
// float-total-order
// ---------------------------------------------------------------------------

fn float_total_order(ctx: &FileCtx<'_>, model: &FileModel, findings: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for call in &model.calls {
        if call.name == "partial_cmp" {
            let how = match call.chained.as_deref() {
                Some(m @ ("unwrap" | "expect")) => format!(
                    "`partial_cmp(..).{m}(..)` panics on NaN — the one input a stuttering \
                     component is most likely to produce"
                ),
                Some(m @ ("unwrap_or" | "unwrap_or_else")) => format!(
                    "`partial_cmp(..).{m}(..)` silently gives NaN an arbitrary rank, \
                     reordering the digest with no diagnostic"
                ),
                _ => "`partial_cmp` at a comparator site imposes only a partial order".to_string(),
            };
            push(
                findings,
                ctx,
                call.line,
                id::FLOAT_TOTAL_ORDER,
                format!(
                    "{how}; use `total_cmp` (or an integer key), or say why NaN is \
                         impossible with `fslint: allow(float-total-order)`"
                ),
            );
        } else if matches!(call.name.as_str(), "fold" | "reduce") {
            let (open, close) = call.args;
            let absorbing = toks[open..=close].windows(4).find(|w| {
                (w[0].is_ident("f64") || w[0].is_ident("f32"))
                    && w[1].is_punct(':')
                    && w[2].is_punct(':')
                    && (w[3].is_ident("max") || w[3].is_ident("min"))
            });
            if let Some(w) = absorbing {
                push(
                    findings,
                    ctx,
                    call.line,
                    id::FLOAT_TOTAL_ORDER,
                    format!(
                        "`{}::{}` inside a `{}` silently absorbs NaN (IEEE minNum/maxNum), so \
                         a poisoned measurement vanishes from the digest; reduce with \
                         `min_by`/`max_by` + `total_cmp`, or give a written reason",
                        w[0].text, w[3].text, call.name
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

/// Macros that are unconditional panics (the `assert!` family is exempt —
/// see module docs).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_path(
    ctx: &FileCtx<'_>,
    model: &FileModel,
    scope: &FileScope,
    findings: &mut Vec<Finding>,
) {
    let toks = &ctx.lexed.tokens;
    let in_test =
        |i: usize| model.in_test_span(i) || model.enclosing_fn(i).is_some_and(|f| f.in_test);
    let live = |i: usize| scope.in_reach(i) && !in_test(i);
    for call in &model.calls {
        if matches!(call.name.as_str(), "unwrap" | "expect") && live(call.dot) {
            push(
                findings,
                ctx,
                call.line,
                id::PANIC_PATH,
                format!(
                    "`{}` can panic in injector-reachable code; a panic under an injected \
                     fault is a fail-stop the model never scheduled — handle the `None`/`Err` \
                     arm, or document the invariant with `fslint: allow(panic-path)`",
                    call.name
                ),
            );
        }
    }
    for mac in &model.macros {
        if PANIC_MACROS.contains(&mac.name.as_str()) && live(mac.tok) {
            push(
                findings,
                ctx,
                mac.line,
                id::PANIC_PATH,
                format!(
                    "`{}!` is an unconditional panic in injector-reachable code — return an \
                     error instead, or document why it is unreachable with \
                     `fslint: allow(panic-path)`",
                    mac.name
                ),
            );
        }
    }
    for ix in &model.indexings {
        let (open, close) = ix.brackets;
        if close <= open + 1 || !live(open) {
            continue;
        }
        let inner = &toks[open + 1..close];
        // Literal subscripts into fixed-shape data are exempt.
        if inner.len() == 1 && inner[0].kind == TokKind::Num {
            continue;
        }
        // Range slicing is out of scope for this rule.
        if inner.windows(2).any(|w| w[0].is_punct('.') && w[1].is_punct('.')) {
            continue;
        }
        // A bare locally-bound identifier (param, let, loop var, closure
        // param) was established in scope; only computed subscripts carry
        // a claim of their own.
        if inner.len() == 1 && inner[0].kind == TokKind::Ident {
            let bound =
                model.enclosing_fn(open).is_some_and(|f| f.bound_vars.contains(&inner[0].text));
            if bound {
                continue;
            }
        }
        push(
            findings,
            ctx,
            ix.line,
            id::PANIC_PATH,
            "subscript can panic out-of-bounds in injector-reachable code; under an \
             injected fault that is an unscheduled fail-stop — use `.get(..)` with explicit \
             handling, or document the bound with `fslint: allow(panic-path)`"
                .to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Shared token-shape helpers
// ---------------------------------------------------------------------------

/// The body span of a call's closure argument: tokens between the closing
/// `|` of the parameter list and the end of the argument list. `None` when
/// the argument is not a closure literal (e.g. a named comparator fn, which
/// carries its ordering contract in its own definition).
fn closure_body(toks: &[Token], call: &MethodCall) -> Option<(usize, usize)> {
    let (open, close) = call.args;
    if close <= open + 1 {
        return None;
    }
    let mut i = open + 1;
    if toks[i].is_ident("move") {
        i += 1;
    }
    if !toks[i].is_punct('|') {
        return None;
    }
    let mut j = i + 1;
    while j < close && !toks[j].is_punct('|') {
        j += 1;
    }
    (j + 1 < close).then_some((j + 1, close - 1))
}

/// True when a span is a parenthesised tuple: `( … , … )` with the comma at
/// depth 1. A block body `{ …; (a, b) }` counts through its trailing tuple
/// expression — the value the block evaluates to.
fn is_tuple_expr(toks: &[Token], (start, end): (usize, usize)) -> bool {
    if toks[start].is_punct('(') && parse::match_delim(toks, start) == end {
        return has_toplevel_comma(toks, (start, end));
    }
    if toks[start].is_punct('{')
        && parse::match_delim(toks, start) == end
        && end >= 2
        && toks[end - 1].is_punct(')')
    {
        // Scan back to the `(` matching the block's last token.
        let mut depth = 0i32;
        let mut i = end - 1;
        loop {
            if toks[i].is_punct(')') {
                depth += 1;
            } else if toks[i].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i <= start {
                return false;
            }
            i -= 1;
        }
        // It must open an expression statement, not a call's argument list.
        let opens_expr = i == start + 1 || toks[i - 1].is_punct(';') || toks[i - 1].is_punct('{');
        return opens_expr && has_toplevel_comma(toks, (i, end - 1));
    }
    false
}

/// True if the delimited span `[start, end]` contains a comma at depth 1.
fn has_toplevel_comma(toks: &[Token], (start, end): (usize, usize)) -> bool {
    let mut depth = 0i32;
    for t in &toks[start..=end] {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 1 => return true,
            _ => {}
        }
    }
    false
}

/// True when the receiver of the `.` at `dot` is a parenthesised tuple.
fn receiver_is_tuple(toks: &[Token], dot: usize) -> bool {
    if dot == 0 || !toks[dot - 1].is_punct(')') {
        return false;
    }
    // Scan back to the matching `(`.
    let mut depth = 0i32;
    let mut i = dot - 1;
    loop {
        match toks[i].text.as_str() {
            ")" if toks[i].kind == TokKind::Punct => depth += 1,
            "(" if toks[i].kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return has_toplevel_comma(toks, (i, dot - 1));
                }
            }
            _ => {}
        }
        if i == 0 {
            return false;
        }
        i -= 1;
    }
}

/// The last identifier of the receiver chain ending just before `dot`
/// (`other.entry.at.cmp(..)` → `Some("at")`).
fn receiver_tail_ident(toks: &[Token], dot: usize) -> Option<String> {
    let prev = toks.get(dot.checked_sub(1)?)?;
    (prev.kind == TokKind::Ident).then(|| prev.text.clone())
}

/// True if the span references a float literal or an identifier the
/// enclosing function knows to be float-typed.
fn span_mentions_float(
    toks: &[Token],
    (start, end): (usize, usize),
    model: &FileModel,
    at: usize,
) -> bool {
    let floats = model.enclosing_fn(at).map(|f| &f.float_vars);
    toks[start..=end].iter().any(|t| match t.kind {
        TokKind::Ident => {
            matches!(t.text.as_str(), "f64" | "f32") || floats.is_some_and(|s| s.contains(&t.text))
        }
        TokKind::Num => t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ctx = FileCtx { path: path.to_string(), lexed: &lexed };
        let model = parse::parse(&lexed);
        let mut findings = Vec::new();
        // These unit tests exercise the rule bodies, not the graph (that
        // is tests/graph.rs territory), so the path picks a whole-file
        // scope standing in for what the graph derives in the real tree:
        // simcore is scheduling code, the injector-driven model crates
        // are reachable, everything else gets only the everywhere rules.
        let scope = if path.contains("crates/simcore/src/") {
            FileScope::whole_file(true, true)
        } else if ["raidsim", "perfplane", "adapt", "stutter"]
            .iter()
            .any(|c| path.contains(&format!("crates/{c}/src/")))
        {
            FileScope::whole_file(false, true)
        } else {
            FileScope::unscoped()
        };
        check_file(&ctx, &model, &scope, &mut findings);
        findings
    }

    const SCHED: &str = "crates/simcore/src/sim.rs";

    #[test]
    fn single_key_sort_in_scheduler_is_flagged() {
        let f = run(SCHED, "fn f() { q.sort_by_key(|e| e.at); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, id::STABLE_TIEBREAK);
    }

    #[test]
    fn tuple_key_sort_in_scheduler_is_clean() {
        assert!(run(SCHED, "fn f() { q.sort_by_key(|e| (e.at, e.seq)); }").is_empty());
    }

    #[test]
    fn min_by_key_selection_tie_is_flagged() {
        let f = run(SCHED, "fn f() { let p = (0..n).min_by_key(|&i| dist(i)); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn block_bodied_tuple_key_is_clean() {
        let src = "fn f() { let p = (0..n).min_by_key(|&i| { let r = q[i]; (d(r.lba), r.at) }); }";
        assert!(run(SCHED, src).is_empty(), "{:?}", run(SCHED, src));
    }

    #[test]
    fn same_code_outside_scheduling_paths_is_clean() {
        assert!(run("crates/bench/src/report.rs", "fn f() { q.sort_by_key(|e| e.at); }").is_empty());
    }

    #[test]
    fn ord_impl_on_bare_time_is_flagged_and_tuple_ok() {
        let bad = "impl Ord for E { fn cmp(&self, o: &Self) -> O { self.at.cmp(&o.at) } }";
        let good =
            "impl Ord for E { fn cmp(&self, o: &Self) -> O { (o.at, o.seq).cmp(&(self.at, self.seq)) } }";
        assert_eq!(run(SCHED, bad).len(), 1);
        assert!(run(SCHED, good).is_empty());
    }

    #[test]
    fn heap_on_bare_simtime_is_flagged() {
        let f = run(SCHED, "fn f() { let h: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(run(
            SCHED,
            "fn f() { let h: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new(); }"
        )
        .is_empty());
    }

    #[test]
    fn float_keyed_scheduling_sort_is_flagged() {
        let f = run(SCHED, "fn f(w: f64) { q.sort_by_key(|e| (w * e.x, e.seq)); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("float"));
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged_everywhere() {
        let f = run(
            "crates/bench/src/report.rs",
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );
        assert_eq!(f.iter().filter(|f| f.rule == id::FLOAT_TOTAL_ORDER).count(), 1, "{f:?}");
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        assert!(
            run("crates/bench/src/report.rs", "fn f() { v.sort_by(f64::total_cmp); }").is_empty()
        );
    }

    #[test]
    fn nan_absorbing_fold_is_flagged() {
        let f = run(
            "crates/bench/src/report.rs",
            "fn f() { let m = v.iter().fold(f64::INFINITY, f64::min); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("NaN"));
    }

    #[test]
    fn unwrap_in_injector_reachable_lib_code_is_flagged() {
        let f = run("crates/raidsim/src/reads.rs", "fn f() { x.unwrap(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, id::PANIC_PATH);
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        assert!(run(
            "crates/raidsim/src/reads.rs",
            "#[cfg(test)] mod tests { #[test] fn t() { x.unwrap(); } }"
        )
        .is_empty());
    }

    #[test]
    fn bound_ident_subscripts_are_exempt_but_computed_are_not() {
        let loop_var = "fn f(v: &[u64]) { for i in 0..v.len() { let x = v[i]; } }";
        let param = "fn f(v: &[u64], k: usize) { let x = v[k]; }";
        let let_bound = "fn f(v: &[u64], k: usize) { let j = k % v.len(); let x = v[j]; }";
        let computed = "fn f(v: &[u64], k: usize) { let x = v[k - 1]; }";
        let field = "struct S { c: usize } fn f(v: &[u64], s: &S) { let x = v[s.c]; }";
        assert!(run("crates/adapt/src/txn.rs", loop_var).is_empty());
        assert!(run("crates/adapt/src/txn.rs", param).is_empty());
        assert!(run("crates/adapt/src/txn.rs", let_bound).is_empty());
        assert_eq!(run("crates/adapt/src/txn.rs", computed).len(), 1);
        assert_eq!(run("crates/adapt/src/txn.rs", field).len(), 1);
    }

    #[test]
    fn computed_subscript_is_flagged_and_literal_exempt() {
        let bad = "fn f(v: &[u64]) { let m = v[v.len() / 2]; }";
        let ok = "fn f(w: &[u64]) { let a = w[0] + w[1]; }";
        assert_eq!(run("crates/stutter/src/detect.rs", bad).len(), 1);
        assert!(run("crates/stutter/src/detect.rs", ok).is_empty());
    }

    #[test]
    fn panic_macro_is_flagged_but_assert_is_not() {
        let f = run("crates/simcore/src/sim.rs", "fn f() { assert!(x > 0); panic!(\"boom\"); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("panic"));
    }
}
