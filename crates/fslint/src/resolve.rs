//! Per-crate module resolution for the workspace call graph.
//!
//! The call graph ([`crate::graph`]) keys function nodes on
//! *(crate, module path, name)*. This module recovers those coordinates
//! without `cargo` metadata (the build is offline): a file's module path is
//! derived from its on-disk location, crate names are aliased by the
//! workspace's naming conventions, and `use` declarations are flattened
//! into a per-file import map of canonical absolute paths.
//!
//! * `crates/<c>/src/lib.rs` → crate `c`, module root; `<m>.rs` and
//!   `<m>/mod.rs` → module `[m]`, nested files nest further.
//! * `crates/<c>/src/bin/<b>.rs` → crate `c`, module `[bin, b]` — binary
//!   roots are kept addressable so entry points like the `fs-campaign`
//!   `main` can anchor whole-program rules.
//! * The root package's `src/` tree is crate `fail_stutter` (its lib
//!   name). Anything else (integration tests, examples, stray fixtures)
//!   becomes its own standalone root so its `use other_crate::…` imports
//!   still resolve cross-crate.
//! * A crate directory `d` is importable as `d`, `d` with dashes
//!   underscored, and `fs_<d>` (the `bench` directory builds the
//!   `fs-bench` package, imported as `fs_bench`).
//!
//! Everything here is a conservative approximation: a path that cannot be
//! canonicalised (std, vendored names, macro-generated modules) resolves
//! to `None` and simply contributes no call-graph edge. Inline `mod m {}`
//! blocks share their file's module path.

use crate::parse::UseDecl;
use std::collections::{BTreeMap, BTreeSet};

/// A file's module coordinates: which crate it belongs to and the module
/// path within that crate.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModPath {
    /// Canonical crate key (the directory name under `crates/`, or
    /// `fail_stutter` for the root package, or a standalone-file key).
    pub krate: String,
    /// Module segments within the crate (`[]` for the crate root;
    /// `["bin", "fs-campaign"]` for a binary root).
    pub modules: Vec<String>,
}

impl ModPath {
    /// The absolute form `[krate, modules…]` used as a lookup key.
    pub fn abs(&self) -> Vec<String> {
        let mut v = Vec::with_capacity(1 + self.modules.len());
        v.push(self.krate.clone());
        v.extend(self.modules.iter().cloned());
        v
    }
}

/// Derives a file's [`ModPath`] from its path (workspace-relative or
/// absolute; `/`-separated). Matching is positional on the
/// `crates/<c>/src/` shape — the *last* occurrence wins, so lint-fixture
/// trees that mirror the shape resolve like the real thing.
pub fn module_path(path: &str) -> ModPath {
    let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
    // `crates/<c>/src/…` anywhere in the path (last occurrence wins).
    let hit = (0..comps.len())
        .rev()
        .find(|&i| comps[i] == "crates" && i + 2 < comps.len() && comps[i + 2] == "src");
    if let Some(i) = hit {
        return ModPath { krate: comps[i + 1].to_string(), modules: file_modules(&comps[i + 3..]) };
    }
    // The root package's `src/` tree (workspace-relative paths only).
    if comps.first() == Some(&"src") && comps.len() > 1 {
        return ModPath { krate: "fail_stutter".to_string(), modules: file_modules(&comps[1..]) };
    }
    // Standalone root: integration tests, examples, unmatched files.
    ModPath { krate: path.trim_end_matches(".rs").to_string(), modules: Vec::new() }
}

/// Module segments for the path components below a `src/` root.
fn file_modules(comps: &[&str]) -> Vec<String> {
    let mut mods: Vec<String> = Vec::new();
    for (i, c) in comps.iter().enumerate() {
        if i + 1 == comps.len() {
            let stem = c.trim_end_matches(".rs");
            if stem != "lib" && stem != "main" && stem != "mod" {
                mods.push(stem.to_string());
            }
        } else {
            mods.push((*c).to_string());
        }
    }
    mods
}

/// Workspace-level name tables the canonicaliser consults.
#[derive(Debug, Default)]
pub struct Resolver {
    /// Importable crate name → canonical crate key.
    pub aliases: BTreeMap<String, String>,
    /// Every known absolute module path `[krate, modules…]`.
    pub modules: BTreeSet<Vec<String>>,
}

impl Resolver {
    /// Builds the alias and module tables from the scanned files'
    /// [`ModPath`]s.
    pub fn from_mod_paths(mod_paths: &[ModPath]) -> Resolver {
        let mut res = Resolver::default();
        for mp in mod_paths {
            for alias in crate_aliases(&mp.krate) {
                res.aliases.insert(alias, mp.krate.clone());
            }
            // Register the module and every prefix of it.
            let abs = mp.abs();
            for end in 1..=abs.len() {
                res.modules.insert(abs[..end].to_vec());
            }
        }
        res
    }

    /// Canonicalises a path written at `at` into absolute
    /// `[krate, modules…, item…]` segments. `None` when the head is not
    /// addressable in the scanned workspace (std, unknown crates).
    pub fn canon(&self, at: &ModPath, segs: &[String]) -> Option<Vec<String>> {
        let head = segs.first()?;
        let mut out: Vec<String>;
        let mut rest = segs;
        match head.as_str() {
            "crate" => {
                out = vec![at.krate.clone()];
                rest = &rest[1..];
            }
            "self" => {
                out = at.abs();
                rest = &rest[1..];
            }
            "super" => {
                out = at.abs();
                while rest.first().is_some_and(|s| s == "super") {
                    // Popping past the crate root is unresolvable.
                    if out.len() <= 1 {
                        return None;
                    }
                    out.pop();
                    rest = &rest[1..];
                }
            }
            name => {
                if let Some(k) = self.aliases.get(name) {
                    out = vec![k.clone()];
                } else {
                    // A submodule of the current module, else a root module
                    // of the current crate.
                    let mut sub = at.abs();
                    sub.push(name.to_string());
                    if self.modules.contains(&sub) {
                        out = sub;
                    } else {
                        let root = vec![at.krate.clone(), name.to_string()];
                        if self.modules.contains(&root) {
                            out = root;
                        } else {
                            return None;
                        }
                    }
                }
                rest = &rest[1..];
            }
        }
        out.extend(rest.iter().cloned());
        Some(out)
    }
}

/// The names under which the crate keyed `key` can be imported.
fn crate_aliases(key: &str) -> Vec<String> {
    let underscored = key.replace('-', "_");
    let mut out = vec![key.to_string(), underscored.clone(), format!("fs_{underscored}")];
    out.dedup();
    out
}

/// One file's imports, with targets already canonicalised.
#[derive(Debug, Default)]
pub struct ImportMap {
    /// Visible name → absolute target segments.
    pub named: BTreeMap<String, Vec<String>>,
    /// Absolute module prefixes imported wholesale (`use m::*`).
    pub globs: Vec<Vec<String>>,
}

/// Builds a file's [`ImportMap`] from its flattened `use` items.
pub fn import_map(uses: &[UseDecl], res: &Resolver, at: &ModPath) -> ImportMap {
    let mut map = ImportMap::default();
    for u in uses {
        let Some(abs) = res.canon(at, &u.segs) else { continue };
        if u.glob {
            map.globs.push(abs);
        } else if let Some(name) = u.alias.clone().or_else(|| u.segs.last().cloned()) {
            if name != "_" {
                map.named.insert(name, abs);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp(krate: &str, modules: &[&str]) -> ModPath {
        ModPath {
            krate: krate.to_string(),
            modules: modules.iter().map(|m| m.to_string()).collect(),
        }
    }

    #[test]
    fn file_paths_map_to_module_paths() {
        for (path, want) in [
            ("crates/simcore/src/lib.rs", mp("simcore", &[])),
            ("crates/simcore/src/sim.rs", mp("simcore", &["sim"])),
            ("crates/bench/src/campaign/mod.rs", mp("bench", &["campaign"])),
            ("crates/bench/src/campaign/scenario.rs", mp("bench", &["campaign", "scenario"])),
            ("crates/bench/src/bin/fs-campaign.rs", mp("bench", &["bin", "fs-campaign"])),
            ("src/lib.rs", mp("fail_stutter", &[])),
            (
                "/abs/repo/crates/fslint/tests/fixtures/graph/crates/alpha/src/eng.rs",
                mp("alpha", &["eng"]),
            ),
        ] {
            assert_eq!(module_path(path), want, "{path}");
        }
    }

    #[test]
    fn unmatched_files_are_standalone_roots() {
        let got = module_path("tests/campaign_smoke.rs");
        assert!(got.modules.is_empty());
        assert_eq!(got.krate, "tests/campaign_smoke");
    }

    fn resolver() -> Resolver {
        Resolver::from_mod_paths(&[
            mp("bench", &["campaign", "scenario"]),
            mp("adapt", &["oracle"]),
            mp("simcore", &["prelude"]),
        ])
    }

    #[test]
    fn crate_aliases_cover_dash_and_fs_prefix_forms() {
        let res = resolver();
        for alias in ["bench", "fs_bench"] {
            assert_eq!(res.aliases.get(alias).map(String::as_str), Some("bench"), "{alias}");
        }
    }

    #[test]
    fn canon_resolves_crate_self_super_and_cross_crate_heads() {
        let res = resolver();
        let at = mp("bench", &["campaign", "scenario"]);
        let seg = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            res.canon(&at, &seg(&["crate", "campaign", "run_all"])),
            Some(seg(&["bench", "campaign", "run_all"]))
        );
        assert_eq!(
            res.canon(&at, &seg(&["self", "helper"])),
            Some(seg(&["bench", "campaign", "scenario", "helper"]))
        );
        assert_eq!(
            res.canon(&at, &seg(&["super", "runner", "run_all"])),
            Some(seg(&["bench", "campaign", "runner", "run_all"]))
        );
        assert_eq!(
            res.canon(&at, &seg(&["adapt", "oracle", "check"])),
            Some(seg(&["adapt", "oracle", "check"]))
        );
        assert_eq!(res.canon(&at, &seg(&["std", "mem", "take"])), None);
    }

    #[test]
    fn canon_resolves_sibling_and_root_modules() {
        let res = resolver();
        // From the campaign root, `scenario::run` names the submodule.
        let at = mp("bench", &["campaign"]);
        let got = res.canon(&at, &["scenario".to_string(), "run".to_string()]);
        assert_eq!(got.map(|v| v.join("::")), Some("bench::campaign::scenario::run".into()));
        // From a leaf module, a crate-root module still resolves.
        let at = mp("adapt", &["hedge"]);
        let got = res.canon(&at, &["oracle".to_string(), "check".to_string()]);
        assert_eq!(got.map(|v| v.join("::")), Some("adapt::oracle::check".into()));
    }

    #[test]
    fn import_map_flattens_names_aliases_and_globs() {
        use crate::parse::UseDecl;
        let res = resolver();
        let at = mp("bench", &["campaign", "scenario"]);
        let d = |segs: &[&str], alias: Option<&str>, glob: bool| UseDecl {
            segs: segs.iter().map(|s| s.to_string()).collect(),
            alias: alias.map(String::from),
            glob,
            is_pub: false,
            line: 1,
        };
        let uses = [
            d(&["adapt", "oracle"], Some("qoracle"), false),
            d(&["simcore", "prelude"], None, true),
            d(&["std", "collections", "BTreeMap"], None, false),
        ];
        let map = import_map(&uses, &res, &at);
        assert_eq!(map.named.get("qoracle").map(|v| v.join("::")), Some("adapt::oracle".into()));
        assert_eq!(map.globs.len(), 1);
        assert!(!map.named.contains_key("BTreeMap"), "std targets do not canonicalise");
    }
}
