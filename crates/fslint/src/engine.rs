//! File discovery, orchestration, and report formatting.
//!
//! The engine runs in two phases. Phase one walks `crates/`, `src/`,
//! `tests/`, and `examples/` under the workspace root (skipping `vendor/`,
//! build `target/`s, and lint-test `fixtures/` trees) and lexes + parses
//! every `.rs` file — sharded over worker threads, with each file's result
//! landing in its own pre-assigned slot so the unit order (and therefore
//! every downstream id and finding) is identical to a sequential scan.
//! Phase two builds the workspace call graph ([`crate::graph`]) over the
//! whole set, then runs the per-file rules with graph-derived scopes, the
//! whole-program rules (`oracle-coverage`, `dead-scenario`), the
//! interprocedural taint analysis ([`crate::flow`]: `digest-taint`,
//! `rng-lineage`, `oracle-taint`), and inline suppressions — reporting any
//! suppression that no longer silences a finding (or only silences
//! findings already recorded in the baseline) as `suppression-stale`.
//! Output is deterministic regardless of sharding: units keep the sorted
//! file order and findings are sorted by (path, line, rule) before emit.

use crate::flow;
use crate::graph::{FileScope, FileUnit, Graph};
use crate::rules::{self, FileCtx, Finding, LabelSite};
use crate::sem;
use crate::suppress;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git"];

/// Top-level entry points of the scan, relative to the root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Engine configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule ids disabled wholesale (from `--allow`).
    pub allow: BTreeSet<String>,
    /// Export the call graph in the report (`--graph-out`).
    pub graph_json: bool,
    /// Measure per-phase wall time and carry it in the report
    /// (`--timings`). Off by default so repeated runs stay byte-identical.
    pub timings: bool,
    /// Cap on scan shard threads (`--jobs N`). `None` uses
    /// `available_parallelism`. Sharding only changes which thread lexes
    /// which file — output is byte-identical at any setting.
    pub jobs: Option<usize>,
    /// `(rule, path)` keys the active baseline records debt for. A
    /// suppression whose every silenced finding is covered here is
    /// redundant — the baseline would have filtered those findings anyway
    /// — and is reported `suppression-stale` instead of counting as used.
    pub baselined: BTreeSet<(String, String)>,
}

/// A completed lint run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files lexed and checked.
    pub files_scanned: usize,
    /// The call-graph JSON document, when [`Config::graph_json`] is set.
    pub graph_json: Option<String>,
    /// Per-phase wall times, when [`Config::timings`] is set.
    pub timings: Option<PhaseTimings>,
}

/// Wall time spent in each engine phase, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase one: read + lex + parse, across all shards.
    pub lex_parse_ms: u64,
    /// Call-graph construction and reachability fixpoints.
    pub graph_ms: u64,
    /// Interprocedural taint analysis.
    pub flow_ms: u64,
    /// Interprocedural unit inference.
    pub units_ms: u64,
    /// Interprocedural effect analysis.
    pub effects_ms: u64,
    /// Per-file rules, whole-program rules, and suppression routing.
    pub rules_ms: u64,
    /// End-to-end lint time.
    pub total_ms: u64,
}

// Timings are diagnostics about the lint run itself, not part of any
// simulated artifact, so this is the one sanctioned wall-clock read in
// the workspace outside `crates/bench`.
// fslint: allow(no-wall-clock) — measures the linter's own phases, never sim state
type PhaseClock = std::time::Instant;

/// A per-phase stopwatch; inert (and cost-free) unless enabled.
struct Timer {
    t0: Option<PhaseClock>,
    last: Option<PhaseClock>,
}

impl Timer {
    fn start(on: bool) -> Timer {
        let now = on.then(PhaseClock::now);
        Timer { t0: now, last: now }
    }

    /// Milliseconds since the previous lap (0 when disabled).
    fn lap(&mut self) -> u64 {
        let Some(prev) = self.last else { return 0 };
        let now = PhaseClock::now();
        self.last = Some(now);
        now.duration_since(prev).as_millis() as u64
    }

    /// Milliseconds since the timer started (0 when disabled).
    fn total(&self) -> u64 {
        self.t0.map_or(0, |t0| PhaseClock::now().duration_since(t0).as_millis() as u64)
    }
}

impl Report {
    /// True when the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Collects every `.rs` file under the scan roots, sorted.
pub fn collect_workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        walk(&root.join(sub), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace under `root`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Report {
    lint_paths(root, &collect_workspace_files(root), cfg)
}

/// Lints exactly `files` (cross-file and whole-program rules run across
/// this set), reporting paths relative to `root` where possible.
pub fn lint_paths(root: &Path, files: &[PathBuf], cfg: &Config) -> Report {
    let mut findings = Vec::new();
    let mut timer = Timer::start(cfg.timings);
    let mut phases = PhaseTimings::default();

    // Phase one: read, lex, and parse every file, sharded over worker
    // threads. Each file's result lands in the slot matching its position
    // in the (sorted) input list, so the assembled `units` vector — and
    // with it every node id, scope, and finding downstream — is identical
    // to what a sequential scan would produce, whatever the interleaving.
    type ScanSlot = Option<Result<FileUnit, (String, String)>>;
    let workers = match cfg.jobs {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
    };
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<ScanSlot>> = Mutex::new(files.iter().map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(files.len().max(1)) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(i) else { break };
                let rel = file.strip_prefix(root).unwrap_or(file);
                let path = rel.to_string_lossy().replace('\\', "/");
                let slot = match fs::read_to_string(file) {
                    Ok(source) => Ok(FileUnit::new(path, &source)),
                    Err(e) => Err((path, format!("could not read file: {e}"))),
                };
                slots.lock().unwrap_or_else(|p| p.into_inner())[i] = Some(slot);
            });
        }
    });
    let mut units: Vec<FileUnit> = Vec::with_capacity(files.len());
    for slot in slots.into_inner().unwrap_or_else(|p| p.into_inner()) {
        match slot {
            Some(Ok(unit)) => units.push(unit),
            Some(Err((path, message))) => findings.push(Finding {
                path,
                line: 0,
                rule: rules::id::MALFORMED_SUPPRESSION,
                message,
            }),
            // A worker died mid-file (its panic was contained by the
            // scope); surface the gap rather than silently under-linting.
            None => findings.push(Finding {
                path: String::new(),
                line: 0,
                rule: rules::id::MALFORMED_SUPPRESSION,
                message: "internal: a scan shard dropped a file".to_string(),
            }),
        }
    }

    phases.lex_parse_ms = timer.lap();

    // Phase two: the call graph over the whole set. A set with no entry
    // points (single-file runs, fixture subsets) has nothing to seed the
    // reachability fixpoints from: those runs get the empty scope, and
    // only the everywhere rules apply.
    let graph = Graph::build(&units);
    let graph_mode = graph.has_entries();
    phases.graph_ms = timer.lap();
    // The taint analysis needs edges, not entry roots — it runs on every
    // set, so single-file and fixture runs still prove their flows.
    let (flow_findings, taint) = flow::analyze(&units, &graph);
    phases.flow_ms = timer.lap();
    // Same for the unit inference: summaries propagate over edges alone.
    let (unit_findings, usum) = crate::units::analyze(&units, &graph);
    phases.units_ms = timer.lap();
    // And the effect pass: write/interior/static/RNG/sched summaries to a
    // fixpoint, then the purity and commutativity rules over them.
    let (effect_findings, esum) = crate::effects::analyze(&units, &graph);
    phases.effects_ms = timer.lap();
    let graph_json = cfg.graph_json.then(|| graph.render_json(&units, &taint, &usum, &esum));
    let mut program_findings =
        if graph_mode { graph.whole_program_findings(&units) } else { Vec::new() };
    program_findings.extend(flow_findings);
    program_findings.extend(unit_findings);
    program_findings.extend(effect_findings);

    let mut sites: Vec<LabelSite> = Vec::new();
    let mut per_file: Vec<(usize, suppress::Scan, Vec<Finding>)> = Vec::new();
    for (i, u) in units.iter().enumerate() {
        let ctx = FileCtx { path: u.path.clone(), lexed: &u.lexed };
        let mut file_findings = Vec::new();
        rules::check_file(&ctx, &mut file_findings);
        let scope = if graph_mode { graph.scope_for(i) } else { FileScope::unscoped() };
        sem::check_file(&ctx, &u.model, &scope, &mut file_findings);
        sites.extend(rules::label_sites(&ctx));
        per_file.push((i, suppress::scan(&u.lexed.comments), file_findings));
    }

    // Cross-file and whole-program findings are pooled over the full set,
    // then routed back through their own file's suppressions.
    let mut label_findings = Vec::new();
    rules::check_unique_stream_labels(&sites, &mut label_findings);
    for (i, scan, file_findings) in &mut per_file {
        let path = units[*i].path.as_str();
        file_findings.extend(label_findings.iter().filter(|f| f.path == path).cloned());
        file_findings.extend(program_findings.iter().filter(|f| f.path == path).cloned());
        let (kept, silenced) = suppress::apply(path, scan, std::mem::take(file_findings));
        findings.extend(kept);
        for (s, silenced) in scan.suppressions.iter().zip(silenced) {
            let message = if silenced.is_empty() {
                format!(
                    "suppression of `{}` no longer silences any finding — the invariant \
                     it documented is machine-checked or gone; delete the comment",
                    s.rules.join(", ")
                )
            } else if silenced
                .iter()
                .all(|r| cfg.baselined.contains(&(r.to_string(), path.to_string())))
            {
                // Without the inline allow, the baseline's (rule, path)
                // budget would have filtered these findings anyway.
                format!(
                    "suppression of `{}` only silences findings the baseline already \
                     records for this file — recorded debt needs no inline allow; \
                     delete the comment (or the baseline entry, if the inline \
                     reason is the one worth keeping)",
                    s.rules.join(", ")
                )
            } else {
                continue;
            };
            findings.push(Finding {
                path: path.to_string(),
                line: s.end_line,
                rule: rules::id::SUPPRESSION_STALE,
                message,
            });
        }
    }

    findings.retain(|f| !cfg.allow.contains(f.rule));
    findings.sort();
    findings.dedup();
    phases.rules_ms = timer.lap();
    phases.total_ms = timer.total();
    let timings = cfg.timings.then_some(phases);
    Report { findings, files_scanned: files.len(), graph_json, timings }
}

/// Renders the report as line-oriented human output.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
    }
    out.push_str(&format!(
        "fs-lint: {} file(s) scanned, {} finding(s)\n",
        report.files_scanned,
        report.findings.len()
    ));
    out
}

/// Renders the report as a JSON document (for CI artifacts).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"finding_count\": {},\n", report.findings.len()));
    if let Some(t) = &report.timings {
        out.push_str(&format!(
            "  \"timings_ms\": {{\"lex_parse\": {}, \"graph\": {}, \"flow\": {}, \
             \"units\": {}, \"effects\": {}, \"rules\": {}, \"total\": {}}},\n",
            t.lex_parse_ms, t.graph_ms, t.flow_ms, t.units_ms, t.effects_ms, t.rules_ms, t.total_ms
        ));
    }
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON output.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = Report { findings: Vec::new(), files_scanned: 3, graph_json: None, timings: None };
        let json = render_json(&r);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"finding_count\": 0"));
    }
}
