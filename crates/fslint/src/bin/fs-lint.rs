//! `fs-lint` — the tier-0 determinism gate (see the `fslint` crate docs).
//!
//! ```text
//! fs-lint [--root DIR] [--format text|json|sarif] [--json] [--out FILE]
//!         [--graph-out FILE] [--timings] [--jobs N] [--allow RULE]...
//!         [--baseline FILE [--prune-baseline] | --write-baseline FILE]
//!         [--list-rules] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace under `--root` (default:
//! the current directory) is scanned. `--format` picks the stdout
//! rendering: line-oriented `text` (default), the `json` report (`--json`
//! is a shorthand), or a SARIF 2.1.0 document (`sarif`) GitHub code
//! scanning can annotate PRs from. `--out` always writes the JSON report
//! to the given file (for CI artifacts) in addition to the chosen stdout
//! format; `--graph-out` writes the workspace call graph the scoping was
//! derived from, including the per-function taint, unit, and effect
//! summaries. `--timings` measures per-phase wall time (lex+parse, graph,
//! flow, units, effects, rules), prints it to stderr, and carries it in
//! the JSON report. `--jobs N` caps the scan shard threads (default:
//! `available_parallelism`, capped at 8); sharding never changes output,
//! so any `N` produces byte-identical reports.
//! `--write-baseline` records the findings of this run as accepted debt
//! and exits 0; `--baseline` fails only on findings beyond that recorded
//! debt and reports fixed-but-still-listed entries as stale, and
//! `--prune-baseline` rewrites the baseline file with those stale entries
//! dropped (see the crate's `baseline` module docs). The baseline is read
//! *before* linting so the engine can flag suppressions that only silence
//! baselined findings as `suppression-stale`. Exit status: 0 clean, 1
//! findings, 2 usage error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fslint::baseline::Baseline;
use fslint::{engine, sarif, Config};
use std::path::PathBuf;
use std::process::ExitCode;

/// Stdout rendering selected by `--format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut out_file: Option<PathBuf> = None;
    let mut cfg = Config::default();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut baseline_file: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut prune_baseline = false;
    let mut graph_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = args.next() else { return usage("--root needs a value") };
                root = PathBuf::from(v);
            }
            "--json" => format = Format::Json,
            "--format" => {
                let Some(v) = args.next() else {
                    return usage("--format needs one of text, json, sarif");
                };
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return usage(&format!("unknown format `{other}`")),
                };
            }
            "--out" => {
                let Some(v) = args.next() else { return usage("--out needs a value") };
                out_file = Some(PathBuf::from(v));
            }
            "--allow" => {
                let Some(v) = args.next() else { return usage("--allow needs a rule id") };
                if !fslint::rules::is_known_rule(&v) {
                    return usage(&format!("unknown rule `{v}` (try --list-rules)"));
                }
                cfg.allow.insert(v);
            }
            "--baseline" => {
                let Some(v) = args.next() else { return usage("--baseline needs a file") };
                baseline_file = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let Some(v) = args.next() else {
                    return usage("--write-baseline needs a file");
                };
                write_baseline = Some(PathBuf::from(v));
            }
            "--prune-baseline" => prune_baseline = true,
            "--timings" => cfg.timings = true,
            "--jobs" => {
                let Some(v) = args.next() else { return usage("--jobs needs a thread count") };
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cfg.jobs = Some(n),
                    _ => return usage(&format!("--jobs needs a positive integer, got `{v}`")),
                }
            }
            "--graph-out" => {
                let Some(v) = args.next() else { return usage("--graph-out needs a value") };
                cfg.graph_json = true;
                graph_out = Some(PathBuf::from(v));
            }
            "--list-rules" => {
                for r in fslint::RULES {
                    println!("{:<26} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!(
                    "fs-lint: workspace determinism auditor\n\n\
                     usage: fs-lint [--root DIR] [--format text|json|sarif] [--json] \
                     [--out FILE] [--graph-out FILE] [--timings] [--jobs N] \
                     [--allow RULE]... \
                     [--baseline FILE [--prune-baseline] | --write-baseline FILE] \
                     [--list-rules] [FILE...]"
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => files.push(PathBuf::from(arg)),
        }
    }

    if baseline_file.is_some() && write_baseline.is_some() {
        return usage("--baseline and --write-baseline are mutually exclusive");
    }
    if prune_baseline && baseline_file.is_none() {
        return usage("--prune-baseline needs --baseline FILE");
    }

    // The baseline is parsed up front: the engine needs its (rule, path)
    // keys while linting to tell a load-bearing suppression from one that
    // only re-silences recorded debt.
    let baseline = match &baseline_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("fs-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => {
                    cfg.baselined = b.keys().cloned().collect();
                    Some(b)
                }
                Err(e) => {
                    eprintln!("fs-lint: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let mut report = if files.is_empty() {
        engine::lint_workspace(&root, &cfg)
    } else {
        engine::lint_paths(&root, &files, &cfg)
    };

    if let Some(t) = &report.timings {
        eprintln!(
            "fs-lint: timings: lex+parse {}ms, graph {}ms, flow {}ms, units {}ms, \
             effects {}ms, rules {}ms, total {}ms",
            t.lex_parse_ms, t.graph_ms, t.flow_ms, t.units_ms, t.effects_ms, t.rules_ms, t.total_ms
        );
    }

    if let (Some(path), Some(doc)) = (&graph_out, &report.graph_json) {
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("fs-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = write_baseline {
        let b = Baseline::from_findings(&report.findings);
        if let Err(e) = std::fs::write(&path, b.render()) {
            eprintln!("fs-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "fs-lint: wrote baseline {} ({} finding(s) across {} rule/path key(s))",
            path.display(),
            report.findings.len(),
            b.len()
        );
        // Recording debt is the acknowledgement step: always succeeds.
        return ExitCode::SUCCESS;
    }

    if let (Some(b), Some(path)) = (&baseline, &baseline_file) {
        let diff = b.apply(std::mem::take(&mut report.findings));
        if prune_baseline && !diff.stale.is_empty() {
            let pruned = b.pruned(&diff.stale);
            if let Err(e) = std::fs::write(path, pruned.render()) {
                eprintln!("fs-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "fs-lint: pruned {} stale entr{} from {} ({} key(s) remain)",
                diff.stale.len(),
                if diff.stale.len() == 1 { "y" } else { "ies" },
                path.display(),
                pruned.len()
            );
        } else {
            for (rule, path, unused) in &diff.stale {
                eprintln!(
                    "fs-lint: note: stale baseline entry {rule} at {path} \
                     ({unused} finding(s) fixed) — re-run with --prune-baseline to drop it"
                );
            }
        }
        report.findings = diff.new;
    }

    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, engine::render_json(&report)) {
            eprintln!("fs-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match format {
        Format::Json => print!("{}", engine::render_json(&report)),
        Format::Sarif => print!("{}", sarif::render(&report)),
        Format::Text => print!("{}", engine::render_text(&report)),
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fs-lint: {msg}");
    eprintln!(
        "usage: fs-lint [--root DIR] [--format text|json|sarif] [--json] [--out FILE] \
         [--graph-out FILE] [--timings] [--jobs N] [--allow RULE]... \
         [--baseline FILE [--prune-baseline] | --write-baseline FILE] [FILE...]"
    );
    ExitCode::from(2)
}
