//! `fs-lint` — the tier-0 determinism gate (see the `fslint` crate docs).
//!
//! ```text
//! fs-lint [--root DIR] [--json] [--out FILE] [--allow RULE]... [--list-rules] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole workspace under `--root` (default:
//! the current directory) is scanned. `--out` always writes the JSON
//! report to the given file (for CI artifacts) in addition to the chosen
//! stdout format. Exit status: 0 clean, 1 findings, 2 usage error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fslint::{engine, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut out_file: Option<PathBuf> = None;
    let mut cfg = Config::default();
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(v) = args.next() else { return usage("--root needs a value") };
                root = PathBuf::from(v);
            }
            "--json" => json = true,
            "--out" => {
                let Some(v) = args.next() else { return usage("--out needs a value") };
                out_file = Some(PathBuf::from(v));
            }
            "--allow" => {
                let Some(v) = args.next() else { return usage("--allow needs a rule id") };
                if !fslint::rules::is_known_rule(&v) {
                    return usage(&format!("unknown rule `{v}` (try --list-rules)"));
                }
                cfg.allow.insert(v);
            }
            "--list-rules" => {
                for r in fslint::RULES {
                    println!("{:<26} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!(
                    "fs-lint: workspace determinism auditor\n\n\
                     usage: fs-lint [--root DIR] [--json] [--out FILE] [--allow RULE]... \
                     [--list-rules] [FILE...]"
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let report = if files.is_empty() {
        engine::lint_workspace(&root, &cfg)
    } else {
        engine::lint_paths(&root, &files, &cfg)
    };

    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, engine::render_json(&report)) {
            eprintln!("fs-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", engine::render_json(&report));
    } else {
        print!("{}", engine::render_text(&report));
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fs-lint: {msg}");
    eprintln!("usage: fs-lint [--root DIR] [--json] [--out FILE] [--allow RULE]... [FILE...]");
    ExitCode::from(2)
}
