//! Interprocedural unit inference: prove every quantity carries the
//! right unit.
//!
//! Fail-stutter bugs are threshold bugs: a detector comparing a
//! nanosecond observation against a threshold configured in ticks, or a
//! rate accumulated per tick but shed per second, silently reshapes the
//! performance-fault model without ever failing a test. The workspace is
//! full of implicitly-united raw `u64`/`f64` — `as_nanos()` escapes,
//! `ticks_per_sec` conversions, LBA/block arithmetic — and only naming
//! discipline keeps them apart. This pass turns that discipline into a
//! machine-checked dimension system (Kennedy-style units-of-measure
//! inference, run as abstract interpretation over the same workspace
//! call graph the taint pass uses):
//!
//! * **Seeds** — API signatures (`SimTime::from_secs(x)` means the
//!   result is sim time in nanos; `as_nanos()`/`as_millis()`/… read a
//!   concrete unit; `SimTime`/`SimDuration`/`Duration` values *are*
//!   nanos) and naming discipline (`*_nanos`/`*_ms`/`*_secs`/`*_ticks`/
//!   `lba`/`nblocks` suffixes, `dt`, and `a_per_b` rate names).
//! * **A small unit lattice** — `Unknown ⊑ Scalar ⊑ Of(dim) ⊑
//!   Conflict`, where a dimension is a signed exponent vector over the
//!   bases (nanos, micros, millis, secs, ticks, blocks, bytes). Mul and
//!   div compose dimensions; dividing same-united quantities yields a
//!   dimensionless ratio; a bare conversion literal (`* 1_000_000`)
//!   poisons the expression to `Unknown` because the target unit is no
//!   longer inferable from the text.
//! * **Per-function summaries** — a function's return unit is seeded
//!   from its own name and return type (the name is authoritative: a fn
//!   *named* `ticks_per_sec` returns ticks/sec by contract) and
//!   otherwise inferred from its `return`/trailing expressions, to a
//!   fixpoint over the call-graph so units flow through helpers across
//!   crates. Struct fields learn units from `.field = expr` assignments
//!   (the laundering case); locals from `let`/`for` bindings with
//!   flow-style shadowing.
//!
//! Four rules come out of this: `unit-mismatch` (add/sub/compare/assign
//! across conflicting inferred units — the message prints both inference
//! chains hop by hop), `raw-unit-conversion` (magic `* 1_000` /
//! `* 1_000_000` / `* 1_000_000_000` literals outside `simcore::time` —
//! named constructors and consts exist for exactly this), `rate-confusion`
//! (a per-X rate combined with a quantity of a different shape without an
//! explicit `dt` factor), and `threshold-unit` (a config threshold
//! compared against an observation of a different unit in
//! injector/detector-reachable code).
//!
//! Like [`crate::flow`] the analysis is conservative and name-based
//! where resolution is ambiguous: an unresolvable call, macro, or
//! conversion literal inside an operand poisons it to `Unknown`, and
//! `Unknown` operands never fire a rule. Method-call and free-call
//! resolution reuse the flow gates (owner/trait mention for methods,
//! same-module or matching qualifier for free calls). Known
//! under-approximations: method-call *arguments* are not checked against
//! parameter units (only free calls are), tuple patterns bind a unit
//! only when the name itself carries a suffix, and `%` keeps its left
//! operand's unit without checking the right.

use crate::flow::{call_args, field_read_shape, for_binding, let_bounds, pattern_names, rhs_end};
use crate::graph::{FileUnit, Graph};
use crate::lexer::{TokKind, Token};
use crate::parse;
use crate::rules::{id, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// A dimension: signed exponents over the unit bases, zero entries
/// never stored. `{nanos: 1, secs: -1}` renders as `nanos/secs`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Dim(BTreeMap<&'static str, i32>);

impl Dim {
    /// The dimension of one base unit.
    pub fn base(name: &'static str) -> Dim {
        let mut m = BTreeMap::new();
        m.insert(name, 1);
        Dim(m)
    }

    /// The reciprocal dimension (all exponents negated).
    pub fn inv(&self) -> Dim {
        Dim(self.0.iter().map(|(k, v)| (*k, -v)).collect())
    }

    /// Dimension product: exponents add, zeros vanish.
    pub fn mul(&self, other: &Dim) -> Dim {
        let mut m = self.0.clone();
        for (k, v) in &other.0 {
            let e = m.entry(k).or_insert(0);
            *e += v;
            if *e == 0 {
                m.remove(k);
            }
        }
        Dim(m)
    }

    /// Dimension quotient: same-dimension division is dimensionless.
    pub fn div(&self, other: &Dim) -> Dim {
        self.mul(&other.inv())
    }

    /// True for the dimensionless (empty) vector.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True when any exponent is negative — the quantity is a rate.
    pub fn is_rate(&self) -> bool {
        self.0.values().any(|&v| v < 0)
    }

    /// ASCII rendering: `nanos`, `nanos/secs`, `1/secs`, `nanos^2`.
    pub fn render(&self) -> String {
        let part = |e: i32, name: &str| {
            if e == 1 {
                name.to_string()
            } else {
                format!("{name}^{e}")
            }
        };
        let num: Vec<String> =
            self.0.iter().filter(|&(_, &v)| v > 0).map(|(k, &v)| part(v, k)).collect();
        let den: Vec<String> =
            self.0.iter().filter(|&(_, &v)| v < 0).map(|(k, &v)| part(-v, k)).collect();
        match (num.is_empty(), den.is_empty()) {
            (true, true) => "dimensionless".to_string(),
            (false, true) => num.join("*"),
            (true, false) => format!("1/{}", den.join("*")),
            (false, false) => format!("{}/{}", num.join("*"), den.join("*")),
        }
    }
}

/// The unit lattice: `Unknown ⊑ Scalar ⊑ Of(d) ⊑ Conflict`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unit {
    /// No information — poisons arithmetic, never fires a rule.
    Unknown,
    /// A dimensionless number (literals, counts, ratios).
    Scalar,
    /// A concrete dimension.
    Of(Dim),
    /// Two incompatible concrete dimensions met (summary join only).
    Conflict,
}

impl Unit {
    /// Lattice join: least upper bound of two inferences.
    pub fn join(&self, other: &Unit) -> Unit {
        match (self, other) {
            (Unit::Conflict, _) | (_, Unit::Conflict) => Unit::Conflict,
            (Unit::Unknown, u) | (u, Unit::Unknown) => u.clone(),
            (Unit::Scalar, u) | (u, Unit::Scalar) => u.clone(),
            (Unit::Of(a), Unit::Of(b)) if a == b => Unit::Of(a.clone()),
            _ => Unit::Conflict,
        }
    }

    /// Unit product. `Unknown`/`Conflict` poison; `Scalar` is identity;
    /// dimensions compose, collapsing to `Scalar` when they cancel.
    pub fn mul(&self, other: &Unit) -> Unit {
        match (self, other) {
            (Unit::Unknown | Unit::Conflict, _) | (_, Unit::Unknown | Unit::Conflict) => {
                Unit::Unknown
            }
            (Unit::Scalar, u) | (u, Unit::Scalar) => u.clone(),
            (Unit::Of(a), Unit::Of(b)) => {
                let d = a.mul(b);
                if d.is_empty() {
                    Unit::Scalar
                } else {
                    Unit::Of(d)
                }
            }
        }
    }

    /// Unit quotient; same-unit division yields a dimensionless ratio.
    pub fn div(&self, other: &Unit) -> Unit {
        match other {
            Unit::Of(d) => self.mul(&Unit::Of(d.inv())),
            _ => self.mul(other),
        }
    }
}

/// One function's return-unit summary, for the `--graph-out` export and
/// hop-by-hop message chains. `None` in the per-node vector means no
/// concrete return unit was inferred.
#[derive(Debug, Clone)]
pub struct UnitSummary {
    /// The inferred return dimension.
    pub dim: Dim,
    /// 1-based line of the evidence (or of the `fn` for name seeds).
    pub line: u32,
    /// The callee node id the unit arrived through, `None` at the root.
    pub via: Option<usize>,
    /// Human description of this hop.
    pub what: String,
}

/// Types whose values are sim time, canonically counted in nanos.
const TIME_TYPES: &[&str] = &["SimTime", "SimDuration", "Duration"];

/// `Type::from_*` constructors producing a sim-time value.
const TIME_CTORS: &[(&str, &str)] = &[
    ("from_nanos", "nanos"),
    ("from_micros", "micros"),
    ("from_millis", "millis"),
    ("from_secs", "secs"),
    ("from_secs_f64", "secs"),
];

/// Methods that read a concrete unit off a time value.
fn method_dim(name: &str) -> Option<&'static str> {
    match name {
        "as_nanos" | "subsec_nanos" => Some("nanos"),
        "as_micros" => Some("micros"),
        "as_millis" | "subsec_millis" => Some("millis"),
        "as_secs" | "as_secs_f64" | "as_secs_f32" => Some("secs"),
        _ => None,
    }
}

/// Methods that pass their receiver's unit through unchanged. Anything
/// not listed (and not otherwise resolvable) poisons the operand to
/// `Unknown` — a call we cannot see through could convert.
const PRESERVE_METHODS: &[&str] = &[
    "abs",
    "ceil",
    "checked_add",
    "checked_sub",
    "clamp",
    "clone",
    "cloned",
    "copied",
    "expect",
    "floor",
    "get",
    "into",
    "iter",
    "max",
    "min",
    "rem_euclid",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "sum",
    "to_owned",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "wrapping_add",
    "wrapping_sub",
];

/// Primitive type names an `as` cast mentions; never unit evidence and
/// never an unresolved value.
const NUM_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char",
];

/// Maps one lower-case name segment to its unit base.
fn base_word(w: &str) -> Option<&'static str> {
    match w {
        "nanos" | "nano" | "nanosecond" | "nanoseconds" | "ns" => Some("nanos"),
        "micros" | "micro" | "us" => Some("micros"),
        "millis" | "milli" | "ms" => Some("millis"),
        "secs" | "sec" | "second" | "seconds" => Some("secs"),
        "ticks" | "tick" => Some("ticks"),
        "lba" | "lbas" | "block" | "blocks" | "nblocks" => Some("blocks"),
        "bytes" | "byte" | "nbytes" => Some("bytes"),
        _ => None,
    }
}

/// The dimension an identifier's *name* declares, with a human label.
/// `dt` is the simulation step (sim time in nanos); `a_per_b` names are
/// rates (`ticks_per_sec` is ticks/secs, `open_per_sec` with an
/// unresolvable numerator is a bare per-sec count rate); otherwise the
/// last `_`-segment is tried as a unit suffix.
pub(crate) fn name_dim(name: &str) -> Option<(Dim, String)> {
    // Note `dt` itself carries no name-declared unit: a `dt: SimDuration`
    // is nanos via its type, while `let dt = step.as_secs_f64()` is secs
    // via its binding — both idioms live in this workspace.
    let lower = name.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("per_") {
        let den_word = rest.split('_').next().unwrap_or(rest);
        let den = base_word(den_word)?;
        return Some((Dim::base(den).inv(), format!("named `per_{den_word}` (a per-{den} rate)")));
    }
    if let Some(pos) = lower.rfind("_per_") {
        let num_word = lower[..pos].rsplit('_').next().unwrap_or(&lower[..pos]);
        let rest = &lower[pos + 5..];
        let den_word = rest.split('_').next().unwrap_or(rest);
        let den = base_word(den_word)?;
        let dim = match base_word(num_word) {
            Some(num) => Dim::base(num).div(&Dim::base(den)),
            None => Dim::base(den).inv(),
        };
        let label = format!("named `*_per_{den_word}` (a {} rate)", dim_label(&dim));
        return Some((dim, label));
    }
    let last = lower.rsplit('_').next().unwrap_or(&lower);
    let b = base_word(last)?;
    Some((Dim::base(b), format!("suffixed `*_{last}` ({b})")))
}

fn dim_label(d: &Dim) -> String {
    d.render()
}

/// Normalizes a numeric literal: underscores stripped, lower-cased,
/// trailing primitive type suffix removed.
fn normalized_num(text: &str) -> String {
    let mut t: String = text.chars().filter(|c| *c != '_').collect();
    t.make_ascii_lowercase();
    for s in NUM_TYPES {
        if t.len() > s.len() && t.ends_with(s) {
            t.truncate(t.len() - s.len());
            break;
        }
    }
    t
}

/// True for any literal spelling of 10^3/10^6/10^9 — inference poison:
/// a bare scale factor makes the target unit untrackable from the text.
fn conversion_literal(text: &str) -> bool {
    matches!(
        normalized_num(text).as_str(),
        "1000"
            | "1000000"
            | "1000000000"
            | "1e3"
            | "1e6"
            | "1e9"
            | "1000.0"
            | "1000000.0"
            | "1000000000.0"
    )
}

/// True for the *integer* forms the `raw-unit-conversion` rule flags
/// (float reporting math like `* 1e3` stays legal, it merely poisons
/// inference).
fn raw_conversion_int(text: &str) -> bool {
    let t = normalized_num(text);
    !text.contains('.')
        && !t.contains('e')
        && matches!(t.as_str(), "1000" | "1000000" | "1000000000")
}

/// An inferred unit with its evidence trail.
#[derive(Debug, Clone)]
struct Inferred {
    unit: Unit,
    /// Root-first hops, ready to join with `" -> "`.
    chain: Vec<String>,
    /// Summarized callee node the unit arrived through, if any.
    via: Option<usize>,
    /// Token index of the decisive evidence.
    tok: usize,
    /// 1-based line of the decisive evidence.
    line: u32,
}

impl Inferred {
    fn unknown() -> Inferred {
        Inferred { unit: Unit::Unknown, chain: Vec::new(), via: None, tok: 0, line: 0 }
    }

    fn scalar() -> Inferred {
        Inferred { unit: Unit::Scalar, chain: Vec::new(), via: None, tok: 0, line: 0 }
    }
}

/// One unit-carrying local binding, live on `[from, until]` tokens.
#[derive(Debug, Clone)]
struct ULocal {
    name: String,
    from: usize,
    until: usize,
    dim: Dim,
    chain: Vec<String>,
}

/// What a unit-carrying struct field was learned to hold.
#[derive(Debug, Clone)]
struct FieldUnit {
    dim: Dim,
    desc: String,
}

/// Runs the unit analysis: `unit-mismatch` / `raw-unit-conversion` /
/// `rate-confusion` / `threshold-unit` findings plus per-node return-unit
/// summaries aligned with `graph.nodes` for the `--graph-out` export.
pub fn analyze(units: &[FileUnit], graph: &Graph) -> (Vec<Finding>, Vec<Option<UnitSummary>>) {
    let mut u = Units::new(units, graph);
    u.fixpoint();
    let mut findings = u.site_findings();
    findings.extend(u.raw_conversions());
    (findings, u.summaries)
}

/// The analysis state: summaries and field units grow monotonically to a
/// fixpoint, then the site scan reads them.
struct Units<'a> {
    units: &'a [FileUnit],
    graph: &'a Graph,
    /// Every identifier each file mentions (the method-resolution gate).
    file_idents: Vec<BTreeSet<&'a str>>,
    /// Per-node return-unit summaries, aligned with `graph.nodes`.
    summaries: Vec<Option<UnitSummary>>,
    /// Summarized node ids by function name (rebuilt each round).
    by_name: BTreeMap<String, Vec<usize>>,
    /// All node ids by function name (for parameter-unit lookups).
    all_by_name: BTreeMap<String, Vec<usize>>,
    /// Per-node parameter units, in declaration order.
    params: Vec<Vec<(String, Option<Dim>)>>,
    /// Unit-carrying struct fields by field name (global, name-based).
    fields: BTreeMap<String, FieldUnit>,
}

impl<'a> Units<'a> {
    fn new(units: &'a [FileUnit], graph: &'a Graph) -> Units<'a> {
        let file_idents = units
            .iter()
            .map(|u| {
                u.lexed
                    .tokens
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect()
            })
            .collect();
        let mut all_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (n, node) in graph.nodes.iter().enumerate() {
            all_by_name.entry(node.name.clone()).or_default().push(n);
        }
        let params = graph
            .nodes
            .iter()
            .map(|node| signature_params(&units[node.file].lexed.tokens, node.body.0))
            .collect();
        let mut u = Units {
            units,
            graph,
            file_idents,
            summaries: vec![None; graph.nodes.len()],
            by_name: BTreeMap::new(),
            all_by_name,
            params,
            fields: BTreeMap::new(),
        };
        for n in 0..graph.nodes.len() {
            u.summaries[n] = u.seed_summary(n);
        }
        u
    }

    /// The declaration-driven summary of node `n`: its own name first
    /// (authoritative — a fn *named* `ticks_per_sec` returns ticks/sec
    /// by contract), then a `SimTime`/`SimDuration` return type. Only
    /// fns returning a bare numeric or time type are ever summarized —
    /// a struct-returning fn does not hand its unit to the whole struct.
    fn seed_summary(&self, n: usize) -> Option<UnitSummary> {
        let node = &self.graph.nodes[n];
        let toks = &self.units[node.file].lexed.tokens;
        let ret = return_type_span(toks, node.body.0).filter(|&s| unit_bearing_return(toks, s))?;
        if let Some((dim, label)) = name_dim(&node.name) {
            return Some(UnitSummary {
                dim,
                line: node.line,
                via: None,
                what: format!("`{}` is {label}", node.name),
            });
        }
        for t in &toks[ret.0..=ret.1] {
            if t.kind == TokKind::Ident && TIME_TYPES.contains(&t.text.as_str()) {
                return Some(UnitSummary {
                    dim: Dim::base("nanos"),
                    line: node.line,
                    via: None,
                    what: format!("`{}` returns `{}` (sim time in nanos)", node.name, t.text),
                });
            }
        }
        None
    }

    fn rebuild_by_name(&mut self) {
        self.by_name.clear();
        for (n, s) in self.summaries.iter().enumerate() {
            if s.is_some() {
                self.by_name.entry(self.graph.nodes[n].name.clone()).or_default().push(n);
            }
        }
    }

    /// Iterates summary propagation and field discovery to a fixpoint.
    /// Both sets only grow, so this terminates.
    fn fixpoint(&mut self) {
        loop {
            self.rebuild_by_name();
            let mut changed = self.discover_fields();
            let mut updates: Vec<(usize, UnitSummary)> = Vec::new();
            for n in 0..self.graph.nodes.len() {
                if self.summaries[n].is_some() {
                    continue;
                }
                let node = &self.graph.nodes[n];
                let toks = &self.units[node.file].lexed.tokens;
                if return_type_span(toks, node.body.0)
                    .filter(|&s| unit_bearing_return(toks, s))
                    .is_none()
                {
                    continue;
                }
                let locals = self.locals_for(node.file, node.body, &self.params[n]);
                let mut joined = Unit::Unknown;
                let mut first: Option<Inferred> = None;
                for (lo, hi) in return_spans(toks, node.body) {
                    let inf = self.eval_span(node.file, lo, hi, &locals);
                    if matches!(inf.unit, Unit::Of(_)) && first.is_none() {
                        first = Some(inf.clone());
                    }
                    joined = joined.join(&inf.unit);
                }
                if let (Unit::Of(dim), Some(inf)) = (joined, first) {
                    let what = match inf.via {
                        Some(v) => format!("calls `{}`", self.graph.nodes[v].name),
                        None => inf.chain.first().cloned().unwrap_or_else(|| "inferred".into()),
                    };
                    updates.push((n, UnitSummary { dim, line: inf.line, via: inf.via, what }));
                }
            }
            if !updates.is_empty() {
                changed = true;
                for (n, s) in updates {
                    self.summaries[n] = Some(s);
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// One round of `.field = RHS` discovery: an assignment whose RHS
    /// carries a concrete unit teaches the field (by name,
    /// workspace-global). Fields whose *name* already carries a suffix
    /// are left to the suffix — the declaration wins over any one
    /// assignment. Returns true when a new field was learned.
    fn discover_fields(&mut self) -> bool {
        let mut learned: Vec<(String, FieldUnit)> = Vec::new();
        for file in 0..self.units.len() {
            let u = &self.units[file];
            let toks = &u.lexed.tokens;
            let mut locals_cache: BTreeMap<usize, Vec<ULocal>> = BTreeMap::new();
            let mut i = 0usize;
            while i + 2 < toks.len() {
                if !toks[i].is_punct('.')
                    || toks[i + 1].kind != TokKind::Ident
                    || !toks[i + 2].is_punct('=')
                    || toks.get(i + 3).is_some_and(|t| t.is_punct('='))
                {
                    i += 1;
                    continue;
                }
                let fname = toks[i + 1].text.clone();
                if name_dim(&fname).is_some()
                    || self.fields.contains_key(&fname)
                    || learned.iter().any(|(n, _)| *n == fname)
                {
                    i += 1;
                    continue;
                }
                let Some(end) = rhs_end(toks, i + 3) else {
                    i += 1;
                    continue;
                };
                let inf = match u.model.enclosing_fn_idx(i) {
                    Some(fk) => {
                        let body = u.model.fns[fk].body;
                        let params = self.params_for(file, fk);
                        let ls = locals_cache
                            .entry(fk)
                            .or_insert_with(|| self.locals_for(file, body, &params));
                        self.eval_span(file, i + 3, end.saturating_sub(1), ls)
                    }
                    None => self.eval_span(file, i + 3, end.saturating_sub(1), &[]),
                };
                if let Unit::Of(dim) = inf.unit {
                    learned.push((fname, FieldUnit { dim, desc: inf.chain.join(" -> ") }));
                }
                i += 1;
            }
        }
        let changed = !learned.is_empty();
        for (name, fu) in learned {
            self.fields.entry(name).or_insert(fu);
        }
        changed
    }

    /// The parameter units of the graph node matching `(file, fn_idx)`,
    /// or a fresh signature parse when the fn is not in the graph.
    fn params_for(&self, file: usize, fn_idx: usize) -> Vec<(String, Option<Dim>)> {
        for (n, node) in self.graph.nodes.iter().enumerate() {
            if node.file == file && node.fn_idx == fn_idx {
                return self.params[n].clone();
            }
        }
        signature_params(&self.units[file].lexed.tokens, self.units[file].model.fns[fn_idx].body.0)
    }

    /// Unit-carrying `let`/`for` bindings of the body at `body`, with
    /// flow-style shadowing. A name's own suffix is authoritative; an
    /// un-suffixed single-name binding takes the RHS's inferred unit.
    fn locals_for(
        &self,
        file: usize,
        body: (usize, usize),
        params: &[(String, Option<Dim>)],
    ) -> Vec<ULocal> {
        let u = &self.units[file];
        let toks = &u.lexed.tokens;
        let (b0, b1) = body;
        let mut locals: Vec<ULocal> = Vec::new();
        for (name, dim) in params {
            if let Some(d) = dim {
                locals.push(ULocal {
                    name: name.clone(),
                    from: b0,
                    until: usize::MAX,
                    dim: d.clone(),
                    chain: vec![format!("parameter `{name}` ({}, {})", d.render(), u.path)],
                });
            }
        }
        let mut i = b0;
        while i <= b1 && i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text == "let" {
                let (eq, semi) = let_bounds(toks, i + 1, b1);
                let Some(semi) = semi else {
                    i += 1;
                    continue;
                };
                if let Some(eq) = eq {
                    let names = pattern_names(toks, i + 1, eq);
                    if !names.is_empty() {
                        let rhs = self.eval_span(file, eq + 1, semi.saturating_sub(1), &locals);
                        for name in &names {
                            // Shadowing: a rebinding ends the old local's
                            // range whether or not the new one has a unit.
                            for l in locals.iter_mut() {
                                if l.name == *name && l.until > semi {
                                    l.until = semi;
                                }
                            }
                        }
                        for name in names {
                            let bound = match name_dim(&name) {
                                Some((d, label)) => Some((
                                    d,
                                    vec![format!("local `{name}` {label} ({}:{})", u.path, t.line)],
                                )),
                                None => match (&rhs.unit, names_len_one(&rhs)) {
                                    (Unit::Of(d), _) => {
                                        let mut chain = rhs.chain.clone();
                                        chain.push(format!("local `{name}`"));
                                        Some((d.clone(), chain))
                                    }
                                    _ => None,
                                },
                            };
                            if let Some((dim, chain)) = bound {
                                locals.push(ULocal {
                                    name,
                                    from: semi,
                                    until: usize::MAX,
                                    dim,
                                    chain,
                                });
                            }
                        }
                    }
                }
                i = semi + 1;
                continue;
            }
            if t.kind == TokKind::Ident && t.text == "for" {
                if let Some((names, expr_end, brace)) = for_binding(toks, i, b1) {
                    let rhs = self.eval_span(file, i + 1, expr_end, &locals);
                    for name in names {
                        let bound = match name_dim(&name) {
                            Some((d, label)) => Some((
                                d,
                                vec![format!("loop `{name}` {label} ({}:{})", u.path, t.line)],
                            )),
                            None => match &rhs.unit {
                                Unit::Of(d) => {
                                    let mut chain = rhs.chain.clone();
                                    chain.push(format!("loop local `{name}`"));
                                    Some((d.clone(), chain))
                                }
                                _ => None,
                            },
                        };
                        if let Some((dim, chain)) = bound {
                            locals.push(ULocal {
                                name,
                                from: brace,
                                until: usize::MAX,
                                dim,
                                chain,
                            });
                        }
                    }
                    i = brace.max(i + 1);
                    continue;
                }
            }
            i += 1;
        }
        locals
    }

    /// The unit of the token span `[lo, hi]`: depth-0 binary `+`/`-`
    /// split the span into terms whose units are joined (mixed terms are
    /// the site scan's business, so a disagreement here degrades to
    /// `Unknown` rather than firing twice); within a term, depth-0
    /// `*`/`/` factors compose through the lattice. Evaluation stops at
    /// a depth-0 `%` (the remainder keeps the left unit, the right side
    /// is a modulus).
    fn eval_span(&self, file: usize, lo: usize, hi: usize, locals: &[ULocal]) -> Inferred {
        let toks = &self.units[file].lexed.tokens;
        if toks.is_empty() || lo > hi || lo >= toks.len() {
            return Inferred::unknown();
        }
        let mut hi = hi.min(toks.len() - 1);
        let is_value = |i: usize| {
            i > lo
                && ((toks[i - 1].kind == TokKind::Ident && !parse::is_keyword(&toks[i - 1].text))
                    || toks[i - 1].kind == TokKind::Num
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'))
        };
        // Term boundaries at depth-0 binary `+` / `-` (and the `%` stop).
        let mut term_cuts: Vec<usize> = Vec::new();
        let mut depth = 0i32;
        for i in lo..=hi {
            let t = &toks[i];
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "+" | "-" if depth == 0 => {
                    let arrow = t.text == "-" && toks.get(i + 1).is_some_and(|n| n.is_punct('>'));
                    if is_value(i) && !arrow {
                        term_cuts.push(i);
                    }
                }
                "%" if depth == 0 => {
                    hi = i.saturating_sub(1);
                    break;
                }
                _ => {}
            }
        }
        term_cuts.retain(|&i| i <= hi);
        let mut joined: Option<Inferred> = None;
        let mut start = lo;
        for cut in term_cuts.into_iter().chain(std::iter::once(hi + 1)) {
            if cut > start {
                let term = self.eval_term(file, start, cut - 1, locals);
                joined = Some(match joined {
                    None => term,
                    Some(acc) => {
                        let unit = acc.unit.join(&term.unit);
                        let keep_acc = matches!(acc.unit, Unit::Of(_)) || acc.unit == unit;
                        let mut r = if keep_acc { acc } else { term };
                        if matches!(unit, Unit::Conflict) {
                            r.unit = Unit::Unknown;
                        } else {
                            r.unit = unit;
                        }
                        r
                    }
                });
            }
            start = cut + 1;
        }
        joined.unwrap_or_else(Inferred::unknown)
    }

    /// The unit of one additive term: depth-0 `*`/`/` factors composed
    /// left to right.
    fn eval_term(&self, file: usize, lo: usize, hi: usize, locals: &[ULocal]) -> Inferred {
        let toks = &self.units[file].lexed.tokens;
        let mut cuts: Vec<(usize, char)> = Vec::new();
        let mut depth = 0i32;
        for i in lo..=hi {
            let t = &toks[i];
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "*" | "/" if depth == 0 => {
                    let binary = i > lo
                        && (toks[i - 1].kind == TokKind::Ident
                            || toks[i - 1].kind == TokKind::Num
                            || toks[i - 1].is_punct(')')
                            || toks[i - 1].is_punct(']'));
                    if binary {
                        cuts.push((i, t.text.chars().next().unwrap_or('*')));
                    }
                }
                _ => {}
            }
        }
        let mut result = Inferred::scalar();
        let mut start = lo;
        let mut pending_op = '*';
        for (cut, op) in cuts.into_iter().chain(std::iter::once((hi + 1, '*'))) {
            if cut > start {
                let f = self.eval_factor(file, start, cut.min(hi + 1) - 1, locals);
                result = combine(result, f, pending_op, toks);
            }
            start = cut + 1;
            pending_op = op;
        }
        result
    }

    /// The unit of one factor (no depth-0 `*`/`/` inside). Precedence:
    /// poison (unresolvable call, macro, conversion literal) beats
    /// everything; then call evidence — a call whose argument parens
    /// enclose the other candidate wins (the wrapping transform for
    /// prefix calls like `from_secs_f64(x.as_bytes()/r)`), otherwise the
    /// *last* call in a postfix chain; then the earliest token evidence
    /// (local, parameter, field, suffix, time-type mention); a left-over
    /// unresolved identifier means `Unknown`, a literal-only factor is
    /// `Scalar`.
    fn eval_factor(&self, file: usize, lo: usize, hi: usize, locals: &[ULocal]) -> Inferred {
        let u = &self.units[file];
        let toks = &u.lexed.tokens;
        if lo > hi || lo >= toks.len() {
            return Inferred::unknown();
        }
        let hi = hi.min(toks.len() - 1);
        type CallEv = Option<(Inferred, Option<(usize, usize)>)>;
        let mut call_ev: CallEv = None;
        let keep = |cand: Inferred, cover: Option<(usize, usize)>, slot: &mut CallEv| {
            let wins = match slot.as_ref() {
                None => true,
                Some((held, held_cover)) => {
                    let cand_encloses = cover.is_some_and(|(o, c)| o < held.tok && held.tok < c);
                    let held_encloses =
                        held_cover.is_some_and(|(o, c)| o < cand.tok && cand.tok < c);
                    cand_encloses || (!held_encloses && cand.tok > held.tok)
                }
            };
            if wins {
                *slot = Some((cand, cover));
            }
        };
        for mc in u.model.calls.iter().filter(|c| c.dot >= lo && c.dot <= hi) {
            if let Some(b) = method_dim(&mc.name) {
                keep(
                    Inferred {
                        unit: Unit::Of(Dim::base(b)),
                        chain: vec![format!("`.{}()` reads {b} ({}:{})", mc.name, u.path, mc.line)],
                        via: None,
                        tok: mc.dot,
                        line: mc.line,
                    },
                    Some(mc.args),
                    &mut call_ev,
                );
            } else if let Some((d, label)) = name_dim(&mc.name) {
                keep(
                    Inferred {
                        unit: Unit::Of(d),
                        chain: vec![format!("`.{}()` {label} ({}:{})", mc.name, u.path, mc.line)],
                        via: None,
                        tok: mc.dot,
                        line: mc.line,
                    },
                    Some(mc.args),
                    &mut call_ev,
                );
            } else if PRESERVE_METHODS.contains(&mc.name.as_str()) {
                // Receiver-transparent: the receiver's own token evidence
                // carries the unit through (even when a `SimTime::max`-style
                // summary would match by name).
            } else if let Some(n) = self.resolve_method(file, &mc.name) {
                let dim = self.summaries[n].as_ref().map(|s| s.dim.clone());
                if let Some(dim) = dim {
                    keep(
                        Inferred {
                            unit: Unit::Of(dim),
                            chain: self.chain(n),
                            via: Some(n),
                            tok: mc.dot,
                            line: mc.line,
                        },
                        Some(mc.args),
                        &mut call_ev,
                    );
                }
            } else {
                return Inferred::unknown();
            }
        }
        for fc in u.model.free_calls.iter().filter(|c| c.called && c.tok >= lo && c.tok <= hi) {
            let time_ctor = TIME_CTORS
                .iter()
                .find(|(n, _)| *n == fc.name)
                .filter(|_| fc.qual.last().is_some_and(|q| TIME_TYPES.contains(&q.as_str())));
            if time_ctor.is_some() {
                let q = fc.qual.last().map(String::as_str).unwrap_or("");
                keep(
                    Inferred {
                        unit: Unit::Of(Dim::base("nanos")),
                        chain: vec![format!(
                            "`{q}::{}(..)` constructs sim time in nanos ({}:{})",
                            fc.name, u.path, fc.line
                        )],
                        via: None,
                        tok: fc.tok,
                        line: fc.line,
                    },
                    call_args(toks, fc.tok),
                    &mut call_ev,
                );
            } else if let Some((d, label)) = name_dim(&fc.name) {
                keep(
                    Inferred {
                        unit: Unit::Of(d),
                        chain: vec![format!("`{}(..)` {label} ({}:{})", fc.name, u.path, fc.line)],
                        via: None,
                        tok: fc.tok,
                        line: fc.line,
                    },
                    call_args(toks, fc.tok),
                    &mut call_ev,
                );
            } else if let Some(n) = self.resolve_free(file, fc.qual.as_slice(), &fc.name) {
                let dim = self.summaries[n].as_ref().map(|s| s.dim.clone());
                if let Some(dim) = dim {
                    keep(
                        Inferred {
                            unit: Unit::Of(dim),
                            chain: self.chain(n),
                            via: Some(n),
                            tok: fc.tok,
                            line: fc.line,
                        },
                        call_args(toks, fc.tok),
                        &mut call_ev,
                    );
                }
            } else if fc.name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                // A lower-case call we cannot see through could convert.
                // (Upper-case names are tuple/enum constructors, which
                // pass their payload through.)
                return Inferred::unknown();
            }
        }
        if u.model.macros.iter().any(|m| m.tok >= lo && m.tok <= hi) {
            return Inferred::unknown();
        }
        if toks[lo..=hi].iter().any(|t| t.kind == TokKind::Num && conversion_literal(&t.text)) {
            return Inferred::unknown();
        }
        if let Some((ev, _)) = call_ev {
            return ev;
        }
        // Token evidence: earliest wins.
        let mut best: Option<Inferred> = None;
        let mut unresolved = false;
        let consider = |cand: Inferred, best: &mut Option<Inferred>| {
            if best.as_ref().is_none_or(|b| cand.tok < b.tok) {
                *best = Some(cand);
            }
        };
        for i in lo..=hi {
            let t = &toks[i];
            if t.kind != TokKind::Ident || parse::is_keyword(&t.text) {
                continue;
            }
            if NUM_TYPES.contains(&t.text.as_str()) || t.text == "None" {
                continue;
            }
            let after_dot = i > 0 && toks[i - 1].is_punct('.');
            let in_path = i > 1 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
            if after_dot {
                if field_read_shape(toks, i - 1) {
                    if let Some(fu) = self.fields.get(&t.text) {
                        consider(
                            Inferred {
                                unit: Unit::Of(fu.dim.clone()),
                                chain: vec![format!("{} -> field `.{}`", fu.desc, t.text)],
                                via: None,
                                tok: i,
                                line: t.line,
                            },
                            &mut best,
                        );
                    } else if let Some((d, label)) = name_dim(&t.text) {
                        consider(
                            Inferred {
                                unit: Unit::Of(d),
                                chain: vec![format!(
                                    "field `.{}` {label} ({}:{})",
                                    t.text, u.path, t.line
                                )],
                                via: None,
                                tok: i,
                                line: t.line,
                            },
                            &mut best,
                        );
                    } else {
                        unresolved = true;
                    }
                }
                continue;
            }
            if in_path || toks.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                // Path interiors and qualifiers; calls are handled above.
                continue;
            }
            if TIME_TYPES.contains(&t.text.as_str()) {
                consider(
                    Inferred {
                        unit: Unit::Of(Dim::base("nanos")),
                        chain: vec![format!(
                            "`{}` value (sim time in nanos, {}:{})",
                            t.text, u.path, t.line
                        )],
                        via: None,
                        tok: i,
                        line: t.line,
                    },
                    &mut best,
                );
                continue;
            }
            if let Some(l) =
                locals.iter().rev().find(|l| l.name == t.text && i >= l.from && i <= l.until)
            {
                consider(
                    Inferred {
                        unit: Unit::Of(l.dim.clone()),
                        chain: l.chain.clone(),
                        via: None,
                        tok: i,
                        line: t.line,
                    },
                    &mut best,
                );
                continue;
            }
            if let Some((d, label)) = name_dim(&t.text) {
                consider(
                    Inferred {
                        unit: Unit::Of(d),
                        chain: vec![format!("`{}` {label} ({}:{})", t.text, u.path, t.line)],
                        via: None,
                        tok: i,
                        line: t.line,
                    },
                    &mut best,
                );
                continue;
            }
            if t.text.starts_with(|c: char| c.is_ascii_uppercase()) {
                // A type/variant mention, not a value.
                let heads_literal = toks.get(i + 1).is_some_and(|n| n.is_punct('{'));
                if !heads_literal {
                    // Upper-case consts (e.g. `QUEUE_CAP`) are values we
                    // cannot resolve — poison like any unknown ident,
                    // unless the name carried a suffix (handled above).
                    if t.text.chars().all(|c| !c.is_ascii_lowercase()) {
                        unresolved = true;
                    }
                }
                continue;
            }
            unresolved = true;
        }
        match best {
            Some(b) => b,
            None if unresolved => Inferred::unknown(),
            None => Inferred::scalar(),
        }
    }

    /// Resolves a method call to a summarized node (flow's gate: the
    /// caller's file must mention the owner type or trait).
    fn resolve_method(&self, file: usize, name: &str) -> Option<usize> {
        let cands = self.by_name.get(name)?;
        for &n in cands {
            let node = &self.graph.nodes[n];
            if node.owner.is_none() {
                continue;
            }
            let mentioned = node
                .owner
                .as_deref()
                .is_some_and(|o| self.file_idents[file].contains(o))
                || node.trait_name.as_deref().is_some_and(|tr| self.file_idents[file].contains(tr));
            if mentioned {
                return Some(n);
            }
        }
        None
    }

    /// Resolves a free call against `cands` with flow's gates: an
    /// unqualified call only matches a free fn of the same module; a
    /// qualified call matches on the last qualifier segment.
    fn resolve_in(
        &self,
        file: usize,
        qual: &[String],
        name: &str,
        cands: &[usize],
    ) -> Option<usize> {
        let u = &self.units[file];
        let _ = name;
        for &n in cands {
            let node = &self.graph.nodes[n];
            let matched = if qual.is_empty() {
                node.owner.is_none() && node.abs_module == u.mp.abs()
            } else {
                let q = qual.last().map(String::as_str).unwrap_or("");
                (node.owner.is_none() && node.abs_module.last().map(String::as_str) == Some(q))
                    || node.owner.as_deref() == Some(q)
            };
            if matched {
                return Some(n);
            }
        }
        None
    }

    /// Resolves a free call to a *summarized* node.
    fn resolve_free(&self, file: usize, qual: &[String], name: &str) -> Option<usize> {
        let cands = self.by_name.get(name)?.clone();
        self.resolve_in(file, qual, name, &cands)
    }

    /// Resolves a free call to *any* node (for parameter-unit checks).
    fn resolve_any(&self, file: usize, qual: &[String], name: &str) -> Option<usize> {
        let cands = self.all_by_name.get(name)?.clone();
        self.resolve_in(file, qual, name, &cands)
    }

    /// The call chain from the root evidence down to node `from`, one
    /// hop per entry, mirroring the taint pass's path printing.
    fn chain(&self, from: usize) -> Vec<String> {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = from;
        for _ in 0..16 {
            let Some(s) = self.summaries[cur].as_ref() else { break };
            let n = &self.graph.nodes[cur];
            hops.push(format!("`{}` ({}:{})", n.name, self.units[n.file].path, n.line));
            match s.via {
                Some(v) if v != cur => cur = v,
                _ => {
                    hops.push(format!("{} ({}:{})", s.what, self.units[n.file].path, s.line));
                    break;
                }
            }
        }
        hops.reverse();
        hops
    }

    /// The site scan: walks every fn body for binary add/sub/compare/
    /// assign sites whose operands carry conflicting concrete units, and
    /// checks time-constructor and free-call arguments against their
    /// declared parameter units.
    fn site_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        let graph_mode = self.graph.has_entries();
        for (file, u) in self.units.iter().enumerate() {
            let scope = graph_mode.then(|| self.graph.scope_for(file));
            for (fk, f) in u.model.fns.iter().enumerate() {
                let params = self.params_for(file, fk);
                let locals = self.locals_for(file, f.body, &params);
                self.scan_ops(file, f.body, &locals, scope.as_ref(), &mut out);
                self.check_call_args(file, f.body, &locals, &mut out);
            }
        }
        out
    }

    /// Binary-operator scan over one body span.
    fn scan_ops(
        &self,
        file: usize,
        body: (usize, usize),
        locals: &[ULocal],
        scope: Option<&crate::graph::FileScope>,
        out: &mut Vec<Finding>,
    ) {
        let u = &self.units[file];
        let toks = &u.lexed.tokens;
        let (b0, b1) = body;
        let mut i = b0;
        while i <= b1 && i < toks.len() {
            let Some((rhs_from, op_desc)) = binary_op_at(toks, i) else {
                i += 1;
                continue;
            };
            let left = operand_back(toks, i.saturating_sub(1), b0);
            let right = operand_fwd(toks, rhs_from, b1);
            if let (Some((ll, lh)), Some((rl, rh))) = (left, right) {
                let l = self.eval_span(file, ll, lh, locals);
                let r = self.eval_span(file, rl, rh, locals);
                if let (Unit::Of(ld), Unit::Of(rd)) = (&l.unit, &r.unit) {
                    if ld != rd {
                        out.push(self.mismatch_finding(
                            file,
                            toks,
                            i,
                            op_desc,
                            (ll, lh, &l, ld),
                            (rl, rh, &r, rd),
                            scope,
                        ));
                    }
                }
            }
            i = rhs_from;
        }
    }

    /// Builds the classified finding for one conflicting site.
    #[allow(clippy::too_many_arguments)]
    fn mismatch_finding(
        &self,
        file: usize,
        toks: &[Token],
        op_tok: usize,
        op_desc: &'static str,
        left: (usize, usize, &Inferred, &Dim),
        right: (usize, usize, &Inferred, &Dim),
        scope: Option<&crate::graph::FileScope>,
    ) -> Finding {
        let u = &self.units[file];
        let (ll, lh, l, ld) = left;
        let (rl, rh, r, rd) = right;
        let lt = span_text(toks, ll, lh);
        let rt = span_text(toks, rl, rh);
        let lc = l.chain.join(" -> ");
        let rc = r.chain.join(" -> ");
        let is_cmp = matches!(op_desc, "comparison");
        let mentions_cfg = |lo: usize, hi: usize| {
            toks[lo..=hi.min(toks.len() - 1)].iter().any(|t| {
                t.kind == TokKind::Ident && {
                    let low = t.text.to_ascii_lowercase();
                    low.contains("threshold") || low.contains("cfg") || low.contains("config")
                }
            })
        };
        let (rule, advice) = if ld.is_rate() || rd.is_rate() {
            (
                id::RATE_CONFUSION,
                "a rate and a quantity of a different shape only combine through an explicit \
                 step factor (multiply the rate by `dt`/`dt_secs`, or divide by `ticks_per_sec`)",
            )
        } else if is_cmp
            && scope.is_some_and(|s| s.in_reach(op_tok))
            && (mentions_cfg(ll, lh) || mentions_cfg(rl, rh))
        {
            (
                id::THRESHOLD_UNIT,
                "a detector threshold must be configured in the unit it is compared against — \
                 convert at the config boundary, not at the comparison site",
            )
        } else {
            (
                id::UNIT_MISMATCH,
                "convert explicitly at the boundary (simcore::time constructors or the \
                 NANOS_PER_* consts) so both operands carry one unit",
            )
        };
        Finding {
            path: u.path.clone(),
            line: toks[op_tok].line,
            rule,
            message: format!(
                "unit mismatch in {op_desc}: `{lt}` is {} ({lc}) but `{rt}` is {} ({rc}); {advice}",
                ld.render(),
                rd.render()
            ),
        }
    }

    /// Checks time-constructor arguments (`from_secs` wants secs) and
    /// free-call arguments against the callee's parameter units.
    fn check_call_args(
        &self,
        file: usize,
        body: (usize, usize),
        locals: &[ULocal],
        out: &mut Vec<Finding>,
    ) {
        let u = &self.units[file];
        let toks = &u.lexed.tokens;
        let (b0, b1) = body;
        for fc in u.model.free_calls.iter().filter(|c| c.called && c.tok >= b0 && c.tok <= b1) {
            let Some((open, close)) = call_args(toks, fc.tok) else { continue };
            if close <= open + 1 {
                continue;
            }
            let time_ctor = TIME_CTORS
                .iter()
                .find(|(n, _)| *n == fc.name)
                .filter(|_| fc.qual.last().is_some_and(|q| TIME_TYPES.contains(&q.as_str())));
            if let Some((ctor, expect)) = time_ctor {
                let want = Dim::base(expect);
                let a = self.eval_span(file, open + 1, close - 1, locals);
                if let Unit::Of(ad) = &a.unit {
                    if *ad != want {
                        let q = fc.qual.last().map(String::as_str).unwrap_or("");
                        out.push(Finding {
                            path: u.path.clone(),
                            line: fc.line,
                            rule: id::UNIT_MISMATCH,
                            message: format!(
                                "unit mismatch in constructor argument: `{q}::{ctor}` expects \
                                 {expect} but `{}` is {} ({}); pick the constructor matching the \
                                 value's unit",
                                span_text(toks, open + 1, close - 1),
                                ad.render(),
                                a.chain.join(" -> ")
                            ),
                        });
                    }
                }
                continue;
            }
            let Some(n) = self.resolve_any(file, fc.qual.as_slice(), &fc.name) else { continue };
            let callee_params = &self.params[n];
            if callee_params.iter().all(|(_, d)| d.is_none()) {
                continue;
            }
            for (k, (alo, ahi)) in split_args(toks, open, close).into_iter().enumerate() {
                let Some((pname, Some(pd))) = callee_params.get(k) else { continue };
                let a = self.eval_span(file, alo, ahi, locals);
                if let Unit::Of(ad) = &a.unit {
                    if ad != pd {
                        let callee = &self.graph.nodes[n];
                        out.push(Finding {
                            path: u.path.clone(),
                            line: fc.line,
                            rule: id::UNIT_MISMATCH,
                            message: format!(
                                "unit mismatch in call argument: parameter `{pname}` of `{}` \
                                 ({}:{}) is {} (declared by its name) but `{}` is {} ({}); \
                                 convert before the call",
                                callee.name,
                                self.units[callee.file].path,
                                callee.line,
                                pd.render(),
                                span_text(toks, alo, ahi),
                                ad.render(),
                                a.chain.join(" -> ")
                            ),
                        });
                    }
                }
            }
        }
    }

    /// The `raw-unit-conversion` pass: magic 10^3/10^6/10^9 integer
    /// literals adjacent to `*` or `/`, anywhere but `simcore::time`
    /// itself (the one blessed home of the conversion consts).
    fn raw_conversions(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for u in self.units.iter() {
            if u.path.ends_with("simcore/src/time.rs") {
                continue;
            }
            let toks = &u.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Num || !raw_conversion_int(&t.text) {
                    continue;
                }
                let scaled = [i.checked_sub(1).map(|p| &toks[p]), toks.get(i + 1)]
                    .into_iter()
                    .flatten()
                    .any(|n| n.is_punct('*') || n.is_punct('/'));
                if scaled {
                    out.push(Finding {
                        path: u.path.clone(),
                        line: t.line,
                        rule: id::RAW_UNIT_CONVERSION,
                        message: format!(
                            "magic unit-conversion literal `{}` — scale through simcore::time's \
                             named constructors (`from_micros`/`from_millis`/`from_secs`) or the \
                             NANOS_PER_MICRO/NANOS_PER_MILLI/NANOS_PER_SEC consts so the target \
                             unit stays explicit (a named count const is fine too)",
                            t.text
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Composes a factor into the running span result.
fn combine(acc: Inferred, f: Inferred, op: char, _toks: &[Token]) -> Inferred {
    let unit = if op == '/' { acc.unit.div(&f.unit) } else { acc.unit.mul(&f.unit) };
    let mut chain = acc.chain;
    let mut via = acc.via;
    let mut tok = acc.tok;
    let mut line = acc.line;
    if matches!(f.unit, Unit::Of(_)) {
        if chain.is_empty() {
            chain = f.chain;
            via = f.via;
            tok = f.tok;
            line = f.line;
        } else {
            let word = if op == '/' { "divided by" } else { "scaled by" };
            if let Some(first) = f.chain.last() {
                chain.push(format!("{word} {first}"));
            }
            via = None;
        }
    }
    Inferred { unit, chain, via, tok, line }
}

/// True when `rhs` could bind a single-name pattern (tuple patterns only
/// bind through their own suffixes).
fn names_len_one(_rhs: &Inferred) -> bool {
    true
}

/// True when a return-type span denotes a value that can carry ONE unit:
/// every identifier in it is a bare numeric primitive or a time type. A
/// struct/enum return (e.g. `-> Geometry`) aggregates many quantities, so
/// its fn never gets a scalar unit summary.
fn unit_bearing_return(toks: &[Token], span: (usize, usize)) -> bool {
    let mut saw = false;
    for t in toks.iter().take(span.1.min(toks.len() - 1) + 1).skip(span.0) {
        if t.kind != TokKind::Ident {
            continue;
        }
        if parse::is_keyword(&t.text) {
            continue;
        }
        if !NUM_TYPES.contains(&t.text.as_str()) && !TIME_TYPES.contains(&t.text.as_str()) {
            return false;
        }
        saw = true;
    }
    saw
}

/// The `-> TYPE` span of the fn whose body opens at `b0`, if it has an
/// explicit return type.
fn return_type_span(toks: &[Token], b0: usize) -> Option<(usize, usize)> {
    let sig = (0..b0).rev().find(|&k| toks[k].is_ident("fn"))?;
    let open = (sig..b0).find(|&k| toks[k].is_punct('('))?;
    let close = parse::match_delim(toks, open);
    if close >= b0 {
        return None;
    }
    let mut k = close + 1;
    while k + 1 < b0 {
        if toks[k].is_punct('-') && toks[k + 1].is_punct('>') {
            let start = k + 2;
            // The type runs to the body brace or a `where` clause.
            let end = match (start..b0).find(|&j| toks[j].is_ident("where")) {
                Some(j) => j.saturating_sub(1),
                None => b0.saturating_sub(1),
            };
            return (start <= end).then_some((start, end));
        }
        k += 1;
    }
    None
}

/// Named parameters of the fn whose body opens at `b0`, with the unit
/// each name or `SimTime`/`SimDuration` type declares.
fn signature_params(toks: &[Token], b0: usize) -> Vec<(String, Option<Dim>)> {
    let mut out = Vec::new();
    let Some(sig) = (0..b0).rev().find(|&k| toks[k].is_ident("fn")) else { return out };
    let Some(open) = (sig..b0).find(|&k| toks[k].is_punct('(')) else { return out };
    let close = parse::match_delim(toks, open);
    if close >= b0 {
        return out;
    }
    let mut k = open + 1;
    while k < close {
        let named = toks[k].kind == TokKind::Ident
            && !parse::is_keyword(&toks[k].text)
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && !toks[k - 1].is_punct(':');
        if !named {
            k += 1;
            continue;
        }
        let name = toks[k].text.clone();
        // The type span runs to the next depth-0 comma.
        let mut depth = 0i32;
        let mut j = k + 2;
        let mut type_time = false;
        while j < close {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && TIME_TYPES.contains(&t.text.as_str()) {
                type_time = true;
            }
            j += 1;
        }
        let dim = match name_dim(&name) {
            Some((d, _)) => Some(d),
            None if type_time => Some(Dim::base("nanos")),
            None => None,
        };
        out.push((name, dim));
        k = j + 1;
    }
    out
}

/// The `return EXPR;` spans plus the trailing expression of a body.
fn return_spans(toks: &[Token], body: (usize, usize)) -> Vec<(usize, usize)> {
    let (b0, b1) = body;
    let mut spans = Vec::new();
    let last = b1.min(toks.len().saturating_sub(1));
    for i in (b0 + 1)..last {
        if toks[i].is_ident("return") {
            if let Some(end) = rhs_end(toks, i + 1) {
                if end > i + 1 {
                    spans.push((i + 1, end - 1));
                }
            }
        }
    }
    // Trailing expression: whatever follows the last depth-0 `;`.
    let mut depth = 0i32;
    let mut start = b0 + 1;
    for (i, t) in toks.iter().enumerate().take(last).skip(b0 + 1) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => start = i + 1,
                _ => {}
            }
        }
    }
    if start < last
        && !toks[start].is_ident("for")
        && !toks[start].is_ident("while")
        && !toks[start].is_ident("loop")
        && !toks[start].is_ident("let")
    {
        spans.push((start, last - 1));
    }
    spans
}

/// Identifies a binary operator starting at token `i`; returns the index
/// the right operand starts at and a description of the op class.
fn binary_op_at(toks: &[Token], i: usize) -> Option<(usize, &'static str)> {
    let t = &toks[i];
    if t.kind != TokKind::Punct {
        return None;
    }
    let prev = i.checked_sub(1).map(|p| &toks[p]);
    let next = toks.get(i + 1);
    let prev_value = prev.is_some_and(|p| {
        (p.kind == TokKind::Ident && !parse::is_keyword(&p.text))
            || p.kind == TokKind::Num
            || p.is_punct(')')
            || p.is_punct(']')
    });
    let prev_is = |c: char| prev.is_some_and(|p| p.is_punct(c));
    let next_is = |c: char| next.is_some_and(|n| n.is_punct(c));
    match t.text.as_str() {
        "+" | "-" if prev_value && !next_is('>') && !next_is('=') => Some((i + 1, "addition")),
        "+" | "-" if prev_value && next_is('=') => Some((i + 2, "compound assignment")),
        "<" if prev_value
            && !prev_is('<')
            && !prev_is(':')
            && !next_is('<')
            && !prev.is_some_and(|p| {
                p.kind == TokKind::Ident && p.text.starts_with(|c: char| c.is_ascii_uppercase())
            }) =>
        {
            Some((if next_is('=') { i + 2 } else { i + 1 }, "comparison"))
        }
        ">" if prev_value && !prev_is('-') && !prev_is('=') && !prev_is('>') && !next_is('>') => {
            Some((if next_is('=') { i + 2 } else { i + 1 }, "comparison"))
        }
        // Plain `=` assignments are bindings, not combinations — the
        // binding rules (lets, field discovery) own those; only `==`
        // compares two existing quantities.
        "=" if next_is('=')
            && !prev_is('=')
            && !prev_is('!')
            && !prev_is('<')
            && !prev_is('>')
            && !prev_is('+')
            && !prev_is('-')
            && !prev_is('*')
            && !prev_is('/')
            && !prev_is('%')
            && !prev_is('&')
            && !prev_is('|')
            && !prev_is('^') =>
        {
            Some((i + 2, "comparison"))
        }
        "!" if next_is('=') => Some((i + 2, "comparison")),
        _ => None,
    }
}

/// Walks backward from `from` to find the left operand span, stopping at
/// a depth-0 expression boundary. Returns `(lo, hi)` inclusive.
fn operand_back(toks: &[Token], from: usize, floor: usize) -> Option<(usize, usize)> {
    if from < floor || from >= toks.len() {
        return None;
    }
    let mut depth = 0i32;
    let mut j = from as isize;
    let floor = floor as isize;
    while j >= floor {
        let t = &toks[j as usize];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," | "=" | "<" | ">" | "+" | "-" | "&" | "|" | "!" | "?" | ":"
                    if depth == 0 =>
                {
                    break;
                }
                "." if depth == 0
                    && (toks.get(j as usize + 1).is_some_and(|n| n.is_punct('.'))
                        || (j > 0 && toks[j as usize - 1].is_punct('.'))) =>
                {
                    break;
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident
            && depth == 0
            && matches!(
                t.text.as_str(),
                "return" | "let" | "if" | "else" | "while" | "match" | "in" | "for" | "loop"
            )
        {
            break;
        }
        j -= 1;
    }
    let lo = (j + 1) as usize;
    (lo <= from).then_some((lo, from))
}

/// Walks forward from `from` to find the right operand span, stopping at
/// a depth-0 expression boundary. Returns `(lo, hi)` inclusive.
fn operand_fwd(toks: &[Token], from: usize, ceil: usize) -> Option<(usize, usize)> {
    if from >= toks.len() || from > ceil {
        return None;
    }
    let mut depth = 0i32;
    let mut j = from;
    let ceil = ceil.min(toks.len() - 1);
    while j <= ceil {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                // A depth-0 `{` opens a block/struct body, not part of
                // this operand.
                "{" if depth == 0 => break,
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," | "=" | "<" | ">" | "+" | "-" | "&" | "|" | "?" | ":" if depth == 0 => {
                    break;
                }
                "." if depth == 0
                    && (toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
                        || (j > 0 && toks[j - 1].is_punct('.'))) =>
                {
                    break;
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident
            && depth == 0
            && matches!(
                t.text.as_str(),
                "return" | "let" | "if" | "else" | "while" | "match" | "in" | "for" | "loop"
            )
        {
            break;
        }
        j += 1;
    }
    let hi = j.saturating_sub(1);
    (hi >= from && j > from).then_some((from, hi))
}

/// Splits a call's argument list at depth-0 commas into spans.
fn split_args(toks: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for (i, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                if i > start {
                    out.push((start, i - 1));
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if close > start {
        out.push((start, close - 1));
    }
    out
}

/// A short rendering of a token span for messages.
fn span_text(toks: &[Token], lo: usize, hi: usize) -> String {
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut parts: Vec<&str> = Vec::new();
    for t in toks.iter().take(hi + 1).skip(lo).take(10) {
        parts.push(match t.kind {
            TokKind::Str => "\"..\"",
            _ => t.text.as_str(),
        });
    }
    let mut s = parts.join(" ");
    if hi.saturating_sub(lo) >= 10 {
        s.push_str(" ..");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nanos() -> Unit {
        Unit::Of(Dim::base("nanos"))
    }

    fn millis() -> Unit {
        Unit::Of(Dim::base("millis"))
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        let cases = [Unit::Unknown, Unit::Scalar, nanos(), millis(), Unit::Conflict];
        for a in &cases {
            assert_eq!(a.join(a), *a, "idempotent: {a:?}");
            for b in &cases {
                assert_eq!(a.join(b), b.join(a), "commutative: {a:?} vs {b:?}");
            }
        }
        assert_eq!(Unit::Unknown.join(&nanos()), nanos());
        assert_eq!(Unit::Scalar.join(&nanos()), nanos());
        assert_eq!(nanos().join(&millis()), Unit::Conflict);
    }

    #[test]
    fn mul_div_round_trips() {
        let rate = Dim::base("nanos").div(&Dim::base("secs"));
        assert_eq!(rate.mul(&Dim::base("secs")), Dim::base("nanos"));
        assert_eq!(Dim::base("nanos").div(&Dim::base("nanos")), Dim::default());
        assert!(Dim::base("nanos").div(&Dim::base("nanos")).is_empty());
        assert!(rate.is_rate());
        assert!(!Dim::base("ticks").is_rate());
        // Unit-level: same-unit division is a dimensionless ratio.
        assert_eq!(nanos().div(&nanos()), Unit::Scalar);
        assert_eq!(nanos().div(&Unit::Scalar), nanos());
        assert_eq!(Unit::Unknown.mul(&nanos()), Unit::Unknown);
    }

    #[test]
    fn dims_render_ascii() {
        assert_eq!(Dim::base("nanos").render(), "nanos");
        assert_eq!(Dim::base("nanos").div(&Dim::base("secs")).render(), "nanos/secs");
        assert_eq!(Dim::base("secs").inv().render(), "1/secs");
        assert_eq!(Dim::base("nanos").mul(&Dim::base("nanos")).render(), "nanos^2");
        assert_eq!(Dim::default().render(), "dimensionless");
    }

    #[test]
    fn names_declare_dimensions() {
        assert_eq!(name_dim("limit_ms").unwrap().0, Dim::base("millis"));
        assert_eq!(name_dim("dt_secs").unwrap().0, Dim::base("secs"));
        assert!(name_dim("dt").is_none(), "dt's unit comes from its type or binding");
        assert_eq!(
            name_dim("ticks_per_sec").unwrap().0,
            Dim::base("ticks").div(&Dim::base("secs"))
        );
        assert_eq!(name_dim("open_per_sec").unwrap().0, Dim::base("secs").inv());
        assert_eq!(name_dim("lba").unwrap().0, Dim::base("blocks"));
        assert_eq!(
            name_dim("NANOS_PER_SEC").unwrap().0,
            Dim::base("nanos").div(&Dim::base("secs"))
        );
        assert!(name_dim("attempts").is_none());
        assert!(name_dim("rows_per_million").is_none());
    }

    #[test]
    fn conversion_literals_are_recognized() {
        for t in ["1_000", "1000", "1_000_000u64", "1_000_000_000", "1e9", "1000.0"] {
            assert!(conversion_literal(t), "{t}");
        }
        for t in ["1_000", "1000u64", "1_000_000_000"] {
            assert!(raw_conversion_int(t), "{t}");
        }
        for t in ["1e9", "1000.0", "1024", "999"] {
            assert!(!raw_conversion_int(t), "{t}");
        }
        assert!(!conversion_literal("1024"));
    }
}
