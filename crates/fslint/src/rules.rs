//! The determinism rules `fs-lint` enforces, and the matching that backs
//! them.
//!
//! Every rule has a stable kebab-case id that suppression comments and
//! `--allow` refer to. Rules match on lexed identifier tokens
//! ([`crate::lexer`]), so forbidden names inside strings, comments, and doc
//! examples never fire.

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::BTreeMap;

/// Stable rule identifiers.
pub mod id {
    /// Wall-clock reads and sleeps (`Instant`, `SystemTime`,
    /// `thread::sleep`) outside `crates/bench`.
    pub const NO_WALL_CLOCK: &str = "no-wall-clock";
    /// `HashMap`/`HashSet`: iteration order is not deterministic.
    pub const NO_UNORDERED_COLLECTIONS: &str = "no-unordered-collections";
    /// Ambient randomness (`thread_rng`, `from_entropy`, `rand::random`).
    pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
    /// Duplicate `derive("…")` stream labels across distinct files.
    pub const UNIQUE_STREAM_LABELS: &str = "unique-stream-labels";
    /// Crate roots must `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]`,
    /// and no scanned file may use `unsafe` at all.
    pub const FORBID_UNSAFE_EVERYWHERE: &str = "forbid-unsafe-everywhere";
    /// Files pinning golden constants must carry a regeneration comment.
    pub const GOLDEN_REGEN_NOTE: &str = "golden-regen-note";
    /// Scheduling-path comparators keyed on one expression (or a float):
    /// ties fall back to container order.
    pub const STABLE_TIEBREAK: &str = "stable-tiebreak";
    /// `partial_cmp(..).unwrap()`-style forced total orders and
    /// NaN-absorbing float `min`/`max` reductions.
    pub const FLOAT_TOTAL_ORDER: &str = "float-total-order";
    /// `unwrap`/`expect`/panicking macros/unbounded subscripts in
    /// injector-reachable library code.
    pub const PANIC_PATH: &str = "panic-path";
    /// A registered injector/scenario class that reaches no oracle module
    /// from the campaign dispatch (whole-program, call-graph based).
    pub const ORACLE_COVERAGE: &str = "oracle-coverage";
    /// Campaign code not reachable from the `fs-campaign` binary
    /// (whole-program, call-graph based).
    pub const DEAD_SCENARIO: &str = "dead-scenario";
    /// A nondeterministic source value flows into a digest fold, golden
    /// assertion, or `BENCH_*.json` metric emission (interprocedural,
    /// taint-summary based; reported with the source→sink call path).
    pub const DIGEST_TAINT: &str = "digest-taint";
    /// An RNG stream rooted on a loop index or shard id instead of a
    /// literal/master seed and a label-rooted `derive(…)` chain.
    pub const RNG_LINEAGE: &str = "rng-lineage";
    /// A nondeterministic source value flows into an oracle verdict.
    pub const ORACLE_TAINT: &str = "oracle-taint";
    /// An add/sub/compare/accumulate site whose two operands carry
    /// conflicting inferred units (interprocedural, unit-summary based;
    /// reported with both inference chains).
    pub const UNIT_MISMATCH: &str = "unit-mismatch";
    /// A magic `* 1_000` / `* 1_000_000` / `* 1_000_000_000` conversion
    /// literal outside `simcore::time` — named constructors/consts only.
    pub const RAW_UNIT_CONVERSION: &str = "raw-unit-conversion";
    /// A per-second rate combined with a per-tick quantity without an
    /// explicit `dt` factor.
    pub const RATE_CONFUSION: &str = "rate-confusion";
    /// A configured threshold compared against an observation of a
    /// different inferred unit in injector/detector-reachable code.
    pub const THRESHOLD_UNIT: &str = "threshold-unit";
    /// An oracle/detector verdict path reachable from the campaign
    /// runner that writes simulation state (interprocedural,
    /// effect-summary based; reported with the write chain).
    pub const ORACLE_PURE: &str = "oracle-pure";
    /// Two same-batch handlers with overlapping write sets dispatched
    /// from `pop_batch` without an explicit seq tiebreak.
    pub const BATCH_COMMUTE: &str = "batch-commute";
    /// An injector writing state outside its declared injection surface.
    pub const INJECTION_SCOPED: &str = "injection-scoped";
    /// A metastable policy hook writing non-policy-owned state.
    pub const MITIGATION_EFFECT: &str = "mitigation-effect";
    /// A valid `fslint: allow(...)` suppression that no longer silences
    /// any finding and should be deleted.
    pub const SUPPRESSION_STALE: &str = "suppression-stale";
    /// An inline `allow(...)` suppression comment that is unparsable,
    /// names an unknown rule, or lacks the mandatory reason. Not allowable.
    pub const MALFORMED_SUPPRESSION: &str = "malformed-suppression";
}

/// Base URL of the rule documentation (the TESTING.md rule table); each
/// rule's [`RuleInfo::help`] anchor appends to it for the SARIF
/// `helpUri`, so GitHub inline annotations link straight to the docs.
pub const HELP_BASE: &str =
    "https://github.com/paper-repo-growth/fail-stutter/blob/main/docs/TESTING.md";

/// One rule's id, one-line description (for `--list-rules`), and SARIF
/// metadata (severity level + documentation anchor).
pub struct RuleInfo {
    /// Stable kebab-case id used in suppressions and `--allow`.
    pub id: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
    /// SARIF `defaultConfiguration.level`: `"error"` for contract rules,
    /// `"warning"` for hygiene rules (suppression-stale, dead-scenario).
    pub level: &'static str,
    /// Anchor fragment under [`HELP_BASE`] documenting the rule family.
    pub help: &'static str,
}

/// Documentation anchors, one per rule family section in TESTING.md.
mod anchor {
    /// The token rules and the suppression machinery.
    pub const TIER0: &str = "#tier-0--static-checks-fs-lint";
    /// The call-graph-scoped semantic rules.
    pub const REACH: &str = "#reachability-scoping";
    /// The whole-program graph rules.
    pub const WHOLE: &str = "#whole-program-rules";
    /// The interprocedural taint rules.
    pub const TAINT: &str = "#taint-scoping";
    /// The dimensional-analysis rules.
    pub const UNITS: &str = "#unit-scoping";
    /// The effect-analysis rules.
    pub const EFFECTS: &str = "#effect-scoping";
}

/// Every rule the pass knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: id::NO_WALL_CLOCK,
        summary: "std::time::Instant / SystemTime / thread::sleep are forbidden outside \
                  crates/bench — simulated time only",
        level: "error",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::NO_UNORDERED_COLLECTIONS,
        summary: "HashMap/HashSet are forbidden — BTreeMap/BTreeSet keep iteration \
                  deterministic",
        level: "error",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::NO_AMBIENT_RNG,
        summary: "thread_rng / from_entropy / rand::random are forbidden — randomness must \
                  flow through simcore::rng::Stream::derive",
        level: "error",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::UNIQUE_STREAM_LABELS,
        summary: "a derive(\"label\") string may not recur in a second file — label \
                  collisions correlate supposedly-independent streams",
        level: "error",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::FORBID_UNSAFE_EVERYWHERE,
        summary: "crate roots carry #![forbid(unsafe_code)] + #![warn(missing_docs)]; no \
                  scanned file uses `unsafe`",
        level: "error",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::GOLDEN_REGEN_NOTE,
        summary: "files pinning golden constants carry a regeneration note (how to re-pin, \
                  see docs/TESTING.md)",
        level: "error",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::STABLE_TIEBREAK,
        summary: "scheduling-set comparators (sort/min/max/Ord impls/BinaryHeap) must carry \
                  a stable tiebreak key and never key on floats; scope is call-graph derived",
        level: "error",
        help: anchor::REACH,
    },
    RuleInfo {
        id: id::FLOAT_TOTAL_ORDER,
        summary: "no partial_cmp(..).unwrap()/expect()/unwrap_or() and no NaN-absorbing \
                  f64::min/max reductions — use total_cmp or an integer key",
        level: "error",
        help: anchor::REACH,
    },
    RuleInfo {
        id: id::PANIC_PATH,
        summary: "no unwrap/expect/panic!-family/unbounded subscripts in code reachable from \
                  an injector/detector/scheduler entry point (call-graph fixpoint)",
        level: "error",
        help: anchor::REACH,
    },
    RuleInfo {
        id: id::ORACLE_COVERAGE,
        summary: "every scenario class registered with the campaign dispatch must reach an \
                  oracle module, and every catalog constructor must be wired into the \
                  campaign binary",
        level: "error",
        help: anchor::WHOLE,
    },
    RuleInfo {
        id: id::DEAD_SCENARIO,
        summary: "campaign code must be reachable from the fs-campaign binary — a dead \
                  scenario cell looks covered but never runs",
        level: "warning",
        help: anchor::WHOLE,
    },
    RuleInfo {
        id: id::DIGEST_TAINT,
        summary: "no wall-clock / ambient-RNG / unordered-iteration / pointer-format / \
                  thread-id / env-read / NaN-fold value may flow (interprocedurally) into a \
                  digest fold, golden assertion, or bench metric emission",
        level: "error",
        help: anchor::TAINT,
    },
    RuleInfo {
        id: id::RNG_LINEAGE,
        summary: "RNG streams must be rooted on a literal or master seed and derived through \
                  label-rooted derive()/derive_index() chains, never seeded from loop indices \
                  or shard ids",
        level: "error",
        help: anchor::TAINT,
    },
    RuleInfo {
        id: id::ORACLE_TAINT,
        summary: "no nondeterministic source value may flow into an oracle verdict — a \
                  verdict that depends on the host is not an invariant check",
        level: "error",
        help: anchor::TAINT,
    },
    RuleInfo {
        id: id::UNIT_MISMATCH,
        summary: "quantities added, subtracted, or compared must carry the same inferred \
                  unit (nanos/millis/secs/ticks/blocks/bytes — interprocedural inference \
                  over signatures and naming discipline)",
        level: "error",
        help: anchor::UNITS,
    },
    RuleInfo {
        id: id::RAW_UNIT_CONVERSION,
        summary: "no magic *1_000/*1_000_000/*1_000_000_000 conversion literals outside \
                  simcore::time — use the named from_* constructors or NANOS_PER_* consts, \
                  which also carry the dimension for inference",
        level: "error",
        help: anchor::UNITS,
    },
    RuleInfo {
        id: id::RATE_CONFUSION,
        summary: "a per-second rate and a per-tick quantity only combine through an \
                  explicit dt factor (rate * dt_secs or a ticks_per_sec scaling)",
        level: "error",
        help: anchor::UNITS,
    },
    RuleInfo {
        id: id::THRESHOLD_UNIT,
        summary: "a configured threshold in injector/detector-reachable code must be \
                  compared in the unit of the observation it gates",
        level: "error",
        help: anchor::UNITS,
    },
    RuleInfo {
        id: id::ORACLE_PURE,
        summary: "oracle/detector verdict paths reachable from the campaign runner must be \
                  write-free on simulation state (interprocedural effect summaries; the \
                  probe effect, made a lint)",
        level: "error",
        help: anchor::EFFECTS,
    },
    RuleInfo {
        id: id::BATCH_COMMUTE,
        summary: "same-batch handlers with overlapping write sets dispatched from pop_batch \
                  must be ordered by an explicit seq tiebreak — equal-timestamp dispatch \
                  order is otherwise unspecified",
        level: "error",
        help: anchor::EFFECTS,
    },
    RuleInfo {
        id: id::INJECTION_SCOPED,
        summary: "injectors write only through their declared injection surface (their own \
                  fields and the types their struct names), never arbitrary sim state",
        level: "error",
        help: anchor::EFFECTS,
    },
    RuleInfo {
        id: id::MITIGATION_EFFECT,
        summary: "metastable policy hooks (shed/breaker) write policy-owned state only — a \
                  mitigation that mutates server internals is the sustaining effect itself",
        level: "error",
        help: anchor::EFFECTS,
    },
    RuleInfo {
        id: id::SUPPRESSION_STALE,
        summary: "a suppression comment that silences no finding any more must be deleted \
                  (the invariant it documented is now machine-checked or gone)",
        level: "warning",
        help: anchor::TIER0,
    },
    RuleInfo {
        id: id::MALFORMED_SUPPRESSION,
        summary: "fslint suppression comments must parse, name known rules, and give a \
                  reason (never allowable)",
        level: "error",
        help: anchor::TIER0,
    },
];

/// True if `rule` is a known rule id.
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule)
}

/// One unsuppressed violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token (or comment).
    pub line: u32,
    /// The violated rule's id.
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

/// One lexed file plus the path facts rules key on.
pub struct FileCtx<'a> {
    /// Workspace-relative path, with `/` separators.
    pub path: String,
    /// Lexed tokens and comments.
    pub lexed: &'a Lexed,
}

impl FileCtx<'_> {
    /// True for files under `crates/bench/` — the one place allowed to
    /// wall-time real executions.
    fn is_bench(&self) -> bool {
        self.path.starts_with("crates/bench/")
    }

    /// True for crate roots: `src/lib.rs` at any depth.
    fn is_crate_root(&self) -> bool {
        self.path == "src/lib.rs" || self.path.ends_with("/src/lib.rs")
    }
}

fn tok<'a>(ctx: &'a FileCtx<'_>, i: usize) -> Option<&'a Token> {
    ctx.lexed.tokens.get(i)
}

/// True if tokens at `i` spell the path `a::b`.
fn is_path_pair(ctx: &FileCtx<'_>, i: usize, a: &str, b: &str) -> bool {
    tok(ctx, i).is_some_and(|t| t.is_ident(a))
        && tok(ctx, i + 1).is_some_and(|t| t.is_punct(':'))
        && tok(ctx, i + 2).is_some_and(|t| t.is_punct(':'))
        && tok(ctx, i + 3).is_some_and(|t| t.is_ident(b))
}

/// Runs all single-file rules over one file.
pub fn check_file(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    no_wall_clock(ctx, findings);
    no_unordered_collections(ctx, findings);
    no_ambient_rng(ctx, findings);
    forbid_unsafe_everywhere(ctx, findings);
    golden_regen_note(ctx, findings);
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileCtx<'_>,
    line: u32,
    rule: &'static str,
    msg: String,
) {
    findings.push(Finding { path: ctx.path.clone(), line, rule, message: msg });
}

fn no_wall_clock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.is_bench() {
        // crates/bench may wall-time real executions (Criterion-style);
        // everything it *simulates* still runs on SimTime.
        return;
    }
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let named = match t.text.as_str() {
            "Instant" | "SystemTime" => Some(t.text.as_str()),
            "sleep" | "sleep_ms" if i >= 3 && is_path_pair(ctx, i - 3, "thread", &t.text) => {
                Some("thread::sleep")
            }
            _ => None,
        };
        if let Some(name) = named {
            push(
                findings,
                ctx,
                t.line,
                id::NO_WALL_CLOCK,
                format!(
                    "`{name}` reads or waits on the wall clock; the simulation is \
                     integer-SimTime only (wall timing is allowed only under crates/bench)"
                ),
            );
        }
    }
}

fn no_unordered_collections(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for t in &ctx.lexed.tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        let replacement = match t.text.as_str() {
            "HashMap" => "BTreeMap",
            "HashSet" => "BTreeSet",
            _ => continue,
        };
        push(
            findings,
            ctx,
            t.line,
            id::NO_UNORDERED_COLLECTIONS,
            format!(
                "`{}` iterates in randomized order, which leaks into digests and goldens; \
                 use `{replacement}`",
                t.text
            ),
        );
    }
}

fn no_ambient_rng(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let named = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => Some(t.text.as_str()),
            "random" if i >= 3 && is_path_pair(ctx, i - 3, "rand", "random") => {
                Some("rand::random")
            }
            _ => None,
        };
        if let Some(name) = named {
            push(
                findings,
                ctx,
                t.line,
                id::NO_AMBIENT_RNG,
                format!(
                    "`{name}` draws ambient entropy; all randomness must be a labelled \
                     child of the master seed via simcore::rng::Stream::derive"
                ),
            );
        }
    }
}

fn forbid_unsafe_everywhere(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.lexed.tokens.iter().enumerate() {
        if t.is_ident("unsafe") {
            // Attribute mentions like `forbid(unsafe_code)` lex as the
            // distinct ident `unsafe_code`, so this is a real usage.
            let _ = i;
            push(
                findings,
                ctx,
                t.line,
                id::FORBID_UNSAFE_EVERYWHERE,
                "`unsafe` is forbidden everywhere in this workspace".to_string(),
            );
        }
    }
    if ctx.is_crate_root() {
        for (attr, arg) in [("forbid", "unsafe_code"), ("warn", "missing_docs")] {
            let present = ctx.lexed.tokens.windows(4).any(|w| {
                w[0].is_ident(attr)
                    && w[1].is_punct('(')
                    && w[2].is_ident(arg)
                    && w[3].is_punct(')')
            });
            if !present {
                push(
                    findings,
                    ctx,
                    1,
                    id::FORBID_UNSAFE_EVERYWHERE,
                    format!("crate root is missing `#![{attr}({arg})]`"),
                );
            }
        }
    }
}

fn golden_regen_note(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // Only *declarations* pin a golden: `const GOLDEN_…`, `fn golden_…`.
    // A mere use of an imported golden name is some other file's problem.
    let toks = &ctx.lexed.tokens;
    let Some(first_golden) = toks.iter().enumerate().find_map(|(i, t)| {
        let declares = i > 0
            && matches!(toks[i - 1].text.as_str(), "const" | "static" | "fn")
            && toks[i - 1].kind == TokKind::Ident;
        (declares && t.kind == TokKind::Ident && t.text.to_ascii_lowercase().starts_with("golden"))
            .then_some(t)
    }) else {
        return;
    };
    let has_note =
        ctx.lexed.comments.iter().any(|c| c.text.to_ascii_lowercase().contains("regenerat"));
    if !has_note {
        push(
            findings,
            ctx,
            first_golden.line,
            id::GOLDEN_REGEN_NOTE,
            format!(
                "`{}` pins a golden but the file has no regeneration note; add a comment \
                 saying how to regenerate the constants (see docs/TESTING.md)",
                first_golden.text
            ),
        );
    }
}

/// One `derive("label")` call site.
#[derive(Clone, Debug)]
pub struct LabelSite {
    /// Workspace-relative path of the file containing the call.
    pub path: String,
    /// 1-based line of the label literal.
    pub line: u32,
    /// The label string, as written.
    pub label: String,
}

/// Extracts every literal-label `derive("…")` call site from one file.
///
/// Only *direct string literals* count: `derive(&format!(…))` and
/// `derive_index(i)` build labels dynamically and are out of scope. The
/// attribute form `#[derive(Clone)]` never matches because its argument is
/// an identifier, not a string literal.
pub fn label_sites(ctx: &FileCtx<'_>) -> Vec<LabelSite> {
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("derive")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
        {
            let lit = &toks[i + 2];
            out.push(LabelSite { path: ctx.path.clone(), line: lit.line, label: lit.text.clone() });
        }
    }
    out
}

/// The cross-file rule: a label string may not recur in a second file.
///
/// Reuse *within* one file is allowed — it is visible locally and is how
/// deliberate stream sharing (e.g. a metamorphic fresh/degraded pair) is
/// written. Reuse across files silently correlates streams that every
/// reader assumes are independent, so each colliding site gets a finding.
pub fn check_unique_stream_labels(sites: &[LabelSite], findings: &mut Vec<Finding>) {
    let mut by_label: BTreeMap<&str, Vec<&LabelSite>> = BTreeMap::new();
    for s in sites {
        by_label.entry(&s.label).or_default().push(s);
    }
    for (label, sites) in by_label {
        let mut files: Vec<&str> = sites.iter().map(|s| s.path.as_str()).collect();
        files.sort_unstable();
        files.dedup();
        if files.len() < 2 {
            continue;
        }
        for site in sites {
            let others: Vec<String> =
                files.iter().filter(|f| **f != site.path).map(|f| (*f).to_string()).collect();
            findings.push(Finding {
                path: site.path.clone(),
                line: site.line,
                rule: id::UNIQUE_STREAM_LABELS,
                message: format!(
                    "stream label \"{label}\" is also derived in {}; identical labels \
                     correlate supposedly-independent RNG streams — use a component-scoped \
                     label",
                    others.join(", ")
                ),
            });
        }
    }
}
