//! A small hand-rolled Rust lexer: just enough token structure for rule
//! matching, with comments preserved for suppression and note checks.
//!
//! The build environment has no crates.io access, so there is no `syn` to
//! lean on. The lexer therefore recognises exactly the surface the rules
//! need: identifiers (including `r#raw` identifiers), string-ish literals
//! (plain, byte, and raw strings with any `#` count), character literals
//! vs. lifetimes, numbers, punctuation, and both comment forms (line, and
//! block with nesting). Rules match on identifier *tokens*, so a forbidden
//! name inside a string, comment, or doc example can never fire a finding.

/// What kind of token a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `r#type` → `type`).
    Ident,
    /// A string-ish literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    /// The token text is the literal's inner content, as written.
    Str,
    /// A character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Token text: identifier name, literal content, or punctuation char.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block, doc or plain), with its span.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text *without* the `//`/`/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for line comments).
    pub end_line: u32,
}

/// The result of lexing one file: code tokens plus preserved comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Token {
    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool, out: &mut String) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Lexes `src` into tokens and comments.
///
/// The lexer never fails: malformed input (an unterminated string, a lone
/// backslash) degrades to best-effort tokens rather than an error, because
/// a linter must keep going to report what it *can* see.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { chars: src.chars().collect(), pos: 0, line: 1 };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                cur.eat_while(|c| c != '\n', &mut text);
                out.comments.push(Comment { text, line, end_line: line });
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            if depth > 0 {
                                text.push_str("*/");
                            }
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: tolerate
                    }
                }
                out.comments.push(Comment { text, line, end_line: cur.line });
            }
            '"' => {
                cur.bump();
                let text = lex_plain_string(&mut cur);
                out.tokens.push(Token { kind: TokKind::Str, text, line });
            }
            '\'' => lex_quote(&mut cur, &mut out, line),
            _ if is_ident_start(c) => lex_word(&mut cur, &mut out, line),
            _ if c.is_ascii_digit() => {
                let mut text = String::new();
                cur.eat_while(is_ident_continue, &mut text);
                // Consume a fractional part, but never a `..` range operator.
                if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push('.');
                    cur.bump();
                    cur.eat_while(is_ident_continue, &mut text);
                }
                out.tokens.push(Token { kind: TokKind::Num, text, line });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
            }
        }
    }
    out
}

/// Lexes the body of a `"…"` string; the opening quote is already consumed.
fn lex_plain_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    loop {
        match cur.bump() {
            None | Some('"') => break,
            Some('\\') => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            Some(c) => text.push(c),
        }
    }
    text
}

/// Lexes the body of a raw string `r##"…"##`; `hashes` were already counted
/// and the opening quote consumed.
fn lex_raw_string(cur: &mut Cursor, hashes: usize) -> String {
    let mut text = String::new();
    loop {
        match cur.bump() {
            None => break,
            Some('"') => {
                if (0..hashes).all(|k| cur.peek(k) == Some('#')) {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break;
                }
                text.push('"');
            }
            Some(c) => text.push(c),
        }
    }
    text
}

/// Disambiguates `'a'` / `'\n'` (char literal) from `'a` / `'static`
/// (lifetime) at an opening single quote.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // the opening '
    match (cur.peek(0), cur.peek(1)) {
        (Some('\\'), _) => {
            // Escaped char literal: consume the escape, then to the close.
            cur.bump();
            let mut text = String::from("\\");
            if let Some(e) = cur.bump() {
                text.push(e);
                if e == 'u' {
                    // \u{…}
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            out.tokens.push(Token { kind: TokKind::Char, text, line });
        }
        (Some(c0), Some('\'')) => {
            // 'x' — a one-character literal (covers '_' and 'r' too).
            cur.bump();
            cur.bump();
            out.tokens.push(Token { kind: TokKind::Char, text: c0.to_string(), line });
        }
        (Some(c0), _) if is_ident_start(c0) => {
            let mut text = String::new();
            cur.eat_while(is_ident_continue, &mut text);
            out.tokens.push(Token { kind: TokKind::Lifetime, text, line });
        }
        _ => out.tokens.push(Token { kind: TokKind::Punct, text: "'".into(), line }),
    }
}

/// Lexes something starting with an identifier character, resolving the
/// string prefixes `r` / `b` / `br` and raw identifiers `r#ident`.
fn lex_word(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut word = String::new();
    cur.eat_while(is_ident_continue, &mut word);

    let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br");
    match (is_str_prefix, cur.peek(0)) {
        (true, Some('"')) => {
            cur.bump();
            let text = if word == "b" {
                lex_plain_string(cur) // b"…" has escapes like a plain string
            } else {
                lex_raw_string(cur, 0)
            };
            out.tokens.push(Token { kind: TokKind::Str, text, line });
        }
        (true, Some('#')) if word != "b" => {
            // Either a raw string r#…#"…"#…# or a raw identifier r#ident.
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) == Some('"') {
                for _ in 0..=hashes {
                    cur.bump();
                }
                let text = lex_raw_string(cur, hashes);
                out.tokens.push(Token { kind: TokKind::Str, text, line });
            } else if word == "r" && hashes == 1 && cur.peek(1).is_some_and(is_ident_start) {
                cur.bump(); // the '#'
                let mut name = String::new();
                cur.eat_while(is_ident_continue, &mut name);
                out.tokens.push(Token { kind: TokKind::Ident, text: name, line });
            } else {
                out.tokens.push(Token { kind: TokKind::Ident, text: word, line });
            }
        }
        (true, Some('\'')) if word == "b" => {
            // Byte literal b'x' — reuse the char path.
            lex_quote(cur, out, line);
        }
        _ => out.tokens.push(Token { kind: TokKind::Ident, text: word, line }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        let ids = idents(r#"let x = "HashMap::new()"; let y = 1;"#);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn comments_are_preserved_not_tokenised() {
        let l = lex("// HashMap here\nlet a = 1; /* SystemTime */");
        assert!(l.tokens.iter().all(|t| t.text != "HashMap" && t.text != "SystemTime"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let chars: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let l = lex("let a = \"x\ny\nz\";\nlet b = 2;");
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
