//! A lightweight item/expression parser over the lexed token stream.
//!
//! The semantic rules ([`crate::sem`]) need more shape than bare tokens:
//! which spans are test code, what each function's locals look like, where
//! method-call chains and comparator closures sit, and which expressions
//! index into collections. With no `syn` available offline, this module
//! recovers exactly that structure — and nothing more — from the
//! [`crate::lexer`] output:
//!
//! * `fn` items with their body spans, surrounding `#[test]`/`#[cfg(test)]`
//!   markers, `for`-loop variables, closure parameters, and a per-function
//!   set of float-typed locals (`let x: f64`, float literals, `as f64`);
//! * `impl Ord for T` / `impl PartialOrd for T` blocks;
//! * *every* `impl` block (inherent or trait) with its type and trait
//!   names, so the call graph ([`crate::graph`]) can attach methods to
//!   their owners;
//! * method calls `.name(args)` — including turbofish forms
//!   `.collect::<Vec<_>>()` — with balanced argument spans and the method
//!   chained immediately after the call, if any;
//! * free-function calls and qualified path references
//!   (`helper(x)`, `beta::helper(x)`, `Fnv64::new()`, `catalog::all`) with
//!   their qualifier segments, for call-graph edges;
//! * `struct` definitions with their body spans (the graph uses these to
//!   find `BinaryHeap` fields);
//! * `use`/`pub use` declarations, flattened to one item per imported
//!   name (groups and globs included), for module resolution
//!   ([`crate::resolve`]);
//! * macro invocations `name!(…)`;
//! * index expressions `recv[idx]` (attributes, slice types, and array
//!   literals are not index expressions and never match);
//! * `BinaryHeap<…>` type mentions with their generic argument span.
//!
//! Everything is spans of token indices into the original
//! [`Lexed::tokens`](crate::lexer::Lexed) vector; the parser allocates no
//! token copies. Like the lexer, it never fails: unparsable stretches are
//! skipped, because a linter must report what it *can* see.

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::BTreeSet;

/// Words that look like identifiers but can never *be* an indexed value or
/// a bound variable (used to reject `&mut [T]` as an index expression and
/// keyword "patterns" in `for` loops).
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

/// True if `word` is a Rust keyword (see [`KEYWORDS`]).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// One parsed `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token span `[start, end]` of the body block, braces included.
    pub body: (usize, usize),
    /// True when the item is test code: it carries `#[test]` / `#[cfg(test)]`
    /// or sits inside a `#[cfg(test)] mod`.
    pub in_test: bool,
    /// Variables the function binds locally: parameters, `let` patterns,
    /// `for` patterns, and closure parameter lists. The `panic-path` rule
    /// treats a bare bound identifier as an index established in scope —
    /// only computed subscripts carry an arithmetic claim worth flagging.
    pub bound_vars: BTreeSet<String>,
    /// Locals and parameters the parser knows are float-typed: `x: f64`
    /// ascriptions, `let x = 1.25`, and `let x = … as f64` initialisers.
    pub float_vars: BTreeSet<String>,
}

/// One `impl Ord for T` / `impl PartialOrd for T` block.
#[derive(Debug)]
pub struct OrdImpl {
    /// `"Ord"` or `"PartialOrd"`.
    pub trait_name: String,
    /// The implementing type's name.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token span `[start, end]` of the impl body, braces included.
    pub body: (usize, usize),
}

/// One `.name(args)` method call.
#[derive(Debug)]
pub struct MethodCall {
    /// The method name.
    pub name: String,
    /// 1-based line of the method name token.
    pub line: u32,
    /// Token index of the `.` (the receiver ends just before it).
    pub dot: usize,
    /// Token span `(open, close)` of the argument parentheses.
    pub args: (usize, usize),
    /// The method chained directly onto this call's result, if any
    /// (`.partial_cmp(b).unwrap()` → `Some("unwrap")`).
    pub chained: Option<String>,
}

/// One `impl` block, inherent (`impl T { … }`) or trait
/// (`impl Trait for T { … }`).
#[derive(Debug)]
pub struct ImplBlock {
    /// The implemented trait's last path segment, `None` for inherent impls.
    pub trait_name: Option<String>,
    /// The implementing type's name (last path segment).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token span `[start, end]` of the impl body, braces included.
    pub body: (usize, usize),
}

/// One free-function call (`helper(x)`, `beta::helper(x)`) or qualified
/// path reference (`catalog::all` passed as a value, `Kind::Raid`).
#[derive(Debug)]
pub struct FreeCall {
    /// Path segments before the final name (`beta::helper` → `["beta"]`).
    /// May start with `crate`, `self`, `super`, or `Self`.
    pub qual: Vec<String>,
    /// The final path segment: the called or referenced name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name token.
    pub tok: usize,
    /// True when an argument list follows (a call, not a bare reference).
    pub called: bool,
}

/// One `struct` definition with its body span (fields or tuple elements).
#[derive(Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Token span `[start, end]` of the `{…}`/`(…)` body, delimiters
    /// included. Unit structs are not recorded.
    pub body: (usize, usize),
}

/// One flattened `use` item: groups (`use a::{b, c}`) and globs expand to
/// one [`UseDecl`] per imported name.
#[derive(Debug)]
pub struct UseDecl {
    /// Full path segments as written (`use a::b::C` → `["a", "b", "C"]`).
    pub segs: Vec<String>,
    /// The `as` rename, if any; otherwise the last segment is the visible
    /// name.
    pub alias: Option<String>,
    /// True for `use a::b::*`.
    pub glob: bool,
    /// True for `pub use` / `pub(crate) use` re-exports.
    pub is_pub: bool,
    /// 1-based line of the item.
    pub line: u32,
}

/// One `name!(…)` macro invocation.
#[derive(Debug)]
pub struct MacroCall {
    /// The macro's name, without the `!`.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name token.
    pub tok: usize,
}

/// One index expression `recv[idx]`.
#[derive(Debug)]
pub struct IndexExpr {
    /// 1-based line of the opening bracket.
    pub line: u32,
    /// Token span `(open, close)` of the brackets.
    pub brackets: (usize, usize),
}

/// One `BinaryHeap<…>` type mention.
#[derive(Debug)]
pub struct HeapType {
    /// 1-based line of the `BinaryHeap` token.
    pub line: u32,
    /// Token span `(open, close)` of the angle brackets.
    pub angles: (usize, usize),
}

/// The parsed shape of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `impl Ord`/`impl PartialOrd` block.
    pub ord_impls: Vec<OrdImpl>,
    /// Every `impl` block, inherent or trait.
    pub impls: Vec<ImplBlock>,
    /// Every free-function call and qualified path reference.
    pub free_calls: Vec<FreeCall>,
    /// Every `struct` definition with a body.
    pub structs: Vec<StructDef>,
    /// Every flattened `use` item.
    pub uses: Vec<UseDecl>,
    /// Every method call.
    pub calls: Vec<MethodCall>,
    /// Every macro invocation.
    pub macros: Vec<MacroCall>,
    /// Every index expression.
    pub indexings: Vec<IndexExpr>,
    /// Every `BinaryHeap<…>` mention.
    pub heaps: Vec<HeapType>,
    /// Token spans (inclusive) of `#[cfg(test)] mod … { … }` bodies.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileModel {
    /// True if token index `i` falls inside a `#[cfg(test)]` module body.
    pub fn in_test_span(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The innermost `fn` whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.enclosing_fn_idx(i).map(|k| &self.fns[k])
    }

    /// Index into [`fns`](Self::fns) of the innermost `fn` whose body
    /// contains token index `i`.
    pub fn enclosing_fn_idx(&self, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| i >= f.body.0 && i <= f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(k, _)| k)
    }

    /// Index into [`impls`](Self::impls) of the innermost impl block whose
    /// body strictly contains the fn body span `body` (the impl's braces
    /// enclose a method's, so strict containment rejects the impl itself).
    pub fn owning_impl(&self, body: (usize, usize)) -> Option<usize> {
        self.impls
            .iter()
            .enumerate()
            .filter(|(_, im)| body.0 > im.body.0 && body.1 < im.body.1)
            .min_by_key(|(_, im)| im.body.1 - im.body.0)
            .map(|(k, _)| k)
    }
}

/// Finds the matching close delimiter for the opener at `open`, tracking
/// all three bracket kinds together. Returns the close index, or the last
/// token on unbalanced input.
pub fn match_delim(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Skips a generic argument list starting at the `<` at `open`, returning
/// the index of the matching `>`. Understands nested angles, the two-token
/// `->` arrow, and stops sanely on unbalanced input.
pub fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" if i > 0 && toks[i - 1].is_punct('-') => {} // `->` arrow
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                // A delimiter mismatch means this `<` was a comparison.
                ";" | "{" => return open,
                _ => {}
            }
        }
        i += 1;
    }
    open
}

/// True if the token at `i` is a punctuation character `c`.
fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// Parses the lexed file into a [`FileModel`].
pub fn parse(lexed: &Lexed) -> FileModel {
    let toks = &lexed.tokens;
    let mut model = FileModel::default();

    collect_test_spans(toks, &mut model);
    collect_fns(toks, &mut model);
    collect_ord_impls(toks, &mut model);
    collect_impls(toks, &mut model);
    collect_structs(toks, &mut model);
    let use_spans = collect_uses(toks, &mut model);
    collect_free_calls(toks, &use_spans, &mut model);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "." => {
                if let Some(call) = parse_method_call(toks, i) {
                    model.calls.push(call);
                }
                i += 1;
            }
            TokKind::Punct if t.text == "[" => {
                if is_index_open(toks, i) {
                    let close = match_delim(toks, i);
                    model.indexings.push(IndexExpr { line: t.line, brackets: (i, close) });
                }
                i += 1;
            }
            TokKind::Ident if t.text == "BinaryHeap" => {
                // `BinaryHeap<…>` or `BinaryHeap::<…>`.
                let mut j = i + 1;
                if punct_at(toks, j, ':') && punct_at(toks, j + 1, ':') {
                    j += 2;
                }
                if punct_at(toks, j, '<') {
                    let close = skip_angles(toks, j);
                    if close > j {
                        model.heaps.push(HeapType { line: t.line, angles: (j, close) });
                    }
                }
                i += 1;
            }
            TokKind::Ident if punct_at(toks, i + 1, '!') && !is_keyword(&t.text) => {
                model.macros.push(MacroCall { name: t.text.clone(), line: t.line, tok: i });
                i += 1;
            }
            _ => i += 1,
        }
    }
    model
}

/// Records the body spans of `#[cfg(test)] mod … { … }` items.
fn collect_test_spans(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i < toks.len() {
        if punct_at(toks, i, '#') && punct_at(toks, i + 1, '[') {
            let close = match_delim(toks, i + 1);
            let attr_is_cfg_test = toks[i + 2..close]
                .windows(3)
                .any(|w| w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test"));
            if attr_is_cfg_test {
                // Skip further attributes/doc markers to the item keyword.
                let mut j = close + 1;
                while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
                    j = match_delim(toks, j + 1) + 1;
                }
                if toks.get(j).is_some_and(|t| t.is_ident("pub")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
                    // Find the body `{`; a `mod name;` declaration has none.
                    let mut k = j + 1;
                    while k < toks.len() && !punct_at(toks, k, '{') && !punct_at(toks, k, ';') {
                        k += 1;
                    }
                    if punct_at(toks, k, '{') {
                        model.test_spans.push((k, match_delim(toks, k)));
                    }
                }
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
}

/// Records every `fn` item with its local analysis.
fn collect_fns(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || !toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // The body is the first `{` past the signature at bracket depth 0.
        // Generic params and return types never contain braces.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break, // trait method declaration
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 2;
            continue;
        };
        let close = match_delim(toks, open);
        let in_test = has_test_attr(toks, i) || model.in_test_span(i);
        let mut item = FnItem {
            name,
            line,
            body: (open, close),
            in_test,
            bound_vars: BTreeSet::new(),
            float_vars: BTreeSet::new(),
        };
        // The signature (params) participates in float tracking.
        collect_params(toks, i, &mut item);
        analyze_fn(toks, i, close, &mut item);
        model.fns.push(item);
        i += 2;
    }
}

/// True if the `fn` at `at` is directly preceded by a `#[test]`-ish or
/// `#[cfg(test)]` attribute (scanning back across attributes and the
/// visibility/`const`/`async` qualifiers).
fn has_test_attr(toks: &[Token], at: usize) -> bool {
    let mut i = at;
    // Walk back over qualifiers to the potential attribute close bracket.
    while i > 0
        && toks[i - 1].kind == TokKind::Ident
        && matches!(toks[i - 1].text.as_str(), "pub" | "const" | "async" | "unsafe" | "extern")
    {
        i -= 1;
    }
    while i >= 2 && toks[i - 1].is_punct(']') {
        // Find the attribute's opening `[` by scanning back.
        let close = i - 1;
        let mut depth = 0usize;
        let mut open = close;
        loop {
            match toks[open].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if open == 0 {
                return false;
            }
            open -= 1;
        }
        if open == 0 || !toks[open - 1].is_punct('#') {
            return false;
        }
        if toks[open..close].iter().any(|t| t.is_ident("test")) {
            return true;
        }
        i = open - 1;
    }
    false
}

/// Inserts the parameter names of the `fn` at `at` into `bound_vars`:
/// idents directly followed by `:` inside the signature parens. Path
/// segments never match — they are preceded by `:` or followed by `::`.
fn collect_params(toks: &[Token], at: usize, item: &mut FnItem) {
    let mut j = at + 2;
    if punct_at(toks, j, '<') {
        let close = skip_angles(toks, j);
        if close == j {
            return;
        }
        j = close + 1;
    }
    if !punct_at(toks, j, '(') {
        return;
    }
    let close = match_delim(toks, j);
    for k in j + 1..close {
        if toks[k].kind == TokKind::Ident
            && !is_keyword(&toks[k].text)
            && punct_at(toks, k + 1, ':')
            && !punct_at(toks, k + 2, ':')
            && !punct_at(toks, k - 1, ':')
        {
            item.bound_vars.insert(toks[k].text.clone());
        }
    }
}

/// Fills `bound_vars` and `float_vars` for the token range `[start, end]`.
fn analyze_fn(toks: &[Token], start: usize, end: usize, item: &mut FnItem) {
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        match t.kind {
            // `for <pattern> in …` — every ident in the pattern is bound.
            TokKind::Ident if t.text == "for" => {
                let mut j = i + 1;
                while j <= end && !toks[j].is_ident("in") && !punct_at(toks, j, '{') {
                    if toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) {
                        item.bound_vars.insert(toks[j].text.clone());
                    }
                    j += 1;
                }
                i = j;
            }
            // `|a, b| …` closure parameter lists.
            TokKind::Punct if t.text == "|" && closure_opens_here(toks, i) => {
                let mut j = i + 1;
                while j <= end && !punct_at(toks, j, '|') {
                    if toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) {
                        // Skip type-ascription idents: `|x: usize|` binds `x`.
                        let ascribed = j > 0 && punct_at(toks, j - 1, ':');
                        if !ascribed {
                            item.bound_vars.insert(toks[j].text.clone());
                        }
                    }
                    j += 1;
                }
                i = j + 1;
            }
            // `let [mut] PATTERN …` — every ident in the pattern (up to the
            // depth-0 `=`) is bound; a single-name binding also classifies
            // its initialiser for float tracking.
            TokKind::Ident if t.text == "let" => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                    let name = toks[j].text.clone();
                    if stmt_is_floaty(toks, j + 1, end) {
                        item.float_vars.insert(name);
                    }
                }
                let mut depth = 0i32;
                let mut k = i + 1;
                while k <= end && k < toks.len() {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "=" | ";" if depth == 0 => break,
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                        item.bound_vars.insert(t.text.clone());
                    }
                    k += 1;
                }
                i = k;
            }
            // Bare ascriptions `name: f64` (params, struct literals).
            TokKind::Ident if matches!(t.text.as_str(), "f64" | "f32") => {
                if i >= 2 && punct_at(toks, i - 1, ':') && toks[i - 2].kind == TokKind::Ident {
                    item.float_vars.insert(toks[i - 2].text.clone());
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Heuristic: does the `|` at `i` begin a closure parameter list?
/// (Distinguishes from bitwise/logical `|` by what precedes it.)
fn closure_opens_here(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    match prev.kind {
        TokKind::Punct => matches!(prev.text.as_str(), "(" | "," | "=" | "{" | ";" | "&" | ":"),
        TokKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else"),
        _ => false,
    }
}

/// True when the statement tokens after a `let NAME` mark a float binding:
/// `: f64`, a float literal initialiser, or a trailing `as f64` cast.
fn stmt_is_floaty(toks: &[Token], from: usize, end: usize) -> bool {
    let mut i = from;
    let mut depth = 0i32;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return false,
                _ => {}
            }
        }
        let floaty = match t.kind {
            TokKind::Ident => matches!(t.text.as_str(), "f64" | "f32"),
            TokKind::Num => {
                t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32")
            }
            _ => false,
        };
        if floaty {
            return true;
        }
        i += 1;
    }
    false
}

/// Parses a method call whose `.` sits at `dot`, tolerating turbofish.
fn parse_method_call(toks: &[Token], dot: usize) -> Option<MethodCall> {
    let name_tok = toks.get(dot + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = dot + 2;
    // `.collect::<Vec<_>>()` — skip the turbofish.
    if punct_at(toks, j, ':') && punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, '<') {
        let close = skip_angles(toks, j + 2);
        if close == j + 2 {
            return None;
        }
        j = close + 1;
    }
    if !punct_at(toks, j, '(') {
        return None;
    }
    let close = match_delim(toks, j);
    let chained = if punct_at(toks, close + 1, '.')
        && toks.get(close + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        Some(toks[close + 2].text.clone())
    } else {
        None
    };
    Some(MethodCall {
        name: name_tok.text.clone(),
        line: name_tok.line,
        dot,
        args: (j, close),
        chained,
    })
}

/// True when the `[` at `i` opens an *index expression*: the previous token
/// must end a value (an identifier that is not a keyword, a close paren, a
/// close bracket, or a string literal). Attributes (`#[…]`), slice types
/// (`&[T]`, `&mut [T]`), and array literals never match.
fn is_index_open(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &toks[i - 1];
    match prev.kind {
        TokKind::Ident => !is_keyword(&prev.text),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
        TokKind::Str => true,
        _ => false,
    }
}

/// Records every `impl Ord for T` / `impl PartialOrd for T` block.
fn collect_ord_impls(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // `impl [<…>] TRAIT for TYPE { … }`
        let mut j = i + 1;
        if punct_at(toks, j, '<') {
            let close = skip_angles(toks, j);
            if close == j {
                i += 1;
                continue;
            }
            j = close + 1;
        }
        let Some(trait_tok) = toks.get(j) else { break };
        if trait_tok.kind == TokKind::Ident
            && matches!(trait_tok.text.as_str(), "Ord" | "PartialOrd")
            && toks.get(j + 1).is_some_and(|t| t.is_ident("for"))
        {
            // The type name is the next ident; its generics may follow.
            if let Some(ty) = toks.get(j + 2).filter(|t| t.kind == TokKind::Ident) {
                let mut k = j + 3;
                while k < toks.len() && !punct_at(toks, k, '{') {
                    k += 1;
                }
                if punct_at(toks, k, '{') {
                    model.ord_impls.push(OrdImpl {
                        trait_name: trait_tok.text.clone(),
                        type_name: ty.text.clone(),
                        line: toks[i].line,
                        body: (k, match_delim(toks, k)),
                    });
                }
            }
        }
        i = j + 1;
    }
}

/// True if the token before `i` puts `i` at item position: start of file,
/// after `;`/`}`/`{`, after an attribute's `]`, or after a visibility /
/// item qualifier keyword. Rejects `-> impl Trait` return types and
/// `x: impl Fn()` argument positions.
fn at_item_position(toks: &[Token], i: usize) -> bool {
    let Some(k) = i.checked_sub(1) else { return true };
    let prev = &toks[k];
    match prev.kind {
        TokKind::Punct => matches!(prev.text.as_str(), ";" | "}" | "{" | "]" | ")"),
        TokKind::Ident => matches!(prev.text.as_str(), "pub" | "unsafe" | "const" | "default"),
        _ => false,
    }
}

/// Reads a type/trait path at `j` (`a::b::C`, optional trailing generics),
/// returning the final segment and the index just past it.
fn read_path(toks: &[Token], mut j: usize) -> Option<(String, usize)> {
    let t = toks.get(j)?;
    if t.kind != TokKind::Ident || (is_keyword(&t.text) && t.text != "Self") {
        return None;
    }
    let mut last = t.text.clone();
    j += 1;
    while punct_at(toks, j, ':')
        && punct_at(toks, j + 1, ':')
        && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        last = toks[j + 2].text.clone();
        j += 3;
    }
    if punct_at(toks, j, '<') {
        let close = skip_angles(toks, j);
        if close > j {
            j = close + 1;
        }
    }
    Some((last, j))
}

/// Records every `impl` block (inherent or trait) at item position.
fn collect_impls(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") || !at_item_position(toks, i) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;
        if punct_at(toks, j, '<') {
            let close = skip_angles(toks, j);
            if close == j {
                i += 1;
                continue;
            }
            j = close + 1;
        }
        let Some((first, after)) = read_path(toks, j) else {
            i = j.max(i + 1);
            continue;
        };
        j = after;
        let (trait_name, type_name) = if toks.get(j).is_some_and(|t| t.is_ident("for")) {
            j += 1;
            // Skip reference/dyn sigils on the implementing type.
            while toks.get(j).is_some_and(|t| {
                t.is_punct('&')
                    || t.is_ident("dyn")
                    || t.is_ident("mut")
                    || t.kind == TokKind::Lifetime
            }) {
                j += 1;
            }
            let Some((ty, after)) = read_path(toks, j) else {
                i = j.max(i + 1);
                continue;
            };
            j = after;
            (Some(first), ty)
        } else {
            (None, first)
        };
        // Scan across any `where` clause (it contains no braces) to the body.
        while j < toks.len() && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
            j += 1;
        }
        if punct_at(toks, j, '{') {
            let close = match_delim(toks, j);
            model.impls.push(ImplBlock { trait_name, type_name, line, body: (j, close) });
        }
        i = j + 1;
    }
}

/// Records every `struct` definition that has a body (`{…}` or `(…)`).
fn collect_structs(toks: &[Token], model: &mut FileModel) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") || !toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        let mut j = i + 2;
        if punct_at(toks, j, '<') {
            let close = skip_angles(toks, j);
            if close == j {
                i += 2;
                continue;
            }
            j = close + 1;
        }
        // Tuple struct body is immediate; a `where` clause may precede `{`.
        if !punct_at(toks, j, '(') {
            while j < toks.len() && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                j += 1;
            }
        }
        if punct_at(toks, j, '{') || punct_at(toks, j, '(') {
            model.structs.push(StructDef { name, line, body: (j, match_delim(toks, j)) });
        }
        i = j + 1;
    }
}

/// Records every `use` item (flattened) and returns their token spans so
/// the free-call collector can skip the paths inside them.
fn collect_uses(toks: &[Token], model: &mut FileModel) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("use") || !at_item_position_for_use(toks, i) {
            i += 1;
            continue;
        }
        let is_pub = use_is_pub(toks, i);
        let line = toks[i].line;
        let end = use_tree(toks, i + 1, &[], is_pub, line, &mut model.uses);
        spans.push((i, end));
        i = end.max(i + 1);
    }
    spans
}

/// Like [`at_item_position`], for `use` (also valid right after `pub(…)`).
fn at_item_position_for_use(toks: &[Token], i: usize) -> bool {
    let Some(k) = i.checked_sub(1) else { return true };
    let prev = &toks[k];
    match prev.kind {
        TokKind::Punct => matches!(prev.text.as_str(), ";" | "}" | "{" | "]" | ")"),
        TokKind::Ident => prev.text == "pub",
        _ => false,
    }
}

/// True when the `use` at `i` is a `pub use` / `pub(crate) use` re-export.
fn use_is_pub(toks: &[Token], i: usize) -> bool {
    let Some(mut k) = i.checked_sub(1) else { return false };
    if toks[k].is_punct(')') {
        // Walk back over the `(crate)`/`(super)` restriction.
        let mut depth = 0i32;
        loop {
            if toks[k].is_punct(')') {
                depth += 1;
            } else if toks[k].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            let Some(prev) = k.checked_sub(1) else { return false };
            k = prev;
        }
        let Some(prev) = k.checked_sub(1) else { return false };
        k = prev;
    }
    toks[k].is_ident("pub")
}

/// Parses one use tree at `j` with `prefix` segments already read; emits
/// flattened [`UseDecl`]s and returns the index just past the tree.
fn use_tree(
    toks: &[Token],
    mut j: usize,
    prefix: &[String],
    is_pub: bool,
    line: u32,
    out: &mut Vec<UseDecl>,
) -> usize {
    let mut segs = prefix.to_vec();
    loop {
        match toks.get(j) {
            Some(t) if t.kind == TokKind::Ident && t.text != "as" => {
                segs.push(t.text.clone());
                j += 1;
                if punct_at(toks, j, ':') && punct_at(toks, j + 1, ':') {
                    j += 2;
                    continue;
                }
                break;
            }
            Some(t) if t.is_punct('{') => {
                let close = match_delim(toks, j);
                let mut k = j + 1;
                while k < close {
                    let next = use_tree(toks, k, &segs, is_pub, line, out);
                    k = next.max(k + 1);
                    if punct_at(toks, k, ',') {
                        k += 1;
                    } else {
                        break;
                    }
                }
                return close + 1;
            }
            Some(t) if t.is_punct('*') => {
                out.push(UseDecl { segs, alias: None, glob: true, is_pub, line });
                return j + 1;
            }
            _ => return j,
        }
    }
    let alias = if toks.get(j).is_some_and(|t| t.is_ident("as")) {
        let a = toks.get(j + 1).map(|t| t.text.clone());
        j += 2;
        a
    } else {
        None
    };
    if segs.len() > prefix.len() {
        out.push(UseDecl { segs, alias, glob: false, is_pub, line });
    }
    j
}

/// Path heads that are keywords but still begin a callable path.
fn is_path_head_keyword(word: &str) -> bool {
    matches!(word, "crate" | "self" | "super" | "Self")
}

/// Records free-function calls and qualified path references. A chain
/// `a::b::name(…)` is recorded once at its head; method names (preceded by
/// `.`), definitions (preceded by `fn` etc.), macros (followed by `!`), and
/// paths inside `use` items never match.
fn collect_free_calls(toks: &[Token], use_spans: &[(usize, usize)], model: &mut FileModel) {
    let in_use = |i: usize| use_spans.iter().any(|&(s, e)| i >= s && i <= e);
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let head_ok = t.kind == TokKind::Ident
            && (!is_keyword(&t.text) || is_path_head_keyword(&t.text))
            && !in_use(i);
        if !head_ok {
            i += 1;
            continue;
        }
        // Not a path head if preceded by `.` (method), `::` (path interior),
        // or an item-definition keyword.
        if i > 0 {
            let prev = &toks[i - 1];
            let def_kw = matches!(
                prev.text.as_str(),
                "fn" | "mod" | "struct" | "enum" | "trait" | "use" | "impl" | "macro" | "type"
            ) && prev.kind == TokKind::Ident;
            if prev.is_punct('.')
                || def_kw
                || (prev.is_punct(':') && i > 1 && toks[i - 2].is_punct(':'))
            {
                i += 1;
                continue;
            }
        }
        // Read the full chain.
        let mut segs = vec![t.text.clone()];
        let mut j = i + 1;
        let mut name_tok = i;
        while punct_at(toks, j, ':')
            && punct_at(toks, j + 1, ':')
            && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            segs.push(toks[j + 2].text.clone());
            name_tok = j + 2;
            j += 3;
        }
        // `name::<T>(…)` — skip the turbofish before the argument check.
        let mut k = j;
        if punct_at(toks, k, ':') && punct_at(toks, k + 1, ':') && punct_at(toks, k + 2, '<') {
            let close = skip_angles(toks, k + 2);
            if close > k + 2 {
                k = close + 1;
            }
        }
        let called = punct_at(toks, k, '(');
        if toks[i].is_ident("self") && segs.len() == 1 {
            // Bare `self` is a receiver, never a call.
            i = j;
            continue;
        }
        if called || segs.len() > 1 {
            if let Some(name) = segs.pop() {
                model.free_calls.push(FreeCall {
                    qual: segs,
                    name,
                    line: toks[name_tok].line,
                    tok: name_tok,
                    called,
                });
            }
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        parse(&lex(src))
    }

    #[test]
    fn fn_items_and_bodies_are_recovered() {
        let m = model("fn a() { 1 } fn b<T: Ord>(x: T) -> Vec<u8> { vec![] }");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "a");
        assert_eq!(m.fns[1].name, "b");
        assert!(!m.fns[0].in_test);
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test() {
        let m = model("fn lib() {} #[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }");
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("t").in_test);
    }

    #[test]
    fn test_attr_with_qualifiers_is_seen() {
        let m = model("#[test]\npub fn check() {}");
        assert!(m.fns[0].in_test);
    }

    #[test]
    fn method_calls_survive_turbofish_and_chaining() {
        let m = model(
            "fn f() { let v = it.collect::<Vec<BTree<u8, i8>>>(); a.partial_cmp(b).unwrap(); }",
        );
        let collect = m.calls.iter().find(|c| c.name == "collect").unwrap();
        assert_eq!(collect.chained, None);
        let pc = m.calls.iter().find(|c| c.name == "partial_cmp").unwrap();
        assert_eq!(pc.chained.as_deref(), Some("unwrap"));
        assert!(m.calls.iter().any(|c| c.name == "unwrap"));
    }

    #[test]
    fn closures_in_method_chains_bind_params() {
        let m = model("fn f(v: Vec<u64>) { v.iter().map(|(i, x)| i + x).filter(|y| *y > 1); }");
        let f = &m.fns[0];
        for var in ["i", "x", "y"] {
            assert!(f.bound_vars.contains(var), "{var} missing from {:?}", f.bound_vars);
        }
    }

    #[test]
    fn params_and_let_patterns_bind_vars() {
        let m = model(
            "fn f(idx: usize, mesh: &Mesh<u8>) { let primary = idx; \
             let (a, b) = pair(); let v: Vec<u64> = Vec::new(); }",
        );
        let f = &m.fns[0];
        for var in ["idx", "mesh", "primary", "a", "b", "v"] {
            assert!(f.bound_vars.contains(var), "{var} missing from {:?}", f.bound_vars);
        }
    }

    #[test]
    fn for_patterns_bind_vars() {
        let m = model("fn f() { for (a, b) in pairs { } for i in 0..n { } }");
        let f = &m.fns[0];
        for var in ["a", "b", "i"] {
            assert!(f.bound_vars.contains(var));
        }
        assert!(!f.bound_vars.contains("pairs"));
    }

    #[test]
    fn float_locals_are_classified() {
        let m = model(
            "fn f(rate: f64, n: usize) { let x = 1.5; let y: f64 = g(); \
             let z = n as f64; let k = 3; }",
        );
        let f = &m.fns[0];
        for var in ["rate", "x", "y", "z"] {
            assert!(f.float_vars.contains(var), "{var} missing from {:?}", f.float_vars);
        }
        assert!(!f.float_vars.contains("k"));
        assert!(!f.float_vars.contains("n"));
    }

    #[test]
    fn index_expressions_exclude_attrs_and_slice_types() {
        let m = model("#[derive(Clone)] fn f(xs: &mut [u8]) { let a = xs[0]; let b = [1, 2]; }");
        assert_eq!(m.indexings.len(), 1);
    }

    #[test]
    fn heap_generics_are_spanned() {
        let m =
            model("fn f() { let h: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new(); }");
        assert_eq!(m.heaps.len(), 1);
    }

    #[test]
    fn ord_impls_are_recovered() {
        let m = model(
            "impl Ord for Entry { fn cmp(&self, o: &Self) -> Ordering { self.seq.cmp(&o.seq) } }",
        );
        assert_eq!(m.ord_impls.len(), 1);
        assert_eq!(m.ord_impls[0].trait_name, "Ord");
        assert_eq!(m.ord_impls[0].type_name, "Entry");
    }

    #[test]
    fn nested_generics_in_comparator_types_parse() {
        let m = model(
            "fn f() { let c: BTreeMap<Key<Vec<u8>>, fn(&A) -> Ordering> = BTreeMap::new(); \
             xs.sort_by_key(|e: &Entry<Wrap<u8>>| e.seq); }",
        );
        assert!(m.calls.iter().any(|c| c.name == "sort_by_key"));
    }

    #[test]
    fn macro_calls_are_recorded() {
        let m = model("fn f() { panic!(\"boom\"); assert!(true); }");
        assert!(m.macros.iter().any(|c| c.name == "panic"));
        assert!(m.macros.iter().any(|c| c.name == "assert"));
    }

    #[test]
    fn inherent_and_trait_impls_are_recorded() {
        let m = model(
            "impl Widget { fn new() -> Self { Widget } } \
             impl fmt::Display for Widget<T> { fn fmt(&self) {} } \
             impl<S: State> Simulation<S> { fn step(&mut self) {} }",
        );
        assert_eq!(m.impls.len(), 3, "{:?}", m.impls);
        assert_eq!(m.impls[0].trait_name, None);
        assert_eq!(m.impls[0].type_name, "Widget");
        assert_eq!(m.impls[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(m.impls[1].type_name, "Widget");
        assert_eq!(m.impls[2].trait_name, None);
        assert_eq!(m.impls[2].type_name, "Simulation");
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let m = model("fn f() -> impl Iterator<Item = u8> { it() } fn g(x: impl Fn()) { x() }");
        assert!(m.impls.is_empty(), "{:?}", m.impls);
    }

    #[test]
    fn methods_attach_to_their_impl_by_span() {
        let m = model("fn free() {} impl W { fn method(&self) {} }");
        let free = m.fns.iter().find(|f| f.name == "free").unwrap();
        let method = m.fns.iter().find(|f| f.name == "method").unwrap();
        assert_eq!(m.owning_impl(free.body), None);
        let owner = m.owning_impl(method.body).map(|k| m.impls[k].type_name.as_str());
        assert_eq!(owner, Some("W"));
    }

    #[test]
    fn struct_bodies_are_recorded() {
        let m = model("struct A { q: BinaryHeap<u8> } struct B(u8); struct C; struct D<T> where T: Ord { t: T }");
        let names: Vec<&str> = m.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "D"]);
    }

    #[test]
    fn use_items_flatten_groups_globs_and_aliases() {
        let m = model(
            "use adapt::oracle as qoracle; pub use eng::dispatch; \
             use std::collections::{BTreeMap, btree_map::Entry}; use crate::prelude::*;",
        );
        assert_eq!(m.uses.len(), 5, "{:?}", m.uses);
        assert_eq!(m.uses[0].segs, vec!["adapt", "oracle"]);
        assert_eq!(m.uses[0].alias.as_deref(), Some("qoracle"));
        assert!(!m.uses[0].is_pub);
        assert!(m.uses[1].is_pub);
        assert_eq!(m.uses[1].segs, vec!["eng", "dispatch"]);
        assert_eq!(m.uses[2].segs, vec!["std", "collections", "BTreeMap"]);
        assert_eq!(m.uses[3].segs, vec!["std", "collections", "btree_map", "Entry"]);
        assert!(m.uses[4].glob);
        assert_eq!(m.uses[4].segs, vec!["crate", "prelude"]);
    }

    #[test]
    fn free_calls_record_qualifiers_and_skip_methods_and_macros() {
        let m = model(
            "fn f() { helper(1); beta::helper(2); x.method(); vec![q::r()]; \
             Fnv64::new(); crate::util::go::<u8>(3); assert!(ok()); }",
        );
        let by_name = |n: &str| m.free_calls.iter().filter(|c| c.name == n).collect::<Vec<_>>();
        assert_eq!(by_name("helper").len(), 2);
        assert_eq!(by_name("helper")[1].qual, vec!["beta"]);
        assert!(by_name("method").is_empty(), "{:?}", m.free_calls);
        assert_eq!(by_name("new")[0].qual, vec!["Fnv64"]);
        assert_eq!(by_name("go")[0].qual, vec!["crate", "util"]);
        assert!(by_name("go")[0].called);
        assert_eq!(by_name("r")[0].qual, vec!["q"]);
        assert!(by_name("ok")[0].called);
    }

    #[test]
    fn bare_references_with_qualifiers_are_recorded_uncalled() {
        let m = model("fn f() { v.sort_by(f64::total_cmp); go(catalog::all); }");
        let r = m.free_calls.iter().find(|c| c.name == "total_cmp").unwrap();
        assert!(!r.called);
        assert_eq!(r.qual, vec!["f64"]);
        let a = m.free_calls.iter().find(|c| c.name == "all").unwrap();
        assert!(!a.called);
    }

    #[test]
    fn use_paths_are_not_free_calls() {
        let m = model("use a::b::c; fn f() { b2::c2(); }");
        assert!(m.free_calls.iter().all(|c| c.name != "c"), "{:?}", m.free_calls);
        assert!(m.free_calls.iter().any(|c| c.name == "c2"));
    }
}
